"""Observability: structured spans, counters, histograms, trace export.

See :mod:`repro.obs.telemetry` for the trace schema and usage.  The layer
is stdlib-only and costs one ``is None`` check per instrumentation site
when disabled, so it is safe to leave wired through the hot paths.
"""

from .telemetry import (
    DEFAULT_FRACTION_EDGES,
    Histogram,
    Span,
    TelemetryRegistry,
    activate,
    count,
    deactivate,
    enabled,
    get,
    observe,
    session,
    span,
)

__all__ = [
    "DEFAULT_FRACTION_EDGES",
    "Histogram",
    "Span",
    "TelemetryRegistry",
    "activate",
    "count",
    "deactivate",
    "enabled",
    "get",
    "observe",
    "session",
    "span",
]
