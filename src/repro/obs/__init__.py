"""Observability: structured spans, counters, histograms, trace export.

See :mod:`repro.obs.telemetry` for the trace schema and usage.  The layer
is stdlib-only and costs one ``is None`` check per instrumentation site
when disabled, so it is safe to leave wired through the hot paths.
:mod:`repro.obs.profiling` turns recorded registries into flamegraphs,
Chrome traces and results-store perf records.
"""

from .profiling import (
    chrome_trace,
    collapsed_stacks,
    load_trace,
    profile_records,
    write_chrome_trace,
    write_flamegraph,
)
from .telemetry import (
    DEFAULT_FRACTION_EDGES,
    Histogram,
    Span,
    TelemetryRegistry,
    activate,
    count,
    deactivate,
    enabled,
    get,
    observe,
    session,
    span,
)

__all__ = [
    "DEFAULT_FRACTION_EDGES",
    "Histogram",
    "Span",
    "TelemetryRegistry",
    "activate",
    "chrome_trace",
    "collapsed_stacks",
    "count",
    "deactivate",
    "enabled",
    "get",
    "load_trace",
    "observe",
    "profile_records",
    "session",
    "span",
    "write_chrome_trace",
    "write_flamegraph",
]
