"""Profiling views over a telemetry registry: standard formats + store records.

:mod:`repro.obs.telemetry` records *what happened*; this module turns a
registry (live or re-imported from a ``trace.jsonl``) into the artifacts a
performance investigation actually consumes:

* :func:`collapsed_stacks` / :func:`write_flamegraph` — the collapsed-stack
  text format (``frame;frame;frame value``) read by speedscope,
  ``flamegraph.pl`` and every modern flamegraph viewer.  Values are
  integer microseconds of *self* time, so the flame widths sum correctly
  without double-counting nested spans.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON (``"X"`` complete events) loadable in Perfetto /
  ``chrome://tracing``; merged worker registries render as separate named
  tracks via their ``worker`` span tags.
* :func:`load_trace` — re-import a ``trace.jsonl`` (schema 1 or 2) into a
  :class:`~repro.obs.telemetry.TelemetryRegistry`; re-exporting a loaded
  schema-2 trace is byte-identical, because the derived ``span_stats`` /
  ``span_tree`` lines are recomputed from the span lines.
* :func:`profile_records` — per-span-name timing aggregates shaped as
  results-store records (``scenario="__profile__"``), the persistence
  layer under ``repro results perf`` and its regression gate.
"""

from __future__ import annotations

import json
from pathlib import Path

from .telemetry import Histogram, Span, TelemetryRegistry

__all__ = [
    "chrome_trace",
    "collapsed_stacks",
    "load_trace",
    "profile_records",
    "write_chrome_trace",
    "write_flamegraph",
]

#: Reserved record identity for per-span timing aggregates in the store.
PROFILE_SCENARIO = "__profile__"


# ----------------------------------------------------------------------
# collapsed stacks (flamegraph.pl / speedscope)
# ----------------------------------------------------------------------
def collapsed_stacks(registry: TelemetryRegistry) -> dict[str, int]:
    """``{"root;child;leaf": self-time µs}`` over the registry's span tree.

    Stacks from merged worker registries are rooted under their worker
    label (``worker-3;runner.chunk;...``) so per-worker time stays
    attributable.  Zero-valued stacks are dropped — a microsecond-granular
    flamegraph has nothing to draw for them.
    """
    selfs = registry.self_times()
    by_id = {record.span_id: record for record in registry.spans}
    paths: dict[int, str] = {}

    def path_of(record: Span) -> str:
        cached = paths.get(record.span_id)
        if cached is not None:
            return cached
        if record.parent_id is not None and record.parent_id in by_id:
            path = path_of(by_id[record.parent_id]) + ";" + record.name
        else:
            worker = record.tags.get("worker", "")
            path = f"{worker};{record.name}" if worker else record.name
        paths[record.span_id] = path
        return path

    stacks: dict[str, int] = {}
    for record in registry.spans:
        micros = int(round(selfs[record.span_id] * 1e6))
        if micros <= 0:
            continue
        path = path_of(record)
        stacks[path] = stacks.get(path, 0) + micros
    return stacks


def write_flamegraph(
    path: str | Path, registry: TelemetryRegistry
) -> int:
    """Write the registry as a collapsed-stack file; returns the line count."""
    stacks = collapsed_stacks(registry)
    text = "".join(f"{stack} {stacks[stack]}\n" for stack in sorted(stacks))
    Path(path).write_text(text, encoding="utf-8", newline="\n")
    return len(stacks)


# ----------------------------------------------------------------------
# Chrome trace-event format (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------
def chrome_trace(registry: TelemetryRegistry) -> dict[str, object]:
    """The registry as a Chrome trace-event JSON object.

    Every span becomes one ``"X"`` (complete) event with microsecond
    ``ts``/``dur``; spans from merged worker snapshots land on their own
    ``tid`` (named after the ``worker`` tag via ``"M"`` thread-name
    metadata events), so a parallel sweep renders as parallel tracks.
    """
    labels = sorted({record.tags.get("worker", "") for record in registry.spans})
    if "" not in labels:
        labels.insert(0, "")
    tids = {label: position for position, label in enumerate(labels)}
    events: list[dict[str, object]] = [
        {
            "args": {"name": label or "main"},
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
        }
        for label, tid in tids.items()
    ]
    for record in registry.spans:
        args: dict[str, object] = {
            key: value for key, value in record.tags.items() if key != "worker"
        }
        if record.error is not None:
            args["error"] = record.error
        if record.alloc is not None:
            args["alloc_bytes"] = record.alloc
        if record.peak is not None:
            args["peak_bytes"] = record.peak
        events.append(
            {
                "args": args,
                "cat": "span",
                "dur": round(record.wall * 1e6, 3),
                "name": record.name,
                "ph": "X",
                "pid": 0,
                "tid": tids[record.tags.get("worker", "")],
                "ts": round(record.start * 1e6, 3),
            }
        )
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_chrome_trace(
    path: str | Path, registry: TelemetryRegistry
) -> int:
    """Write the Chrome trace JSON; returns the number of trace events."""
    payload = chrome_trace(registry)
    Path(path).write_text(
        json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8", newline="\n"
    )
    return len(payload["traceEvents"])  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# trace import
# ----------------------------------------------------------------------
def load_trace(path: str | Path) -> TelemetryRegistry:
    """Rebuild a registry from a ``trace.jsonl`` file (schema 1 or 2).

    Derived lines (``span_stats``, ``span_tree``, per-span ``self``) are
    skipped on read and recomputed on demand, so loading a schema-2 file
    and calling :meth:`~TelemetryRegistry.export_jsonl` again reproduces it
    byte-for-byte.  Unknown line types are ignored, which is what keeps
    older readers working across schema bumps.
    """
    registry = TelemetryRegistry()
    path = Path(path)
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{line_number}: not JSON: {exc}") from exc
            kind = record.get("type")
            if kind == "meta":
                registry.label = str(record.get("label", ""))
                registry.created_at = str(record.get("created_at", ""))
                registry.memory = bool(record.get("memory", False))
                if "peak_rss_kb" in record:
                    rss = record["peak_rss_kb"]
                    registry.peak_rss_kb = int(rss) if rss is not None else None
            elif kind == "span":
                parent = record.get("parent")
                alloc = record.get("alloc")
                peak = record.get("peak")
                registry.spans.append(
                    Span(
                        span_id=int(record["id"]),
                        parent_id=int(parent) if parent is not None else None,
                        depth=int(record.get("depth", 0)),
                        name=str(record["name"]),
                        tags={
                            str(k): str(v)
                            for k, v in dict(record.get("tags", {})).items()
                        },
                        start=float(record.get("start", 0.0)),
                        wall=float(record.get("wall", 0.0)),
                        cpu=float(record.get("cpu", 0.0)),
                        status=str(record.get("status", "ok")),
                        error=record.get("error"),
                        alloc=int(alloc) if alloc is not None else None,
                        peak=int(peak) if peak is not None else None,
                    )
                )
            elif kind == "counter":
                registry.count(
                    str(record["name"]),
                    float(record["value"]),
                    **dict(record.get("tags", {})),
                )
            elif kind == "histogram":
                incoming = Histogram(
                    edges=tuple(record["edges"]),
                    counts=list(record["counts"]),
                    count=int(record["count"]),
                    sum=float(record["sum"]),
                    min=record.get("min"),
                    max=record.get("max"),
                )
                name = str(record["name"])
                existing = registry.histograms.get(name)
                if existing is None:
                    registry.histograms[name] = incoming
                else:
                    existing.merge(incoming)
    return registry


# ----------------------------------------------------------------------
# results-store persistence
# ----------------------------------------------------------------------
def profile_records(
    registry: TelemetryRegistry | None, topology: str
) -> list[dict[str, object]]:
    """Per-span-name timing aggregates as results-store records.

    One record per span name under the reserved identity
    ``scenario="__profile__"`` (``workload`` carries the span name so the
    store's identity columns pair records across runs).  All value fields
    end in ``_seconds``, which classifies them as *timing* in
    :func:`repro.results.diffing.classify_field` — ``repro results diff``
    never hard-gates on them; the statistical gate in
    :mod:`repro.results.perf` is the tool that judges these numbers.
    Returns ``[]`` when telemetry is off or recorded no spans.
    """
    if registry is None or not registry.spans:
        return []
    records: list[dict[str, object]] = []
    for stats in registry.span_stats():
        records.append(
            {
                "scenario": PROFILE_SCENARIO,
                "kind": "profile",
                "protocol": "*",
                "topology": topology,
                "workload": stats["name"],
                "span": stats["name"],
                "count": stats["count"],
                "wall_seconds": stats["wall"],
                "cpu_seconds": stats["cpu"],
                "self_seconds": stats["self"],
                "self_p50_seconds": stats["self_p50"],
                "self_p95_seconds": stats["self_p95"],
                "self_max_seconds": stats["self_max"],
            }
        )
    return records
