"""Dependency-light telemetry: spans, counters, histograms, jsonl traces.

The observability layer answers one question for every scaling item on the
roadmap: *where do time and fallbacks actually go?*  It is deliberately
small — stdlib only, one module — and deliberately cheap: when no registry
is active (the default), every instrumentation call is a dictionary-free
no-op, so the hot paths pay a single ``is None`` check.

Concepts
--------
* **Span** — one timed region with monotonic wall time
  (:func:`time.perf_counter`) and CPU time (:func:`time.process_time`),
  free-form string tags, and exception capture: a span that exits through
  an exception is recorded with ``status="error"`` and the exception text,
  and the exception is re-raised.  Spans nest through a per-registry stack,
  so each records its parent id and depth.
* **Counter** — a named monotonically accumulated number, keyed by name
  plus a (sorted) tag set: ``count("dspt.fallback", reason="plateau")``.
* **Histogram** — fixed-bucket value distribution.  Bucket *i* counts
  values ``value <= edges[i]`` (first matching edge); values above the
  last edge land in an overflow bucket.  Count/sum/min/max ride along so
  means survive merging.
* **TelemetryRegistry** — the in-process collection of all three, with a
  picklable :meth:`~TelemetryRegistry.snapshot` and a
  :meth:`~TelemetryRegistry.merge` so worker processes can ship their
  registries back to the parent (span ids are offset-remapped, counters
  and histogram buckets are summed).

Trace schema (``trace.jsonl``)
------------------------------
One JSON object per line, ``sort_keys=True`` throughout, so exporting the
same registry twice yields byte-identical files.  Schema 2 (current;
schema-1 files remain importable via
:func:`repro.obs.profiling.load_trace`):

* ``{"type": "meta", "label": ..., "created_at": ..., "schema": 2}`` —
  first line, stamped once at registry creation.  Registries created with
  ``memory=True`` also carry ``"memory": true`` and ``"peak_rss_kb"`` (the
  process peak RSS frozen at the first export/finalize).
* ``{"type": "span", "id": ..., "parent": ..., "depth": ..., "name": ...,
  "tags": {...}, "start": ..., "wall": ..., "cpu": ..., "self": ...,
  "status": "ok"|"error", "error": ...}`` — ``start`` is seconds since the
  registry was created; ``wall``/``cpu`` are durations in seconds;
  ``self`` is the span's *self time* (wall minus direct children's wall,
  clamped at zero).  Memory-tracked spans additionally carry ``alloc``
  (net bytes allocated over the span) and ``peak`` (peak traced bytes
  above the span's entry level).
* ``{"type": "span_stats", "name": ..., "count": ..., "wall": ...,
  "cpu": ..., "self": ..., "self_p50": ..., "self_p95": ...,
  "self_max": ...}`` — per-span-name aggregates (nearest-rank
  percentiles over self time); sorted by name.
* ``{"type": "span_tree", "path": "a;b;c", "count": ..., "wall": ...,
  "self": ...}`` — call-tree aggregation keyed by the ``;``-joined span
  name path from the root; sorted by path.
* ``{"type": "counter", "name": ..., "tags": {...}, "value": ...}`` —
  sorted by (name, tags).
* ``{"type": "histogram", "name": ..., "edges": [...], "counts": [...],
  "count": ..., "sum": ..., "min": ..., "max": ...}`` — ``counts`` has
  ``len(edges) + 1`` entries (the last is the overflow bucket); sorted by
  name.

``span_stats`` and ``span_tree`` lines are *derived* — importers rebuild
them from the span lines, which is what keeps a load → re-export round
trip byte-identical.

Usage
-----
>>> from repro.obs import telemetry
>>> with telemetry.session("demo") as registry:
...     with telemetry.span("outer", kind="example"):
...         telemetry.count("widgets", 3)
...         telemetry.observe("sizes", 0.25, edges=(0.1, 0.5, 1.0))
>>> registry.counter_value("widgets")
3.0

Outside a :func:`session` (or an explicit :func:`activate`), the same
calls do nothing and cost almost nothing.
"""

from __future__ import annotations

import io
import json
import math
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Iterator, Mapping, Sequence

__all__ = [
    "Span",
    "Histogram",
    "TelemetryRegistry",
    "activate",
    "deactivate",
    "enabled",
    "get",
    "session",
    "span",
    "count",
    "observe",
    "DEFAULT_FRACTION_EDGES",
]

#: Default bucket edges for fraction-valued histograms (e.g. the affected
#: cone as a fraction of reachable nodes).  Dense at the low end, where the
#: incremental path wins, because that is where tuning decisions live.
DEFAULT_FRACTION_EDGES: tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0,
)

TagsKey = tuple[tuple[str, str], ...]


def _tags_key(tags: Mapping[str, object]) -> TagsKey:
    return tuple(sorted((str(k), str(v)) for k, v in tags.items()))


@dataclass
class Span:
    """One completed (or still-open) timed region."""

    span_id: int
    parent_id: int | None
    depth: int
    name: str
    tags: dict[str, str]
    start: float  # seconds since the registry epoch
    wall: float = 0.0
    cpu: float = 0.0
    status: str = "open"  # "open" | "ok" | "error"
    error: str | None = None
    alloc: int | None = None  # net traced bytes (memory-tracked registries)
    peak: int | None = None  # peak traced bytes above entry level

    def as_record(self) -> dict[str, object]:
        record: dict[str, object] = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "tags": self.tags,
            "start": round(self.start, 9),
            "wall": round(self.wall, 9),
            "cpu": round(self.cpu, 9),
            "status": self.status,
            "error": self.error,
        }
        if self.alloc is not None:
            record["alloc"] = self.alloc
        if self.peak is not None:
            record["peak"] = self.peak
        return record


@dataclass
class Histogram:
    """Fixed-bucket histogram: bucket *i* counts ``value <= edges[i]``.

    ``counts`` carries one extra overflow bucket for values above the last
    edge.  ``sum``/``min``/``max`` are exact over the observed values, so a
    merged histogram still reports an exact mean and range.
    """

    edges: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(self.edges) != sorted(self.edges):
            raise ValueError("histogram edges must be sorted ascending")
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        for position, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[position] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: Histogram) -> None:
        if other.edges != self.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts, strict=True)]
        self.count += other.count
        self.sum += other.sum
        for bound, pick in (("min", min), ("max", max)):
            theirs = getattr(other, bound)
            if theirs is not None:
                ours = getattr(self, bound)
                setattr(self, bound, theirs if ours is None else pick(ours, theirs))

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None

    def as_record(self, name: str) -> dict[str, object]:
        return {
            "type": "histogram",
            "name": name,
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": self.min,
            "max": self.max,
        }


def _nearest_rank(sorted_values: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile over an ascending-sorted non-empty sequence."""
    rank = max(1, math.ceil(quantile * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class TelemetryRegistry:
    """In-process collection of spans, counters and histograms.

    ``memory=True`` additionally tracks per-span allocation via
    :mod:`tracemalloc` (started here if not already tracing, stopped again
    by :meth:`finalize`): each span records the net bytes allocated across
    it (``alloc``) and the peak traced size above its entry level
    (``peak``), with child peaks folded into their ancestors so a parent's
    peak covers its whole subtree.
    """

    def __init__(self, label: str = "", memory: bool = False) -> None:
        self.label = label
        self.created_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        self.spans: list[Span] = []
        self.counters: dict[tuple[str, TagsKey], float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.memory = bool(memory)
        self.peak_rss_kb: int | None = None
        self._stack: list[Span] = []
        self._wall_epoch = time.perf_counter()
        self._mem_base: dict[int, int] = {}
        self._mem_peaks: dict[int, int] = {}
        self._owns_tracemalloc = False
        if self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **tags: object) -> Iterator[Span]:
        """Record a nested timed region; exceptions are captured, then re-raised."""
        parent = self._stack[-1] if self._stack else None
        record = Span(
            span_id=len(self.spans),
            parent_id=parent.span_id if parent else None,
            depth=parent.depth + 1 if parent else 0,
            name=name,
            tags={str(k): str(v) for k, v in tags.items()},
            start=time.perf_counter() - self._wall_epoch,
        )
        self.spans.append(record)
        self._stack.append(record)
        if self.memory:
            # tracemalloc's peak is global, so fold the running peak into
            # the parent's pending peak before resetting it for this span.
            current, interval_peak = tracemalloc.get_traced_memory()
            if parent is not None:
                self._mem_peaks[parent.span_id] = max(
                    self._mem_peaks.get(parent.span_id, 0), interval_peak
                )
            tracemalloc.reset_peak()
            self._mem_base[record.span_id] = current
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield record
        except BaseException as exc:
            record.status = "error"
            record.error = f"{type(exc).__name__}: {exc}"
            raise
        else:
            record.status = "ok"
        finally:
            record.wall = time.perf_counter() - wall0
            record.cpu = time.process_time() - cpu0
            if self.memory:
                current, interval_peak = tracemalloc.get_traced_memory()
                base = self._mem_base.pop(record.span_id, 0)
                peak_abs = max(interval_peak, self._mem_peaks.pop(record.span_id, 0))
                record.alloc = current - base
                record.peak = max(0, peak_abs - base)
                if parent is not None:
                    self._mem_peaks[parent.span_id] = max(
                        self._mem_peaks.get(parent.span_id, 0), peak_abs
                    )
            self._stack.pop()

    def count(self, name: str, value: float = 1, **tags: object) -> None:
        """Add ``value`` to a named counter (tags distinguish sub-streams)."""
        key = (name, _tags_key(tags))
        self.counters[key] = self.counters.get(key, 0.0) + float(value)

    def observe(
        self,
        name: str,
        value: float,
        edges: Sequence[float] = DEFAULT_FRACTION_EDGES,
    ) -> None:
        """Record one value into a named fixed-bucket histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(edges=tuple(edges))
        histogram.observe(value)

    # ------------------------------------------------------------------
    # aggregation / views
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **tags: object) -> float:
        if tags:
            return self.counters.get((name, _tags_key(tags)), 0.0)
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def counter_breakdown(self, name: str) -> dict[TagsKey, float]:
        return {t: v for (n, t), v in self.counters.items() if n == name}

    def span_totals(self) -> dict[str, tuple[int, float, float]]:
        """``{name: (count, total wall seconds, total cpu seconds)}``."""
        totals: dict[str, tuple[int, float, float]] = {}
        for record in self.spans:
            count_, wall, cpu = totals.get(record.name, (0, 0.0, 0.0))
            totals[record.name] = (count_ + 1, wall + record.wall, cpu + record.cpu)
        return totals

    def self_times(self) -> dict[int, float]:
        """Per-span *self* wall time: own wall minus direct children's wall.

        Computed over the 9-decimal-rounded walls that the trace schema
        serialises, so re-deriving self times from an imported trace yields
        exactly the values the original registry exported.  Clamped at zero
        (float round-off can push a fully-delegating parent slightly
        negative).
        """
        child_wall: dict[int, float] = {}
        for record in self.spans:
            if record.parent_id is not None:
                child_wall[record.parent_id] = child_wall.get(
                    record.parent_id, 0.0
                ) + round(record.wall, 9)
        return {
            record.span_id: max(
                0.0, round(record.wall, 9) - child_wall.get(record.span_id, 0.0)
            )
            for record in self.spans
        }

    def span_stats(self) -> list[dict[str, object]]:
        """Per-span-name aggregates: count, wall/cpu/self totals, self percentiles.

        One ``span_stats`` record per distinct span name, sorted by name —
        exactly the derived lines :meth:`export_jsonl` writes.  Percentiles
        are nearest-rank over the per-occurrence self times (deterministic,
        no interpolation).
        """
        selfs = self.self_times()
        per_name: dict[str, list[Span]] = {}
        for record in self.spans:
            per_name.setdefault(record.name, []).append(record)
        stats: list[dict[str, object]] = []
        for name in sorted(per_name):
            records = per_name[name]
            self_values = sorted(selfs[record.span_id] for record in records)
            stats.append(
                {
                    "type": "span_stats",
                    "name": name,
                    "count": len(records),
                    "wall": round(sum(round(r.wall, 9) for r in records), 9),
                    "cpu": round(sum(round(r.cpu, 9) for r in records), 9),
                    "self": round(sum(self_values), 9),
                    "self_p50": round(_nearest_rank(self_values, 0.50), 9),
                    "self_p95": round(_nearest_rank(self_values, 0.95), 9),
                    "self_max": round(self_values[-1], 9),
                }
            )
        return stats

    def span_tree(self) -> list[dict[str, object]]:
        """Call-tree aggregation: one record per distinct root→span name path.

        Paths join span names with ``;`` (the collapsed-stack convention),
        aggregating every occurrence of the same path; sorted by path.
        """
        selfs = self.self_times()
        by_id = {record.span_id: record for record in self.spans}
        paths: dict[int, str] = {}

        def path_of(record: Span) -> str:
            cached = paths.get(record.span_id)
            if cached is not None:
                return cached
            if record.parent_id is not None and record.parent_id in by_id:
                path = path_of(by_id[record.parent_id]) + ";" + record.name
            else:
                path = record.name
            paths[record.span_id] = path
            return path

        aggregated: dict[str, list[float]] = {}
        for record in self.spans:
            entry = aggregated.setdefault(path_of(record), [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += round(record.wall, 9)
            entry[2] += selfs[record.span_id]
        return [
            {
                "type": "span_tree",
                "path": path,
                "count": int(aggregated[path][0]),
                "wall": round(aggregated[path][1], 9),
                "self": round(aggregated[path][2], 9),
            }
            for path in sorted(aggregated)
        ]

    def finalize(self) -> None:
        """Stop owned memory tracing and freeze the process peak RSS.

        Idempotent; a no-op for registries created without ``memory=True``.
        Called automatically by :func:`deactivate`, :func:`session` exit and
        the first :meth:`export_jsonl`, so the exported ``peak_rss_kb`` is
        stable across repeated exports.
        """
        if not self.memory:
            return
        if self.peak_rss_kb is None:
            try:
                import resource

                self.peak_rss_kb = int(
                    resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                )
            except ImportError:  # pragma: no cover - non-POSIX platforms
                self.peak_rss_kb = 0
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._owns_tracemalloc = False

    # ------------------------------------------------------------------
    # cross-process transport
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """A picklable dump of everything recorded so far."""
        return {
            "label": self.label,
            "spans": [span.as_record() for span in self.spans],
            "counters": [
                {"name": name, "tags": dict(tags), "value": value}
                for (name, tags), value in self.counters.items()
            ],
            "histograms": [
                histogram.as_record(name)
                for name, histogram in self.histograms.items()
            ],
        }

    def merge(self, payload: Mapping[str, object]) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Span ids are remapped past the current maximum, so merged traces
        keep globally unique ids and intact parent links; the spans gain a
        ``worker`` tag carrying the snapshot's label (when present).
        """
        offset = len(self.spans)
        label = str(payload.get("label") or "")
        for record in payload.get("spans", ()):  # type: ignore[union-attr]
            tags = dict(record.get("tags", {}))
            if label and "worker" not in tags:
                tags["worker"] = label
            parent = record.get("parent")
            alloc = record.get("alloc")
            peak = record.get("peak")
            self.spans.append(
                Span(
                    span_id=int(record["id"]) + offset,
                    parent_id=int(parent) + offset if parent is not None else None,
                    depth=int(record.get("depth", 0)),
                    name=str(record["name"]),
                    tags=tags,
                    start=float(record.get("start", 0.0)),
                    wall=float(record.get("wall", 0.0)),
                    cpu=float(record.get("cpu", 0.0)),
                    status=str(record.get("status", "ok")),
                    error=record.get("error"),  # type: ignore[arg-type]
                    alloc=int(alloc) if alloc is not None else None,  # type: ignore[arg-type]
                    peak=int(peak) if peak is not None else None,  # type: ignore[arg-type]
                )
            )
        for record in payload.get("counters", ()):  # type: ignore[union-attr]
            self.count(
                str(record["name"]),
                float(record["value"]),
                **dict(record.get("tags", {})),
            )
        for record in payload.get("histograms", ()):  # type: ignore[union-attr]
            incoming = Histogram(
                edges=tuple(record["edges"]),
                counts=list(record["counts"]),
                count=int(record["count"]),
                sum=float(record["sum"]),
                min=record.get("min"),  # type: ignore[arg-type]
                max=record.get("max"),  # type: ignore[arg-type]
            )
            name = str(record["name"])
            existing = self.histograms.get(name)
            if existing is None:
                self.histograms[name] = incoming
            else:
                existing.merge(incoming)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_jsonl(self, path: object) -> int:
        """Write the trace as JSON lines; returns the number of lines.

        Output ordering (meta, spans by id, span_stats by name, span_tree
        by path, counters sorted by name+tags, histograms sorted by name)
        and ``sort_keys=True`` make repeated exports of the same registry
        byte-identical.
        """
        self.finalize()
        buffer = io.StringIO()
        meta: dict[str, object] = {
            "type": "meta",
            "schema": 2,
            "label": self.label,
            "created_at": self.created_at,
        }
        if self.memory:
            meta["memory"] = True
            meta["peak_rss_kb"] = self.peak_rss_kb
        lines = 1
        buffer.write(json.dumps(meta, sort_keys=True) + "\n")
        selfs = self.self_times()
        for record in self.spans:
            row = record.as_record()
            row["self"] = round(selfs[record.span_id], 9)
            buffer.write(json.dumps(row, sort_keys=True) + "\n")
            lines += 1
        for row in self.span_stats():
            buffer.write(json.dumps(row, sort_keys=True) + "\n")
            lines += 1
        for row in self.span_tree():
            buffer.write(json.dumps(row, sort_keys=True) + "\n")
            lines += 1
        for (name, tags), value in sorted(self.counters.items()):
            record = {"type": "counter", "name": name, "tags": dict(tags), "value": value}
            buffer.write(json.dumps(record, sort_keys=True) + "\n")
            lines += 1
        for name in sorted(self.histograms):
            record = self.histograms[name].as_record(name)
            buffer.write(json.dumps(record, sort_keys=True) + "\n")
            lines += 1
        with open(path, "w", encoding="utf-8", newline="\n") as handle:  # type: ignore[arg-type]
            handle.write(buffer.getvalue())
        return lines

    #: Widest span-name column ``summary()`` will render before truncating.
    SUMMARY_NAME_WIDTH = 48

    def summary(self) -> str:
        """A compact human-readable digest of the registry.

        Span names render in a dynamically sized column capped at
        :attr:`SUMMARY_NAME_WIDTH` characters (longer names are truncated
        with an ellipsis); spans sort by descending total wall (name as the
        tie-break), counters and histograms sort by name — the whole digest
        is deterministic for a given registry.
        """
        lines: list[str] = []
        title = f"telemetry summary — {self.label}" if self.label else "telemetry summary"
        lines.append(title)
        stats = self.span_stats()
        if stats:
            lines.append("spans:")
            cap = self.SUMMARY_NAME_WIDTH

            def clip(name: str) -> str:
                return name if len(name) <= cap else name[: cap - 1] + "…"

            width = min(cap, max(len(clip(str(row["name"]))) for row in stats))
            for row in sorted(stats, key=lambda r: (-float(r["wall"]), str(r["name"]))):
                lines.append(
                    f"  {clip(str(row['name'])):<{width}}  n={row['count']:<6d}"
                    f" wall={float(row['wall']):9.4f}s self={float(row['self']):9.4f}s"
                    f" cpu={float(row['cpu']):9.4f}s p95={float(row['self_p95']):.4f}s"
                )
        if self.memory:
            mem_spans = [s for s in self.spans if s.peak is not None]
            if mem_spans:
                lines.append("memory (top spans by peak):")
                top = sorted(
                    mem_spans, key=lambda s: (-(s.peak or 0), s.span_id)
                )[:10]
                for span_record in top:
                    lines.append(
                        f"  {span_record.name}: peak={span_record.peak or 0:,}B"
                        f" alloc={span_record.alloc or 0:,}B"
                    )
            if self.peak_rss_kb:
                lines.append(f"  process peak RSS: {self.peak_rss_kb:,} kB")
        names = sorted({name for name, _ in self.counters})
        if names:
            lines.append("counters:")
            for name in names:
                breakdown = self.counter_breakdown(name)
                total = sum(breakdown.values())
                lines.append(f"  {name} = {total:g}")
                if len(breakdown) > 1 or any(tags for tags in breakdown):
                    for tags in sorted(breakdown):
                        tag_text = ", ".join(f"{k}={v}" for k, v in tags) or "(untagged)"
                        lines.append(f"    {tag_text}: {breakdown[tags]:g}")
        if self.histograms:
            lines.append("histograms:")
            for name in sorted(self.histograms):
                histogram = self.histograms[name]
                mean = histogram.mean
                lines.append(
                    f"  {name}: n={histogram.count} mean="
                    + (f"{mean:.4g}" if mean is not None else "-")
                    + (f" min={histogram.min:.4g} max={histogram.max:.4g}"
                       if histogram.count else "")
                )
                peak = max(histogram.counts) if histogram.count else 0
                labels = [f"<={edge:g}" for edge in histogram.edges] + [
                    f">{histogram.edges[-1]:g}"
                ]
                for label, bucket in zip(labels, histogram.counts, strict=True):
                    if peak:
                        bar = "#" * max(1, round(24 * bucket / peak)) if bucket else ""
                    else:
                        bar = ""
                    lines.append(f"    {label:>8} {bucket:6d} {bar}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# module-level switchboard (the API the instrumented code calls)
# ----------------------------------------------------------------------
_ACTIVE: TelemetryRegistry | None = None


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP = _NoopSpan()


def enabled() -> bool:
    """True when a registry is active and instrumentation should record."""
    return _ACTIVE is not None


def get() -> TelemetryRegistry | None:
    """The active registry, or None when telemetry is disabled."""
    return _ACTIVE


def activate(registry: TelemetryRegistry | None = None) -> TelemetryRegistry:
    """Install (and return) the process-wide active registry."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else TelemetryRegistry()
    return _ACTIVE


def deactivate() -> TelemetryRegistry | None:
    """Remove and return the active registry (telemetry goes quiet).

    Finalizes the registry on the way out (stops owned memory tracing,
    freezes the peak RSS) so callers can export it afterwards.
    """
    global _ACTIVE
    registry, _ACTIVE = _ACTIVE, None
    if registry is not None:
        registry.finalize()
    return registry


@contextmanager
def session(label: str = "", memory: bool = False) -> Iterator[TelemetryRegistry]:
    """Activate a fresh registry for the duration of a ``with`` block.

    The previous registry (if any) is restored on exit, so sessions nest
    safely in tests.  ``memory=True`` creates the registry with tracemalloc
    span tracking (see :class:`TelemetryRegistry`); the tracer is stopped
    again when the block exits.
    """
    global _ACTIVE
    previous = _ACTIVE
    registry = TelemetryRegistry(label=label, memory=memory)
    _ACTIVE = registry
    try:
        yield registry
    finally:
        registry.finalize()
        _ACTIVE = previous


def span(name: str, **tags: object):
    """Module-level span: records on the active registry, no-op otherwise."""
    if _ACTIVE is None:
        return _NOOP
    return _ACTIVE.span(name, **tags)


def count(name: str, value: float = 1, **tags: object) -> None:
    """Module-level counter increment (no-op when telemetry is disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.count(name, value, **tags)


def observe(
    name: str,
    value: float,
    edges: Sequence[float] = DEFAULT_FRACTION_EDGES,
) -> None:
    """Module-level histogram observation (no-op when telemetry is disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.observe(name, value, edges)
