"""Dependency-light telemetry: spans, counters, histograms, jsonl traces.

The observability layer answers one question for every scaling item on the
roadmap: *where do time and fallbacks actually go?*  It is deliberately
small — stdlib only, one module — and deliberately cheap: when no registry
is active (the default), every instrumentation call is a dictionary-free
no-op, so the hot paths pay a single ``is None`` check.

Concepts
--------
* **Span** — one timed region with monotonic wall time
  (:func:`time.perf_counter`) and CPU time (:func:`time.process_time`),
  free-form string tags, and exception capture: a span that exits through
  an exception is recorded with ``status="error"`` and the exception text,
  and the exception is re-raised.  Spans nest through a per-registry stack,
  so each records its parent id and depth.
* **Counter** — a named monotonically accumulated number, keyed by name
  plus a (sorted) tag set: ``count("dspt.fallback", reason="plateau")``.
* **Histogram** — fixed-bucket value distribution.  Bucket *i* counts
  values ``value <= edges[i]`` (first matching edge); values above the
  last edge land in an overflow bucket.  Count/sum/min/max ride along so
  means survive merging.
* **TelemetryRegistry** — the in-process collection of all three, with a
  picklable :meth:`~TelemetryRegistry.snapshot` and a
  :meth:`~TelemetryRegistry.merge` so worker processes can ship their
  registries back to the parent (span ids are offset-remapped, counters
  and histogram buckets are summed).

Trace schema (``trace.jsonl``)
------------------------------
One JSON object per line, ``sort_keys=True`` throughout, so exporting the
same registry twice yields byte-identical files:

* ``{"type": "meta", "label": ..., "created_at": ..., "schema": 1}`` —
  first line, stamped once at registry creation.
* ``{"type": "span", "id": ..., "parent": ..., "depth": ..., "name": ...,
  "tags": {...}, "start": ..., "wall": ..., "cpu": ...,
  "status": "ok"|"error", "error": ...}`` — ``start`` is seconds since the
  registry was created; ``wall``/``cpu`` are durations in seconds.
* ``{"type": "counter", "name": ..., "tags": {...}, "value": ...}`` —
  sorted by (name, tags).
* ``{"type": "histogram", "name": ..., "edges": [...], "counts": [...],
  "count": ..., "sum": ..., "min": ..., "max": ...}`` — ``counts`` has
  ``len(edges) + 1`` entries (the last is the overflow bucket); sorted by
  name.

Usage
-----
>>> from repro.obs import telemetry
>>> with telemetry.session("demo") as registry:
...     with telemetry.span("outer", kind="example"):
...         telemetry.count("widgets", 3)
...         telemetry.observe("sizes", 0.25, edges=(0.1, 0.5, 1.0))
>>> registry.counter_value("widgets")
3.0

Outside a :func:`session` (or an explicit :func:`activate`), the same
calls do nothing and cost almost nothing.
"""

from __future__ import annotations

import io
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "Histogram",
    "TelemetryRegistry",
    "activate",
    "deactivate",
    "enabled",
    "get",
    "session",
    "span",
    "count",
    "observe",
    "DEFAULT_FRACTION_EDGES",
]

#: Default bucket edges for fraction-valued histograms (e.g. the affected
#: cone as a fraction of reachable nodes).  Dense at the low end, where the
#: incremental path wins, because that is where tuning decisions live.
DEFAULT_FRACTION_EDGES: Tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0,
)

TagsKey = Tuple[Tuple[str, str], ...]


def _tags_key(tags: Mapping[str, object]) -> TagsKey:
    return tuple(sorted((str(k), str(v)) for k, v in tags.items()))


@dataclass
class Span:
    """One completed (or still-open) timed region."""

    span_id: int
    parent_id: Optional[int]
    depth: int
    name: str
    tags: Dict[str, str]
    start: float  # seconds since the registry epoch
    wall: float = 0.0
    cpu: float = 0.0
    status: str = "open"  # "open" | "ok" | "error"
    error: Optional[str] = None

    def as_record(self) -> Dict[str, object]:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "tags": self.tags,
            "start": round(self.start, 9),
            "wall": round(self.wall, 9),
            "cpu": round(self.cpu, 9),
            "status": self.status,
            "error": self.error,
        }


@dataclass
class Histogram:
    """Fixed-bucket histogram: bucket *i* counts ``value <= edges[i]``.

    ``counts`` carries one extra overflow bucket for values above the last
    edge.  ``sum``/``min``/``max`` are exact over the observed values, so a
    merged histogram still reports an exact mean and range.
    """

    edges: Tuple[float, ...]
    counts: List[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(self.edges) != sorted(self.edges):
            raise ValueError("histogram edges must be sorted ascending")
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        for position, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[position] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        if other.edges != self.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.sum += other.sum
        for bound, pick in (("min", min), ("max", max)):
            theirs = getattr(other, bound)
            if theirs is not None:
                ours = getattr(self, bound)
                setattr(self, bound, theirs if ours is None else pick(ours, theirs))

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def as_record(self, name: str) -> Dict[str, object]:
        return {
            "type": "histogram",
            "name": name,
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": self.min,
            "max": self.max,
        }


class TelemetryRegistry:
    """In-process collection of spans, counters and histograms."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.created_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        self.spans: List[Span] = []
        self.counters: Dict[Tuple[str, TagsKey], float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._stack: List[Span] = []
        self._wall_epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **tags: object) -> Iterator[Span]:
        """Record a nested timed region; exceptions are captured, then re-raised."""
        parent = self._stack[-1] if self._stack else None
        record = Span(
            span_id=len(self.spans),
            parent_id=parent.span_id if parent else None,
            depth=parent.depth + 1 if parent else 0,
            name=name,
            tags={str(k): str(v) for k, v in tags.items()},
            start=time.perf_counter() - self._wall_epoch,
        )
        self.spans.append(record)
        self._stack.append(record)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield record
        except BaseException as exc:
            record.status = "error"
            record.error = f"{type(exc).__name__}: {exc}"
            raise
        else:
            record.status = "ok"
        finally:
            record.wall = time.perf_counter() - wall0
            record.cpu = time.process_time() - cpu0
            self._stack.pop()

    def count(self, name: str, value: float = 1, **tags: object) -> None:
        """Add ``value`` to a named counter (tags distinguish sub-streams)."""
        key = (name, _tags_key(tags))
        self.counters[key] = self.counters.get(key, 0.0) + float(value)

    def observe(
        self,
        name: str,
        value: float,
        edges: Sequence[float] = DEFAULT_FRACTION_EDGES,
    ) -> None:
        """Record one value into a named fixed-bucket histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(edges=tuple(edges))
        histogram.observe(value)

    # ------------------------------------------------------------------
    # aggregation / views
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **tags: object) -> float:
        if tags:
            return self.counters.get((name, _tags_key(tags)), 0.0)
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def counter_breakdown(self, name: str) -> Dict[TagsKey, float]:
        return {t: v for (n, t), v in self.counters.items() if n == name}

    def span_totals(self) -> Dict[str, Tuple[int, float, float]]:
        """``{name: (count, total wall seconds, total cpu seconds)}``."""
        totals: Dict[str, Tuple[int, float, float]] = {}
        for record in self.spans:
            count_, wall, cpu = totals.get(record.name, (0, 0.0, 0.0))
            totals[record.name] = (count_ + 1, wall + record.wall, cpu + record.cpu)
        return totals

    # ------------------------------------------------------------------
    # cross-process transport
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A picklable dump of everything recorded so far."""
        return {
            "label": self.label,
            "spans": [span.as_record() for span in self.spans],
            "counters": [
                {"name": name, "tags": dict(tags), "value": value}
                for (name, tags), value in self.counters.items()
            ],
            "histograms": [
                histogram.as_record(name)
                for name, histogram in self.histograms.items()
            ],
        }

    def merge(self, payload: Mapping[str, object]) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Span ids are remapped past the current maximum, so merged traces
        keep globally unique ids and intact parent links; the spans gain a
        ``worker`` tag carrying the snapshot's label (when present).
        """
        offset = len(self.spans)
        label = str(payload.get("label") or "")
        for record in payload.get("spans", ()):  # type: ignore[union-attr]
            tags = dict(record.get("tags", {}))
            if label and "worker" not in tags:
                tags["worker"] = label
            parent = record.get("parent")
            self.spans.append(
                Span(
                    span_id=int(record["id"]) + offset,
                    parent_id=int(parent) + offset if parent is not None else None,
                    depth=int(record.get("depth", 0)),
                    name=str(record["name"]),
                    tags=tags,
                    start=float(record.get("start", 0.0)),
                    wall=float(record.get("wall", 0.0)),
                    cpu=float(record.get("cpu", 0.0)),
                    status=str(record.get("status", "ok")),
                    error=record.get("error"),  # type: ignore[arg-type]
                )
            )
        for record in payload.get("counters", ()):  # type: ignore[union-attr]
            self.count(
                str(record["name"]),
                float(record["value"]),
                **dict(record.get("tags", {})),
            )
        for record in payload.get("histograms", ()):  # type: ignore[union-attr]
            incoming = Histogram(
                edges=tuple(record["edges"]),
                counts=list(record["counts"]),
                count=int(record["count"]),
                sum=float(record["sum"]),
                min=record.get("min"),  # type: ignore[arg-type]
                max=record.get("max"),  # type: ignore[arg-type]
            )
            name = str(record["name"])
            existing = self.histograms.get(name)
            if existing is None:
                self.histograms[name] = incoming
            else:
                existing.merge(incoming)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_jsonl(self, path: object) -> int:
        """Write the trace as JSON lines; returns the number of lines.

        Output ordering (meta, spans by id, counters sorted by name+tags,
        histograms sorted by name) and ``sort_keys=True`` make repeated
        exports of the same registry byte-identical.
        """
        buffer = io.StringIO()
        meta = {
            "type": "meta",
            "schema": 1,
            "label": self.label,
            "created_at": self.created_at,
        }
        lines = 1
        buffer.write(json.dumps(meta, sort_keys=True) + "\n")
        for record in self.spans:
            buffer.write(json.dumps(record.as_record(), sort_keys=True) + "\n")
            lines += 1
        for (name, tags), value in sorted(self.counters.items()):
            record = {"type": "counter", "name": name, "tags": dict(tags), "value": value}
            buffer.write(json.dumps(record, sort_keys=True) + "\n")
            lines += 1
        for name in sorted(self.histograms):
            record = self.histograms[name].as_record(name)
            buffer.write(json.dumps(record, sort_keys=True) + "\n")
            lines += 1
        with open(path, "w", encoding="utf-8", newline="\n") as handle:  # type: ignore[arg-type]
            handle.write(buffer.getvalue())
        return lines

    def summary(self) -> str:
        """A compact human-readable digest of the registry."""
        lines: List[str] = []
        title = f"telemetry summary — {self.label}" if self.label else "telemetry summary"
        lines.append(title)
        totals = self.span_totals()
        if totals:
            lines.append("spans:")
            width = max(len(name) for name in totals)
            for name in sorted(totals, key=lambda n: -totals[n][1]):
                count_, wall, cpu = totals[name]
                lines.append(
                    f"  {name:<{width}}  n={count_:<6d} wall={wall:9.4f}s cpu={cpu:9.4f}s"
                )
        names = sorted({name for name, _ in self.counters})
        if names:
            lines.append("counters:")
            for name in names:
                breakdown = self.counter_breakdown(name)
                total = sum(breakdown.values())
                lines.append(f"  {name} = {total:g}")
                if len(breakdown) > 1 or any(tags for tags in breakdown):
                    for tags in sorted(breakdown):
                        tag_text = ", ".join(f"{k}={v}" for k, v in tags) or "(untagged)"
                        lines.append(f"    {tag_text}: {breakdown[tags]:g}")
        if self.histograms:
            lines.append("histograms:")
            for name in sorted(self.histograms):
                histogram = self.histograms[name]
                mean = histogram.mean
                lines.append(
                    f"  {name}: n={histogram.count} mean="
                    + (f"{mean:.4g}" if mean is not None else "-")
                    + (f" min={histogram.min:.4g} max={histogram.max:.4g}"
                       if histogram.count else "")
                )
                peak = max(histogram.counts) if histogram.count else 0
                labels = [f"<={edge:g}" for edge in histogram.edges] + [
                    f">{histogram.edges[-1]:g}"
                ]
                for label, bucket in zip(labels, histogram.counts):
                    if peak:
                        bar = "#" * max(1, round(24 * bucket / peak)) if bucket else ""
                    else:
                        bar = ""
                    lines.append(f"    {label:>8} {bucket:6d} {bar}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# module-level switchboard (the API the instrumented code calls)
# ----------------------------------------------------------------------
_ACTIVE: Optional[TelemetryRegistry] = None


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP = _NoopSpan()


def enabled() -> bool:
    """True when a registry is active and instrumentation should record."""
    return _ACTIVE is not None


def get() -> Optional[TelemetryRegistry]:
    """The active registry, or None when telemetry is disabled."""
    return _ACTIVE


def activate(registry: Optional[TelemetryRegistry] = None) -> TelemetryRegistry:
    """Install (and return) the process-wide active registry."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else TelemetryRegistry()
    return _ACTIVE


def deactivate() -> Optional[TelemetryRegistry]:
    """Remove and return the active registry (telemetry goes quiet)."""
    global _ACTIVE
    registry, _ACTIVE = _ACTIVE, None
    return registry


@contextmanager
def session(label: str = "") -> Iterator[TelemetryRegistry]:
    """Activate a fresh registry for the duration of a ``with`` block.

    The previous registry (if any) is restored on exit, so sessions nest
    safely in tests.
    """
    global _ACTIVE
    previous = _ACTIVE
    registry = TelemetryRegistry(label=label)
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous


def span(name: str, **tags: object):
    """Module-level span: records on the active registry, no-op otherwise."""
    if _ACTIVE is None:
        return _NOOP
    return _ACTIVE.span(name, **tags)


def count(name: str, value: float = 1, **tags: object) -> None:
    """Module-level counter increment (no-op when telemetry is disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.count(name, value, **tags)


def observe(
    name: str,
    value: float,
    edges: Sequence[float] = DEFAULT_FRACTION_EDGES,
) -> None:
    """Module-level histogram observation (no-op when telemetry is disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.observe(name, value, edges)
