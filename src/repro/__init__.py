"""SPEF: optimal OSPF traffic engineering with one extra link weight.

Reproduction of "One More Weight is Enough: Toward the Optimal Traffic
Engineering with OSPF" (Xu, Liu, Liu, Shen -- ICDCS 2011).

The public API re-exports the pieces most users need:

* :class:`~repro.network.Network` / :class:`~repro.network.TrafficMatrix` --
  the problem inputs;
* :class:`~repro.core.LoadBalanceObjective` -- the (q, beta) objective family;
* :class:`~repro.core.SPEF` / :class:`~repro.protocols.SPEFProtocol` -- the
  protocol itself;
* the baselines (:class:`~repro.protocols.OSPF`,
  :class:`~repro.protocols.PEFT`, :class:`~repro.protocols.FortzThorup`,
  :class:`~repro.protocols.MinMaxMLU`);
* topologies and traffic generators used in the paper's evaluation;
* the scenario engine (:class:`~repro.scenarios.Scenario`,
  :class:`~repro.scenarios.BatchRunner`) for failure sweeps, demand
  ensembles and cached parallel robustness evaluation;
* the vectorized routing backend (:mod:`repro.routing`):
  :class:`~repro.routing.SparseRouter` compiles shortest-path DAGs into CSR
  split-ratio matrices and routes whole demand ensembles in stacked sparse
  sweeps; every assignment routine accepts ``backend="sparse"|"python"``;
* the online control plane (:mod:`repro.online`):
  :class:`~repro.online.TEController` absorbing event streams over
  incremental shortest-path DAGs, :class:`~repro.online.ControllerSession`
  — the feed/read/subscribe API both the batch replay and the serve
  daemon drive — plus the closed-loop policies and the versioned event
  wire schema (:func:`~repro.online.to_dict` /
  :func:`~repro.online.from_dict`, trace files via
  :func:`~repro.online.read_event_trace`);
* the serving layer (:mod:`repro.serve`): the ``repro serve`` daemon — a
  long-running multi-tenant TE control service over JSON-lines TCP —
  with its blocking :class:`~repro.serve.ServeClient`;
* the observability layer (:mod:`repro.obs`): structured spans, counters
  and fixed-bucket histograms wired through the online controller, the
  scenario runner and the optimizers, exported as ``trace.jsonl`` files by
  ``repro trace``;
* the results store (:mod:`repro.results`): SQLite-backed run manifests,
  ``query``/``diff``/``aggregate`` over recorded sweeps and benchmarks, and
  the ``BENCH_*.json`` views — all scriptable through the ``repro`` CLI
  (:mod:`repro.cli`).
"""

from . import (
    core,
    network,
    obs,
    online,
    protocols,
    results,
    routing,
    scenarios,
    serve,
    solvers,
    topology,
    traffic,
)
from .core import (
    SPEF,
    LoadBalanceObjective,
    SPEFConfig,
    SPEFSolution,
    TEProblem,
    TESolution,
    solve_optimal_te,
)
from .network import FlowAssignment, Network, TrafficMatrix
from .online import (
    CapacityChange,
    ClosedLoopPolicy,
    ControllerSession,
    DemandUpdate,
    DynamicSPT,
    LinkFailure,
    LinkRecovery,
    LinkWeightChange,
    NetworkEvent,
    OraclePolicy,
    TEController,
    read_event_trace,
    replay_failure_trace,
    write_event_trace,
)
from .protocols import OSPF, PEFT, FortzThorup, MinMaxMLU, SPEFProtocol
from .results import ResultsStore, RunManifest
from .routing import CompiledDagSet, SparseRouter, batched_link_loads
from .scenarios import BatchRunner, ProtocolSpec, Scenario, ScenarioResult
from .serve import ServeClient, TEServer

__version__ = "1.10.0"

__all__ = [
    "core",
    "network",
    "obs",
    "online",
    "protocols",
    "results",
    "routing",
    "scenarios",
    "serve",
    "solvers",
    "topology",
    "traffic",
    "CompiledDagSet",
    "SparseRouter",
    "batched_link_loads",
    "SPEF",
    "LoadBalanceObjective",
    "SPEFConfig",
    "SPEFSolution",
    "TEProblem",
    "TESolution",
    "solve_optimal_te",
    "FlowAssignment",
    "Network",
    "TrafficMatrix",
    "OSPF",
    "PEFT",
    "FortzThorup",
    "MinMaxMLU",
    "SPEFProtocol",
    "Scenario",
    "ScenarioResult",
    "BatchRunner",
    "ProtocolSpec",
    "CapacityChange",
    "ClosedLoopPolicy",
    "ControllerSession",
    "DemandUpdate",
    "DynamicSPT",
    "LinkFailure",
    "LinkRecovery",
    "LinkWeightChange",
    "NetworkEvent",
    "OraclePolicy",
    "TEController",
    "read_event_trace",
    "replay_failure_trace",
    "write_event_trace",
    "ServeClient",
    "TEServer",
    "ResultsStore",
    "RunManifest",
    "__version__",
]
