"""Span-timing history and the statistical perf-regression gate.

``repro trace`` runs persist per-span timing aggregates
(:func:`repro.obs.profiling.profile_records`, identity
``scenario="__profile__"``) next to their sweep/replay records.  This
module is the read side: trends of a span's self time across runs, and a
gate that answers CI's question — *did this span get slower than its own
history explains?*

The gate is statistical, not exact: shared runners jitter, so a span's
baseline is summarised as ``median ± k·MAD`` over a window of prior runs,
widened by two floors so quiet spans cannot flap:

* ``min_seconds`` — an absolute floor: a microsecond-scale span doubling
  is still microseconds, never a regression worth failing a build over;
* ``rel_floor`` — a relative floor (fraction of the median): with a tiny
  window (CI gates against ``latest~1``, a single baseline run) the MAD is
  zero and the relative floor carries the noise allowance alone.

A span regresses when ``head > median + max(k·MAD, min_seconds,
rel_floor·median)``.  Spans present in the head run but absent from every
baseline run are reported as *new* (informational, never failing): a
freshly instrumented span has no history to regress against.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from ..obs.profiling import PROFILE_SCENARIO

__all__ = [
    "PROFILE_SCENARIO",
    "PerfError",
    "GateReport",
    "SpanVerdict",
    "gate",
    "profile_rows",
]


class PerfError(ValueError):
    """Raised for ungateable requests (no profile records, bad refs...)."""


def _span_values(
    records: Sequence[Mapping[str, object]], metric: str
) -> dict[str, float]:
    """``{span name: metric value}`` over one run's ``__profile__`` records."""
    values: dict[str, float] = {}
    for record in records:
        if record.get("scenario") != PROFILE_SCENARIO:
            continue
        value = record.get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            values[str(record.get("span", record.get("workload", "")))] = float(value)
    return values


def profile_rows(
    store: object,
    topology: str | None = None,
    span: str | None = None,
    kind: str | None = None,
    limit: int | None = None,
) -> list[dict[str, object]]:
    """Flat ``__profile__`` record rows across runs (newest runs first)."""
    return store.query(  # type: ignore[attr-defined]
        kind=kind,
        topology=topology,
        scenario=PROFILE_SCENARIO,
        workload=span,
        limit=limit,
    )


@dataclass
class SpanVerdict:
    """One span's gate outcome: head value vs its baseline noise band."""

    span: str
    head: float
    baseline_median: float
    mad: float
    threshold: float
    samples: int
    regressed: bool

    def as_row(self) -> dict[str, object]:
        return {
            "span": self.span,
            "head": f"{self.head:.6f}",
            "median": f"{self.baseline_median:.6f}",
            "mad": f"{self.mad:.6f}",
            "threshold": f"{self.threshold:.6f}",
            "n": self.samples,
            "status": "REGRESSED" if self.regressed else "ok",
        }


@dataclass
class GateReport:
    """The full gate outcome for one BASE..HEAD comparison."""

    base: str
    head: str
    metric: str
    window: int
    verdicts: list[SpanVerdict] = field(default_factory=list)
    new_spans: list[str] = field(default_factory=list)
    vanished_spans: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[SpanVerdict]:
        return [verdict for verdict in self.verdicts if verdict.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        lines = [
            f"perf gate {self.base}..{self.head} on {self.metric} "
            f"(window={self.window} run(s))",
            f"  {len(self.verdicts)} span(s) gated: "
            f"{len(self.regressions)} regression(s)",
        ]
        if self.new_spans:
            lines.append(
                f"  new span(s) without history (informational): "
                f"{', '.join(self.new_spans)}"
            )
        if self.vanished_spans:
            lines.append(
                f"  span(s) in baseline but not head (informational): "
                f"{', '.join(self.vanished_spans)}"
            )
        return "\n".join(lines)


def gate(
    store: object,
    base_ref: str,
    head_ref: str,
    metric: str = "self_seconds",
    k: float = 5.0,
    min_seconds: float = 0.005,
    rel_floor: float = 0.5,
    window: int = 10,
) -> GateReport:
    """Gate ``head_ref``'s span timings against history ending at ``base_ref``.

    The baseline window is the ``window`` newest runs of the *same family*
    (kind + topology) starting at ``base_ref`` and walking backwards in
    recorded order, so ``gate(store, "latest~1:sweep", "latest:sweep")``
    compares a fresh run against up to ``window`` of its predecessors.
    Raises :class:`PerfError` when either side carries no ``__profile__``
    records (untraced runs have nothing to gate).
    """
    if window < 1:
        raise PerfError(f"window must be >= 1, got {window}")
    base = store.get_run(base_ref)  # type: ignore[attr-defined]
    head = store.get_run(head_ref)  # type: ignore[attr-defined]
    head_values = _span_values(store.records(head.run_id), metric)  # type: ignore[attr-defined]
    if not head_values:
        raise PerfError(
            f"run {head.run_id} has no {PROFILE_SCENARIO!r} records — "
            "profile records are written by `repro trace` runs"
        )
    family = store.runs(kind=base.kind, topology=base.topology)  # type: ignore[attr-defined]
    try:
        start = [manifest.run_id for manifest in family].index(base.run_id)
    except ValueError:
        raise PerfError(
            f"base run {base.run_id} not found in its own (kind, topology) "
            "family — store inconsistency"
        ) from None
    history: dict[str, list[float]] = {}
    baseline_runs = 0
    for manifest in family[start : start + window]:
        if manifest.run_id == head.run_id:
            continue
        values = _span_values(store.records(manifest.run_id), metric)  # type: ignore[attr-defined]
        if not values:
            continue
        baseline_runs += 1
        for span, value in values.items():
            history.setdefault(span, []).append(value)
    if not baseline_runs:
        raise PerfError(
            f"no {PROFILE_SCENARIO!r} records in the {window}-run window at "
            f"{base.run_id} — nothing to gate against"
        )
    report = GateReport(
        base=base.run_id, head=head.run_id, metric=metric, window=window
    )
    for span in sorted(head_values):
        values = history.get(span)
        if not values:
            report.new_spans.append(span)
            continue
        median = statistics.median(values)
        mad = statistics.median([abs(value - median) for value in values])
        threshold = median + max(k * mad, min_seconds, rel_floor * median)
        head_value = head_values[span]
        report.verdicts.append(
            SpanVerdict(
                span=span,
                head=head_value,
                baseline_median=median,
                mad=mad,
                threshold=threshold,
                samples=len(values),
                regressed=head_value > threshold,
            )
        )
    report.vanished_spans = sorted(set(history) - set(head_values))
    return report
