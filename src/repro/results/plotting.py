"""Metric trendlines over recorded runs: terminal sparklines + PNG files.

``repro results plot`` turns the store's flat :meth:`~ResultsStore.query`
rows into one value per run (per optional group), ordered oldest → newest
— the BENCH trajectory over git shas as a picture instead of two raw JSON
views.  Rendering is dependency-light:

* the terminal always works: a Unicode sparkline per series plus a
  per-run table (sha, created, value);
* ``--png`` writes a real image through matplotlib when it is importable,
  and otherwise through a small pure-stdlib PNG writer (zlib + struct):
  640x320 8-bit RGB, recessive light-gray axes/gridlines, 2px series
  lines with small square markers in a fixed categorical palette.  The
  builtin writer draws no text — the terminal output carries the legend
  and the numbers; the image carries the shape.

Series colors are assigned in fixed palette order by first appearance,
never cycled or re-ranked when a filter changes the series count.
"""

from __future__ import annotations

import math
import struct
import zlib
from dataclasses import dataclass
from collections.abc import Callable, Sequence

#: Fixed categorical palette (colorblind-checked order; see README).
PALETTE: tuple[str, ...] = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua-green
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
)

_SPARK = "▁▂▃▄▅▆▇█"

_AGGREGATORS: dict[str, Callable[[Sequence[float]], float]] = {
    "mean": lambda values: sum(values) / len(values),
    "max": max,
    "min": min,
    "last": lambda values: values[-1],
    "sum": sum,
}

AGGREGATIONS = tuple(sorted(_AGGREGATORS))

#: Friendly metric spellings accepted when no record carries the literal
#: name — the headline max-link-utilization metric is stored as ``mlu``.
METRIC_ALIASES: dict[str, str] = {
    "max_utilization": "mlu",
    "max_link_utilization": "mlu",
}


@dataclass
class TrendPoint:
    """One run's aggregated metric value."""

    run_id: str
    created_at: str
    git_sha: str
    value: float


@dataclass
class TrendSeries:
    """One plotted line: a label and its per-run points (oldest first)."""

    label: str
    points: list[TrendPoint]

    @property
    def values(self) -> list[float]:
        return [point.value for point in self.points]


class PlotError(ValueError):
    """Raised for unplottable requests (no data, unknown aggregation...)."""


def metric_trend(
    rows: Sequence[dict[str, object]],
    metric: str,
    agg: str = "mean",
    by: str | None = None,
) -> list[TrendSeries]:
    """Aggregate query rows into per-run trend series, oldest run first.

    ``rows`` is :meth:`ResultsStore.query` output (newest runs first);
    rows missing ``metric`` (or carrying a non-numeric value, e.g. the
    ``"inf"`` strings the store sanitises) are skipped.  ``by`` splits the
    trend into one series per distinct value of that field (e.g.
    ``protocol``); series order is first appearance in run order.
    """
    try:
        aggregate = _AGGREGATORS[agg]
    except KeyError:
        raise PlotError(
            f"unknown aggregation {agg!r}; known: {', '.join(AGGREGATIONS)}"
        ) from None
    if metric in METRIC_ALIASES and not any(metric in row for row in rows):
        metric = METRIC_ALIASES[metric]
    # (run_id, series label) -> values; runs keyed in query order (newest
    # first), flipped at the end.
    runs: list[tuple[str, str, str]] = []
    seen_runs: dict[str, None] = {}
    buckets: dict[tuple[str, str], list[float]] = {}
    labels: list[str] = []
    for row in rows:
        value = row.get(metric)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if not math.isfinite(float(value)):
            continue
        run_id = str(row.get("run_id", ""))
        if run_id not in seen_runs:
            seen_runs[run_id] = None
            runs.append(
                (run_id, str(row.get("created_at", "")), str(row.get("git_sha", "")))
            )
        label = str(row.get(by, "")) if by else ""
        if label not in labels:
            labels.append(label)
        buckets.setdefault((run_id, label), []).append(float(value))
    if not buckets:
        raise PlotError(f"no numeric values of {metric!r} in the selected records")
    runs.reverse()  # oldest first
    series: list[TrendSeries] = []
    for label in labels:
        points = [
            TrendPoint(run_id=run_id, created_at=created, git_sha=sha,
                       value=aggregate(buckets[(run_id, label)]))
            for run_id, created, sha in runs
            if (run_id, label) in buckets
        ]
        if points:
            series.append(TrendSeries(label=label, points=points))
    return series


def sparkline(values: Sequence[float]) -> str:
    """Unicode 8-level sparkline of a value sequence."""
    if not values:
        return ""
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK[3] * len(values)
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((value - low) / span * len(_SPARK)))]
        for value in values
    )


def render_terminal(series: Sequence[TrendSeries], metric: str) -> str:
    """The terminal view: sparkline per series + a per-run value table."""
    lines: list[str] = []
    width = max(len(s.label or metric) for s in series)
    for s in series:
        values = s.values
        label = s.label or metric
        lines.append(
            f"{label:<{width}}  {sparkline(values)}  "
            f"n={len(values)} min={min(values):.6g} max={max(values):.6g} "
            f"last={values[-1]:.6g}"
        )
    lines.append("")
    # Per-run table: one row per run, one value column per series.
    by_run: dict[str, dict[str, object]] = {}
    order: list[str] = []
    for s in series:
        for point in s.points:
            if point.run_id not in by_run:
                order.append(point.run_id)
                by_run[point.run_id] = {
                    "run": point.run_id[:17],
                    "created": point.created_at,
                    "git": point.git_sha[:10],
                }
            by_run[point.run_id][s.label or metric] = f"{point.value:.6g}"
    header = list(by_run[order[0]].keys()) if order else []
    for run_id in order:
        for key in by_run[run_id]:
            if key not in header:
                header.append(key)
    widths = {
        key: max(len(str(key)), *(len(str(by_run[r].get(key, ""))) for r in order))
        for key in header
    }
    lines.append("  ".join(str(key).ljust(widths[key]) for key in header))
    for run_id in order:
        row = by_run[run_id]
        lines.append("  ".join(str(row.get(key, "")).ljust(widths[key]) for key in header))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# PNG rendering
# ----------------------------------------------------------------------
def _hex_rgb(color: str) -> tuple[int, int, int]:
    color = color.lstrip("#")
    return int(color[0:2], 16), int(color[2:4], 16), int(color[4:6], 16)


class _Raster:
    """A tiny 8-bit RGB canvas with thick-line and marker primitives."""

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height
        self.pixels = bytearray(b"\xff" * (width * height * 3))

    def set(self, x: int, y: int, rgb: tuple[int, int, int]) -> None:
        if 0 <= x < self.width and 0 <= y < self.height:
            offset = (y * self.width + x) * 3
            self.pixels[offset : offset + 3] = bytes(rgb)

    def dot(self, x: int, y: int, rgb: tuple[int, int, int], radius: int = 0) -> None:
        for dy in range(-radius, radius + 1):
            for dx in range(-radius, radius + 1):
                self.set(x + dx, y + dy, rgb)

    def line(
        self,
        x0: int,
        y0: int,
        x1: int,
        y1: int,
        rgb: tuple[int, int, int],
        thickness: int = 1,
    ) -> None:
        """Bresenham with a square pen of the given thickness."""
        radius = max(0, thickness // 2)
        dx, dy = abs(x1 - x0), -abs(y1 - y0)
        sx = 1 if x0 < x1 else -1
        sy = 1 if y0 < y1 else -1
        err = dx + dy
        while True:
            self.dot(x0, y0, rgb, radius)
            if x0 == x1 and y0 == y1:
                break
            doubled = 2 * err
            if doubled >= dy:
                err += dy
                x0 += sx
            if doubled <= dx:
                err += dx
                y0 += sy

    def encode(self) -> bytes:
        """The canvas as a minimal PNG byte string (one IDAT, filter 0)."""
        raw = bytearray()
        stride = self.width * 3
        for y in range(self.height):
            raw.append(0)  # filter: None
            raw.extend(self.pixels[y * stride : (y + 1) * stride])

        def chunk(kind: bytes, payload: bytes) -> bytes:
            return (
                struct.pack(">I", len(payload))
                + kind
                + payload
                + struct.pack(">I", zlib.crc32(kind + payload) & 0xFFFFFFFF)
            )

        header = struct.pack(">IIBBBBB", self.width, self.height, 8, 2, 0, 0, 0)
        return b"".join(
            (
                b"\x89PNG\r\n\x1a\n",
                chunk(b"IHDR", header),
                chunk(b"IDAT", zlib.compress(bytes(raw), 9)),
                chunk(b"IEND", b""),
            )
        )


def _write_png_builtin(
    path: str, series: Sequence[TrendSeries], metric: str
) -> None:
    width, height = 640, 320
    left, right, top, bottom = 48, 16, 16, 32
    plot_w, plot_h = width - left - right, height - top - bottom
    raster = _Raster(width, height)
    axis = (0xB4, 0xB4, 0xB4)
    grid = (0xE3, 0xE3, 0xE3)
    all_values = [value for s in series for value in s.values]
    low, high = min(all_values), max(all_values)
    if high - low <= 0:
        pad = abs(high) * 0.1 or 1.0
        low, high = low - pad, high + pad
    else:
        pad = (high - low) * 0.08
        low, high = low - pad, high + pad
    max_points = max(len(s.points) for s in series)

    def to_xy(index: int, value: float) -> tuple[int, int]:
        fx = index / (max_points - 1) if max_points > 1 else 0.5
        fy = (value - low) / (high - low)
        return left + round(fx * (plot_w - 1)), top + round((1 - fy) * (plot_h - 1))

    # Recessive horizontal gridlines (quartiles), then the two axes.
    for i in range(1, 4):
        y = top + round(i * (plot_h - 1) / 4)
        raster.line(left, y, left + plot_w - 1, y, grid)
    raster.line(left, top, left, top + plot_h - 1, axis)
    raster.line(left, top + plot_h - 1, left + plot_w - 1, top + plot_h - 1, axis)

    for position, s in enumerate(series):
        rgb = _hex_rgb(PALETTE[position % len(PALETTE)])
        previous: tuple[int, int] | None = None
        for index, value in enumerate(s.values):
            point = to_xy(index, value)
            if previous is not None:
                raster.line(*previous, *point, rgb, thickness=2)
            previous = point
        for index, value in enumerate(s.values):
            raster.dot(*to_xy(index, value), rgb, radius=3)
    with open(path, "wb") as handle:
        handle.write(raster.encode())


#: Accepted ``write_png`` backends (the CLI's ``--png-backend`` choices).
PNG_BACKENDS = ("auto", "matplotlib", "builtin")


def write_png(
    path: str,
    series: Sequence[TrendSeries],
    metric: str,
    backend: str = "auto",
) -> str:
    """Write the trend as a PNG; returns the backend used.

    ``backend="auto"`` (the default) uses matplotlib (Agg backend, full
    axes/labels/legend) when it is importable and the text-free builtin
    raster writer otherwise; ``"matplotlib"`` and ``"builtin"`` force one
    side — forcing matplotlib on a matplotlib-free interpreter raises
    :class:`PlotError`, and forcing builtin is how CI exercises the
    stdlib raster path on images where matplotlib is installed.
    """
    if backend not in PNG_BACKENDS:
        raise PlotError(
            f"unknown png backend {backend!r}; known: {', '.join(PNG_BACKENDS)}"
        )
    if not series or not any(s.points for s in series):
        raise PlotError("nothing to plot")
    if backend == "builtin":
        _write_png_builtin(path, series, metric)
        return "builtin"
    try:
        import matplotlib
    except ImportError:
        if backend == "matplotlib":
            raise PlotError(
                "matplotlib backend requested but matplotlib is not importable"
            ) from None
        _write_png_builtin(path, series, metric)
        return "builtin"
    matplotlib.use("Agg", force=False)
    import matplotlib.pyplot as plt

    figure, axes = plt.subplots(figsize=(8, 4), dpi=100)
    for position, s in enumerate(series):
        color = PALETTE[position % len(PALETTE)]
        axes.plot(
            range(len(s.values)),
            s.values,
            color=color,
            linewidth=2,
            marker="o",
            markersize=4,
            label=s.label or metric,
        )
    axes.set_xticks(range(max(len(s.values) for s in series)))
    axes.set_xticklabels(
        [point.git_sha[:7] for point in max(series, key=lambda s: len(s.points)).points],
        rotation=45,
        ha="right",
        fontsize=8,
    )
    axes.set_ylabel(metric)
    axes.grid(True, axis="y", color="#e3e3e3", linewidth=0.8)
    for side in ("top", "right"):
        axes.spines[side].set_visible(False)
    if len(series) > 1:
        axes.legend(frameon=False, fontsize=9)
    figure.tight_layout()
    figure.savefig(path)
    plt.close(figure)
    return "matplotlib"
