"""Structured diffs between recorded runs.

Comparing two runs is the regression question CI asks on every push: *did
any number that should be stable move?*  Not every field should gate a
merge, so each compared field is classified:

* **timing** — wall-clock, speedups, evaluation counts.  Noisy on shared
  runners; always informational.
* **shape** — workload sizes (matrices, scenarios, nodes, links, ...).
  Differences mean the runs measured different workloads, not that the
  code regressed; informational, but they *downgrade* value metrics (a
  smoke run cannot validate a full run's magnitudes).
* **metric** — everything else numeric (MLU, utility, costs, equivalence
  residuals).  These gate: a mismatch beyond tolerance is a *hard*
  mismatch and ``repro results diff --fail-on metric`` exits non-zero.

Correctness residuals (``max_abs_*_diff``-style fields) stay hard even
when the workloads differ: whatever the ensemble size, backend-equivalence
residuals must remain at float-round-off scale.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

#: Record fields used to pair up records across two runs (in this order of
#: preference).  Bench records match on (topology, workload); sweep records
#: on (scenario, protocol).
IDENTITY_KEYS = ("topology", "workload", "scenario", "protocol", "kind")

#: Fields that describe *how fast* rather than *what* — never gate.
_TIMING_PATTERN = re.compile(
    r"(seconds|elapsed|runtime|speedup|ratio|evaluations|time|cached)", re.IGNORECASE
)

#: Fields that describe workload size — differences mean "different
#: experiment", not "regression".
_SHAPE_PATTERN = re.compile(
    r"^(nodes|links|matrices|scenarios|demand_pairs|pairs|count)$|^dspt\.",
    re.IGNORECASE,
)

#: Backend-equivalence residuals: hard regardless of workload shape.
_RESIDUAL_PATTERN = re.compile(r"(max_abs|residual|_diff)", re.IGNORECASE)

#: Reserved identity of per-span timing records (see
#: :func:`repro.obs.profiling.profile_records`).  Profile records are pure
#: timing observability: their fields never gate, and a span present in
#: only one run (serial vs parallel sweeps instrument different paths) is
#: informational, not a vanished-record failure.
PROFILE_SCENARIO = "__profile__"


def _is_profile_record(record: Mapping[str, object]) -> bool:
    return record.get("scenario") == PROFILE_SCENARIO


def classify_field(key: str) -> str:
    """``timing`` / ``shape`` / ``metric`` classification of a record field."""
    if _TIMING_PATTERN.search(key):
        return "timing"
    if _SHAPE_PATTERN.search(key):
        return "shape"
    return "metric"


def is_residual_field(key: str) -> bool:
    """True for backend-equivalence residual fields (always hard metrics)."""
    return bool(_RESIDUAL_PATTERN.search(key))


def flatten_record(record: Mapping[str, object], prefix: str = "") -> dict[str, object]:
    """Flatten nested dicts to dotted keys (``dspt.events``); lists pass through."""
    flat: dict[str, object] = {}
    for key, value in record.items():
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(flatten_record(value, prefix=f"{name}."))
        else:
            flat[name] = value
    return flat


def record_identity(record: Mapping[str, object], keys: Sequence[str]) -> tuple[object, ...]:
    return tuple(record.get(key) for key in keys)


def shared_identity_keys(
    records_a: Sequence[Mapping[str, object]],
    records_b: Sequence[Mapping[str, object]],
) -> list[str]:
    """Identity keys present in every record on both sides."""
    keys = []
    for key in IDENTITY_KEYS:
        if all(key in r for r in records_a) and all(key in r for r in records_b):
            keys.append(key)
    return keys


@dataclass
class FieldDiff:
    """One compared field of one matched record pair."""

    identity: str
    key: str
    a: object
    b: object
    category: str  # "timing" | "shape" | "metric" | "note"
    matches: bool
    hard: bool  # gates --fail-on metric
    rel_delta: float | None = None

    def as_row(self) -> dict[str, object]:
        return {
            "record": self.identity,
            "field": self.key,
            "a": self.a,
            "b": self.b,
            "class": self.category + ("" if self.hard else "*"),
            "status": "ok" if self.matches else ("FAIL" if self.hard else "drift"),
        }


@dataclass
class RunDiff:
    """The full structured comparison of two runs."""

    run_a: str
    run_b: str
    rtol: float
    atol: float
    comparable: bool  # False when the runs' workload flags differ
    entries: list[FieldDiff] = field(default_factory=list)
    only_in_a: list[str] = field(default_factory=list)
    only_in_b: list[str] = field(default_factory=list)

    @property
    def hard_mismatches(self) -> list[FieldDiff]:
        return [e for e in self.entries if e.hard and not e.matches]

    @property
    def mismatches(self) -> list[FieldDiff]:
        return [e for e in self.entries if not e.matches]

    @property
    def ok(self) -> bool:
        """True when nothing gates: no hard metric mismatch and no record
        present on one side only (a vanished record would otherwise slip
        through the CI gate as "nothing compared, nothing failed")."""
        return not self.hard_mismatches and not self.only_in_a and not self.only_in_b

    def summary(self) -> str:
        compared = len(self.entries)
        hard = len(self.hard_mismatches)
        soft = len(self.mismatches) - hard
        scope = "comparable workloads" if self.comparable else (
            "workload flags differ: value metrics informational, residuals still gate"
        )
        lines = [
            f"diff {self.run_a} vs {self.run_b} ({scope}; rtol={self.rtol:g}, atol={self.atol:g})",
            f"  {compared} fields compared: {hard} hard mismatch(es), {soft} informational drift(s)",
        ]
        if self.only_in_a:
            lines.append(f"  records only in {self.run_a}: {', '.join(self.only_in_a)}")
        if self.only_in_b:
            lines.append(f"  records only in {self.run_b}: {', '.join(self.only_in_b)}")
        return "\n".join(lines)


def _values_match(a: object, b: object, rtol: float, atol: float) -> tuple[bool, float | None]:
    """Tolerance-aware equality plus a relative delta for numeric pairs."""
    if isinstance(a, bool) or isinstance(b, bool):
        return bool(a) == bool(b), None
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        x, y = float(a), float(b)
        if math.isnan(x) and math.isnan(y):
            return True, 0.0
        if math.isinf(x) or math.isinf(y):
            return x == y, None
        scale = max(abs(x), abs(y))
        delta = abs(x - y)
        rel = delta / scale if scale else 0.0
        return delta <= atol + rtol * scale, rel
    return a == b, None


def diff_records(
    run_a: str,
    records_a: Sequence[Mapping[str, object]],
    run_b: str,
    records_b: Sequence[Mapping[str, object]],
    rtol: float = 1e-6,
    atol: float = 1e-9,
    comparable: bool = True,
) -> RunDiff:
    """Pair up two runs' records and compare every shared field.

    ``comparable=False`` (workload flags differ — e.g. a smoke run against
    a full-run view) downgrades value metrics to informational; timing and
    shape fields are informational always; residual fields always gate.
    """
    flat_a = [flatten_record(r) for r in records_a]
    flat_b = [flatten_record(r) for r in records_b]
    id_keys = shared_identity_keys(flat_a, flat_b)

    def index(records: Sequence[Mapping[str, object]]) -> dict[tuple[object, ...], Mapping[str, object]]:
        table: dict[tuple[object, ...], Mapping[str, object]] = {}
        for position, record in enumerate(records):
            identity = record_identity(record, id_keys) if id_keys else (position,)
            if _is_profile_record(record):
                # Profile records all share the reserved scenario; the span
                # name is their real identity (sweep records carry no
                # "workload" key, so it drops out of the shared keys).
                identity = identity + (record.get("span"),)
            if identity in table:
                # Ambiguous identity (duplicate rows): fall back to position.
                identity = identity + (position,)
            table[identity] = record
        return table

    table_a, table_b = index(flat_a), index(flat_b)
    diff = RunDiff(run_a=run_a, run_b=run_b, rtol=rtol, atol=atol, comparable=comparable)

    def label(identity: tuple[object, ...]) -> str:
        return "/".join(str(part) for part in identity if part is not None) or "record"

    for identity, record in table_a.items():
        other = table_b.get(identity)
        if other is None:
            if _is_profile_record(record):
                diff.entries.append(
                    FieldDiff(
                        identity=label(identity),
                        key="(profile record)",
                        a="present",
                        b="<absent>",
                        category="note",
                        matches=False,
                        hard=False,
                    )
                )
            else:
                diff.only_in_a.append(label(identity))
            continue
        profile = _is_profile_record(record)
        for key in sorted(set(record) | set(other)):
            if key in id_keys:
                continue
            if key not in record or key not in other:
                diff.entries.append(
                    FieldDiff(
                        identity=label(identity),
                        key=key,
                        a=record.get(key, "<absent>"),
                        b=other.get(key, "<absent>"),
                        category="note",
                        matches=False,
                        hard=False,
                    )
                )
                continue
            a_value, b_value = record[key], other[key]
            category = classify_field(key)
            residual = is_residual_field(key)
            hard = category == "metric" and (comparable or residual) and not profile
            matches, rel = _values_match(a_value, b_value, rtol, atol)
            # Residuals sit at float-round-off scale: any value within
            # atol of zero on both sides is "still exact", whatever the
            # relative gap between two round-off noises.
            if residual and isinstance(a_value, (int, float)) and isinstance(b_value, (int, float)):
                matches = matches or (abs(float(a_value)) <= atol and abs(float(b_value)) <= atol)
            diff.entries.append(
                FieldDiff(
                    identity=label(identity),
                    key=key,
                    a=a_value,
                    b=b_value,
                    category=category,
                    matches=matches,
                    hard=hard,
                    rel_delta=rel,
                )
            )
    for identity, record in table_b.items():
        if identity not in table_a:
            if _is_profile_record(record):
                diff.entries.append(
                    FieldDiff(
                        identity=label(identity),
                        key="(profile record)",
                        a="<absent>",
                        b="present",
                        category="note",
                        matches=False,
                        hard=False,
                    )
                )
            else:
                diff.only_in_b.append(label(identity))
    return diff
