"""Run manifests: the provenance half of the results store.

A *run* is one recorded invocation of the scenario runner, the benchmark
harness, the trace replay, or a view import.  The manifest pins down
everything needed to interpret (and re-execute) the numbers it produced:

* **code identity** — git sha, package version, scenario-cache
  ``CACHE_VERSION``;
* **workload identity** — topology, protocols, a stable hash of the
  scenario set;
* **run shape** — configuration flags (``full_bench``/``smoke_bench``,
  worker counts, ...) and wall-clock timings.

Timings and configuration live in free-form JSON columns because they vary
by run kind; the identity fields are first-class columns so
:meth:`~repro.results.store.ResultsStore.query` can filter on them without
unpacking JSON.
"""

from __future__ import annotations

import contextlib
import json
import os
import subprocess
import uuid
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from collections.abc import Iterable, Mapping, Sequence

from ..scenarios.scenario import Scenario, _sha256

#: Run kinds with first-class CLI support.  Free-form kinds are accepted —
#: the store does not enforce membership — but these are the ones the
#: ``repro`` CLI produces and knows how to render.
KNOWN_KINDS = ("sweep", "bench", "replay", "view-import")


def utc_now_iso() -> str:
    """The current UTC time as a second-resolution ISO-8601 string."""
    # repro: allow[REP003] run creation timestamps are manifest metadata:
    # they are never compared by `repro results diff` (timing category).
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def new_run_id(created_at: str | None = None) -> str:
    """A unique, time-sortable run id (``20260727T101530Z-ab12cd34``)."""
    stamp = (created_at or utc_now_iso()).replace("-", "").replace(":", "")
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


def git_revision(cwd: str | None = None) -> str:
    """The commit sha of the code, or a CI-provided fallback, or ``unknown``.

    The lookup is anchored at *this package's* directory (a checkout run
    via ``PYTHONPATH=src`` or ``pip install -e .`` resolves to the repo's
    HEAD), never at the caller's working directory — an installed ``repro``
    invoked from some unrelated git repo must not stamp that repo's sha
    onto the manifest.  Provenance must never make recording fail: outside
    a work tree this degrades to the ``GITHUB_SHA`` / ``GIT_SHA``
    environment variables and finally to ``"unknown"``.
    """
    if cwd is None:
        cwd = str(Path(__file__).resolve().parent)
    with contextlib.suppress(OSError, subprocess.SubprocessError):
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    for variable in ("GITHUB_SHA", "GIT_SHA"):
        value = os.environ.get(variable)
        if value:
            return value
    return "unknown"


def scenario_set_fingerprint(scenarios: Sequence[Scenario]) -> str:
    """A stable hash of a scenario set (order independent).

    Two sweeps over the same scenarios — regardless of generation order —
    share a fingerprint, so cross-run diffs can assert they compared like
    against like.
    """
    return _sha256(sorted(scenario.fingerprint() for scenario in scenarios))


@dataclass
class RunManifest:
    """Provenance and shape of one recorded run.

    ``config`` and ``timings`` are JSON-serialisable mappings; everything
    else is a scalar column in the ``runs`` table.
    """

    run_id: str
    kind: str
    created_at: str
    git_sha: str = "unknown"
    package_version: str = ""
    cache_version: int | None = None
    benchmark: str | None = None
    topology: str | None = None
    protocols: tuple[str, ...] = ()
    scenario_set: str | None = None
    config: dict[str, object] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    note: str | None = None

    @classmethod
    def create(
        cls,
        kind: str,
        benchmark: str | None = None,
        topology: str | None = None,
        protocols: Iterable[str] = (),
        scenario_set: str | None = None,
        config: Mapping[str, object] | None = None,
        timings: Mapping[str, float] | None = None,
        note: str | None = None,
        git_sha: str | None = None,
        cache_version: int | None = None,
    ) -> RunManifest:
        """Build a manifest stamped with the current code identity."""
        from .. import __version__
        from ..scenarios.runner import CACHE_VERSION

        created_at = utc_now_iso()
        return cls(
            run_id=new_run_id(created_at),
            kind=kind,
            created_at=created_at,
            git_sha=git_sha if git_sha is not None else git_revision(),
            package_version=__version__,
            cache_version=cache_version if cache_version is not None else CACHE_VERSION,
            benchmark=benchmark,
            topology=topology,
            protocols=tuple(protocols),
            scenario_set=scenario_set,
            config=dict(config or {}),
            timings={k: float(v) for k, v in (timings or {}).items()},
            note=note,
        )

    def to_row(self) -> dict[str, object]:
        """The manifest as a flat ``runs``-table row (JSON-packed blobs)."""
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
            "package_version": self.package_version,
            "cache_version": self.cache_version,
            "benchmark": self.benchmark,
            "topology": self.topology,
            "protocols": json.dumps(list(self.protocols), sort_keys=True),
            "scenario_set": self.scenario_set,
            "config": json.dumps(self.config, sort_keys=True),
            "timings": json.dumps(self.timings, sort_keys=True),
            "note": self.note,
        }

    @classmethod
    def from_row(cls, row: Mapping[str, object]) -> RunManifest:
        return cls(
            run_id=str(row["run_id"]),
            kind=str(row["kind"]),
            created_at=str(row["created_at"]),
            git_sha=str(row["git_sha"] or "unknown"),
            package_version=str(row["package_version"] or ""),
            cache_version=(
                int(row["cache_version"]) if row["cache_version"] is not None else None
            ),
            benchmark=row["benchmark"],  # type: ignore[arg-type]
            topology=row["topology"],  # type: ignore[arg-type]
            protocols=tuple(json.loads(str(row["protocols"] or "[]"))),
            scenario_set=row["scenario_set"],  # type: ignore[arg-type]
            config=json.loads(str(row["config"] or "{}")),
            timings=json.loads(str(row["timings"] or "{}")),
            note=row["note"],  # type: ignore[arg-type]
        )

    def summary_row(self) -> dict[str, object]:
        """The compact row ``repro results list`` renders."""
        return {
            "run": self.run_id,
            "kind": self.kind,
            "benchmark": self.benchmark or "",
            "topology": self.topology or "",
            "created": self.created_at,
            "git": self.git_sha[:10],
            "version": self.package_version,
        }
