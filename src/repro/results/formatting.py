"""Shared row formatting for the results CLI: table, csv, json.

Every ``repro results`` subcommand that prints rows goes through
:func:`format_output`, so ``--format table|csv|json`` behaves identically
across ``list``/``show``/``query``.  The table branch renders with `rich`
when it is importable and falls back to the library's plain-text
:func:`~repro.analysis.reporting.format_table` otherwise — the CLI never
*requires* rich (or any other extra dependency).

CSV output is headed by the union of the rows' keys (first-seen order) so
heterogeneous rows — e.g. sweep cells next to a telemetry summary record —
round-trip without data loss; JSON output is an indented, key-sorted array
suitable for piping into ``jq``.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Sequence

from ..analysis.reporting import format_table

FORMATS = ("table", "csv", "json")


def _columns(rows: Sequence[dict[str, object]]) -> list[str]:
    """Union of row keys, in first-seen order."""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def _rich_table(
    rows: Sequence[dict[str, object]],
    columns: Sequence[str],
    title: str | None,
    float_format: str,
) -> str | None:
    """Render with rich when available; ``None`` means "fall back"."""
    try:
        from rich.console import Console
        from rich.table import Table
    except ImportError:
        return None
    table = Table(title=title)
    for column in columns:
        table.add_column(str(column))
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                value = float_format.format(value)
            rendered.append("" if value is None else str(value))
        table.add_row(*rendered)
    console = Console(file=io.StringIO(), width=200)
    console.print(table)
    return console.file.getvalue().rstrip("\n")


def format_output(
    rows: Sequence[dict[str, object]],
    fmt: str = "table",
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as an aligned table, CSV, or indented JSON.

    ``fmt`` is one of :data:`FORMATS`.  ``columns`` fixes the column order
    (and selection); by default every key seen across the rows appears, in
    first-seen order.
    """
    if fmt not in FORMATS:
        raise ValueError(f"unknown format {fmt!r}; known: {', '.join(FORMATS)}")
    rows = list(rows)
    if fmt == "json":
        return json.dumps(rows, indent=2, sort_keys=True, default=str)
    cols = list(columns) if columns is not None else _columns(rows)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=cols, extrasaction="ignore", lineterminator="\n")
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "") for key in cols})
        return buffer.getvalue().rstrip("\n")
    if not rows:
        return "(no rows)"
    rich_rendered = _rich_table(rows, cols, title, float_format)
    if rich_rendered is not None:
        return rich_rendered
    return format_table(rows, columns=cols, title=title, float_format=float_format)
