"""SQLite-backed store of run manifests and per-record metrics.

The scenario engine's :class:`~repro.scenarios.runner.ResultCache` answers
"have I computed this exact cell before?" — a content-addressed key-value
store, deliberately write-only from a human's point of view.  This module
answers the questions humans (and CI) actually ask across runs:

* *what runs exist, and what code produced them?* — :meth:`ResultsStore.runs`,
  with git sha / package version / ``CACHE_VERSION`` in every manifest;
* *what were the numbers?* — :meth:`ResultsStore.query` /
  :meth:`ResultsStore.aggregate` over per-record metrics;
* *did anything move?* — :meth:`ResultsStore.diff`, the tolerance- and
  category-aware comparison CI gates on;
* *where do the committed artifacts come from?* — ``BENCH_*.json`` are
  **exported views** (:meth:`ResultsStore.export_bench_view`), re-importable
  byte-for-byte (:meth:`ResultsStore.import_bench_view`), never hand-edited.

One SQLite file holds everything (``$REPRO_RESULTS_DB`` or
``~/.cache/repro/results.sqlite``); records keep their full metric dicts as
JSON so new benchmark fields never need schema migrations, while the
identity columns (topology, protocol, scenario, workload) are first-class
for filtering.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from collections.abc import Mapping, Sequence

from .diffing import RunDiff, diff_records
from .manifest import RunManifest

#: Benchmark name -> committed view filename at the repository root.
VIEW_FILENAMES = {
    "routing-backend": "BENCH_routing.json",
    "online-controller": "BENCH_online.json",
}

#: Record columns mirrored out of the metrics JSON for SQL filtering.
_IDENTITY_COLUMNS = ("topology", "workload", "scenario", "protocol")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    created_at TEXT NOT NULL,
    git_sha TEXT,
    package_version TEXT,
    cache_version INTEGER,
    benchmark TEXT,
    topology TEXT,
    protocols TEXT,
    scenario_set TEXT,
    config TEXT,
    timings TEXT,
    note TEXT
);
CREATE TABLE IF NOT EXISTS records (
    run_id TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    seq INTEGER NOT NULL,
    topology TEXT,
    workload TEXT,
    scenario TEXT,
    protocol TEXT,
    metrics TEXT NOT NULL,
    PRIMARY KEY (run_id, seq)
);
CREATE INDEX IF NOT EXISTS records_identity
    ON records (topology, workload, scenario, protocol);
"""


class ResultsStoreError(ValueError):
    """Raised for unknown runs, ambiguous references and malformed views."""


def default_results_path() -> Path:
    """``$REPRO_RESULTS_DB`` or ``~/.cache/repro/results.sqlite``."""
    override = os.environ.get("REPRO_RESULTS_DB")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "results.sqlite"


def _dump_view(payload: Mapping[str, object]) -> str:
    """The canonical view serialisation (byte-stable across re-exports)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sanitize(value: object) -> object:
    """Replace non-finite floats with their string names, recursively.

    ``json.dumps`` would otherwise emit bare ``Infinity``/``NaN`` tokens —
    Python parses them back, but they are invalid JSON for jq/JSON.parse
    and every strict consumer of ``--json`` output and exported views.
    Infeasible scenario cells (``mlu = inf``) therefore persist as the
    strings ``"Infinity"`` / ``"-Infinity"`` / ``"NaN"``, which also compare
    exactly in diffs.
    """
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "Infinity"
        if value == float("-inf"):
            return "-Infinity"
        return value
    if isinstance(value, Mapping):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


class ResultsStore:
    """Queryable store of run manifests and metrics in one SQLite file."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else default_results_path()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._connection = sqlite3.connect(str(self.path))
        self._connection.row_factory = sqlite3.Row
        self._connection.execute("PRAGMA foreign_keys = ON")
        self._connection.executescript(_SCHEMA)
        self._connection.commit()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> ResultsStore:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def record_run(
        self,
        manifest: RunManifest,
        records: Sequence[Mapping[str, object]],
    ) -> str:
        """Persist a manifest plus its records; returns the run id.

        Records keep their insertion order (``seq``), which is what makes
        exported views byte-stable: the view's ``results`` list is the
        run's records in the order the harness produced them.
        """
        row = manifest.to_row()
        with self._connection:
            self._connection.execute(
                f"INSERT INTO runs ({', '.join(row)}) "
                f"VALUES ({', '.join(':' + k for k in row)})",
                row,
            )
            for seq, record in enumerate(records):
                clean = _sanitize(dict(record))
                self._connection.execute(
                    "INSERT INTO records (run_id, seq, topology, workload, scenario,"
                    " protocol, metrics) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        manifest.run_id,
                        seq,
                        *(clean.get(col) for col in _IDENTITY_COLUMNS),
                        json.dumps(clean, sort_keys=True),
                    ),
                )
        return manifest.run_id

    def delete_run(self, ref: str) -> str:
        """Delete a run (and, via cascade, its records); returns the run id."""
        manifest = self.get_run(ref)
        with self._connection:
            self._connection.execute("DELETE FROM runs WHERE run_id = ?", (manifest.run_id,))
        return manifest.run_id

    def gc(
        self,
        keep_last: int,
        kind: str | None = None,
        benchmark: str | None = None,
    ) -> list[str]:
        """Retention: keep the newest ``keep_last`` runs per (kind, benchmark).

        Every command records a run, so a store used by CI or a watch loop
        grows without bound; ``gc`` trims it while keeping each run *family*
        (sweeps, replays, each benchmark) independently useful — deleting
        globally would let a burst of sweeps evict the only recorded bench
        run a later ``repro results diff`` needs.  Optional ``kind`` /
        ``benchmark`` filters restrict which families are trimmed.  Returns
        the deleted run ids (newest first within each family).
        """
        if keep_last < 0:
            raise ResultsStoreError(f"keep_last must be non-negative, got {keep_last}")
        groups: dict[tuple[object, object], list[RunManifest]] = {}
        for manifest in self.runs(kind=kind, benchmark=benchmark):
            groups.setdefault((manifest.kind, manifest.benchmark), []).append(manifest)
        deleted: list[str] = []
        with self._connection:
            for manifests in groups.values():
                for manifest in manifests[keep_last:]:  # runs() is newest-first
                    self._connection.execute(
                        "DELETE FROM runs WHERE run_id = ?", (manifest.run_id,)
                    )
                    deleted.append(manifest.run_id)
        return deleted

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def runs(
        self,
        kind: str | None = None,
        benchmark: str | None = None,
        topology: str | None = None,
        limit: int | None = None,
    ) -> list[RunManifest]:
        """Manifests, newest first, optionally filtered."""
        clauses, params = [], []
        for column, value in (("kind", kind), ("benchmark", benchmark), ("topology", topology)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = "SELECT * FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created_at DESC, rowid DESC"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return [RunManifest.from_row(row) for row in self._connection.execute(sql, params)]

    def get_run(self, ref: str) -> RunManifest:
        """Resolve a run reference to its manifest.

        ``ref`` may be a full run id, a unique run-id prefix, ``latest``,
        ``latest:<benchmark-or-kind>``, or — borrowing git's ancestry
        syntax — ``latest~N[:<benchmark-or-kind>]`` for the run N places
        before the newest one (``latest~1:sweep`` is the previous sweep,
        so CI can diff consecutive runs of the same family).
        """
        if ref == "latest" or ref.startswith(("latest:", "latest~")):
            head, _, selector = ref.partition(":")
            selector = selector or None
            back = 0
            if head.startswith("latest~"):
                suffix = head[len("latest~"):]
                if not suffix.isdigit():
                    raise ResultsStoreError(
                        f"malformed run reference {ref!r} (expected latest~N)"
                    )
                back = int(suffix)
            elif head != "latest":
                raise ResultsStoreError(f"malformed run reference {ref!r}")
            limit = back + 1
            candidates = self.runs(benchmark=selector, limit=limit) if selector else []
            if not candidates and selector:
                candidates = self.runs(kind=selector, limit=limit)
            if not candidates and not selector:
                candidates = self.runs(limit=limit)
            if len(candidates) <= back:
                raise ResultsStoreError(f"no runs match {ref!r} in {self.path}")
            return candidates[back]
        # Escape LIKE metacharacters so a ref containing % or _ is a literal
        # prefix, never a wildcard that resolves to an arbitrary run.
        escaped = ref.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")
        rows = self._connection.execute(
            "SELECT * FROM runs WHERE run_id = ? OR run_id LIKE ? ESCAPE '\\' "
            "ORDER BY created_at DESC, rowid DESC",
            (ref, f"{escaped}%"),
        ).fetchall()
        exact = [row for row in rows if row["run_id"] == ref]
        if exact:
            return RunManifest.from_row(exact[0])
        if not rows:
            raise ResultsStoreError(f"unknown run {ref!r} in {self.path}")
        if len(rows) > 1:
            matches = ", ".join(row["run_id"] for row in rows[:5])
            raise ResultsStoreError(f"ambiguous run reference {ref!r}: matches {matches}")
        return RunManifest.from_row(rows[0])

    def records(self, ref: str) -> list[dict[str, object]]:
        """A run's records (full metric dicts) in insertion order."""
        manifest = self.get_run(ref)
        rows = self._connection.execute(
            "SELECT metrics FROM records WHERE run_id = ? ORDER BY seq",
            (manifest.run_id,),
        )
        return [json.loads(row["metrics"]) for row in rows]

    def query(
        self,
        kind: str | None = None,
        benchmark: str | None = None,
        run: str | None = None,
        topology: str | None = None,
        workload: str | None = None,
        scenario: str | None = None,
        protocol: str | None = None,
        limit: int | None = None,
    ) -> list[dict[str, object]]:
        """Flat record rows across runs, newest runs first.

        Every row carries its run's provenance (``run_id``, ``created_at``,
        ``git_sha``) next to the record's metrics, so the output is directly
        plottable / tabulable across PRs.
        """
        clauses, params = [], []
        for column, value in (
            ("runs.kind", kind),
            ("runs.benchmark", benchmark),
            ("records.topology", topology),
            ("records.workload", workload),
            ("records.scenario", scenario),
            ("records.protocol", protocol),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if run is not None:
            clauses.append("runs.run_id = ?")
            params.append(self.get_run(run).run_id)
        sql = (
            "SELECT runs.run_id, runs.created_at, runs.git_sha, records.metrics "
            "FROM records JOIN runs USING (run_id)"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY runs.created_at DESC, runs.rowid DESC, records.seq"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        rows = []
        for row in self._connection.execute(sql, params):
            record = {
                "run_id": row["run_id"],
                "created_at": row["created_at"],
                "git_sha": row["git_sha"],
            }
            record.update(json.loads(row["metrics"]))
            rows.append(record)
        return rows

    def aggregate(
        self,
        metric: str,
        by: Sequence[str] = ("protocol",),
        **filters: str | None,
    ) -> list[dict[str, object]]:
        """count/min/mean/max of one metric, grouped by identity fields.

        ``filters`` are forwarded to :meth:`query`; rows missing the metric
        (or carrying non-finite values) are counted but excluded from the
        statistics.
        """
        groups: dict[tuple[object, ...], list[float]] = {}
        totals: dict[tuple[object, ...], int] = {}
        for row in self.query(**filters):
            key = tuple(row.get(field) for field in by)
            totals[key] = totals.get(key, 0) + 1
            value = row.get(metric)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                value = float(value)
                if value == value and abs(value) != float("inf"):
                    groups.setdefault(key, []).append(value)
        out: list[dict[str, object]] = []
        for key in sorted(totals, key=lambda k: tuple(str(part) for part in k)):
            values = groups.get(key, [])
            row = dict(zip(by, key, strict=True))
            row.update(
                {
                    "rows": totals[key],
                    f"count_{metric}": len(values),
                    f"min_{metric}": min(values) if values else float("nan"),
                    f"mean_{metric}": sum(values) / len(values) if values else float("nan"),
                    f"max_{metric}": max(values) if values else float("nan"),
                }
            )
            out.append(row)
        return out

    # ------------------------------------------------------------------
    # diffs
    # ------------------------------------------------------------------
    @staticmethod
    def workload_flags(manifest: RunManifest) -> dict[str, bool]:
        """The flags that decide whether two runs' magnitudes are comparable."""
        view_flags = manifest.config.get("view_flags")
        if not isinstance(view_flags, Mapping):
            view_flags = {}
        flags = {}
        for key in ("full_bench", "smoke_bench"):
            if key in manifest.config:
                flags[key] = bool(manifest.config[key])
            else:
                flags[key] = bool(view_flags.get(key, False))
        return flags

    def diff(
        self,
        run_a: str | tuple[RunManifest, Sequence[Mapping[str, object]]],
        run_b: str | tuple[RunManifest, Sequence[Mapping[str, object]]],
        rtol: float = 1e-6,
        atol: float = 1e-9,
    ) -> RunDiff:
        """Compare two runs field-by-field (see :mod:`repro.results.diffing`).

        Either side may be a run reference or an already-materialised
        ``(manifest, records)`` pair — the latter is how the CLI diffs a
        stored run against a ``BENCH_*.json`` view file without writing the
        view into the store first.
        """

        def materialise(
            run: str | tuple[RunManifest, Sequence[Mapping[str, object]]],
        ) -> tuple[RunManifest, Sequence[Mapping[str, object]]]:
            if isinstance(run, str):
                manifest = self.get_run(run)
                return manifest, self.records(manifest.run_id)
            return run

        manifest_a, records_a = materialise(run_a)
        manifest_b, records_b = materialise(run_b)
        comparable = self.workload_flags(manifest_a) == self.workload_flags(manifest_b)
        return diff_records(
            manifest_a.run_id,
            records_a,
            manifest_b.run_id,
            records_b,
            rtol=rtol,
            atol=atol,
            comparable=comparable,
        )

    # ------------------------------------------------------------------
    # bench views
    # ------------------------------------------------------------------
    def export_bench_view(
        self,
        benchmark: str,
        run: str | None = None,
        path: str | Path | None = None,
    ) -> str:
        """Serialise a bench run as its committed-view JSON text.

        The view is ``{"benchmark": ..., <workload flags>, "results":
        [records in insertion order]}`` dumped with sorted keys and a
        trailing newline — exactly the committed ``BENCH_*.json`` layout, so
        re-exporting an unchanged run is byte-identical.  ``run`` defaults
        to the latest run of that benchmark.
        """
        manifest = self.get_run(run) if run else self.get_run(f"latest:{benchmark}")
        if manifest.benchmark != benchmark:
            raise ResultsStoreError(
                f"run {manifest.run_id} records benchmark {manifest.benchmark!r},"
                f" not {benchmark!r}"
            )
        payload: dict[str, object] = {"benchmark": benchmark}
        flags = manifest.config.get("view_flags", {})
        if isinstance(flags, Mapping):
            payload.update(flags)
        payload["results"] = self.records(manifest.run_id)
        text = _dump_view(payload)
        if path is not None:
            Path(path).write_text(text)
        return text

    def import_bench_view(
        self,
        path: str | Path,
        note: str | None = None,
    ) -> str:
        """Ingest a ``BENCH_*.json`` view file as a ``view-import`` run.

        The top-level flags are preserved verbatim in the manifest
        (``config["view_flags"]``), so :meth:`export_bench_view` of the
        imported run reproduces the file byte-for-byte.
        """
        manifest, records = load_bench_view(path, note=note)
        return self.record_run(manifest, records)


def load_bench_view(
    path: str | Path,
    note: str | None = None,
) -> tuple[RunManifest, list[dict[str, object]]]:
    """Parse a view file into an (unpersisted) manifest + records pair."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ResultsStoreError(f"cannot read bench view {path}: {exc}") from exc
    if not isinstance(payload, Mapping) or "benchmark" not in payload or "results" not in payload:
        raise ResultsStoreError(
            f"{path} is not a bench view (expected top-level 'benchmark' and 'results')"
        )
    results = payload["results"]
    if not isinstance(results, list):
        raise ResultsStoreError(f"{path}: 'results' must be a list")
    flags = {
        key: value for key, value in payload.items() if key not in ("benchmark", "results")
    }
    manifest = RunManifest.create(
        kind="view-import",
        benchmark=str(payload["benchmark"]),
        config={"view_flags": flags, "source": path.name, **{k: v for k, v in flags.items()}},
        note=note or f"imported from {path}",
    )
    return manifest, [_sanitize(dict(record)) for record in results]


def open_store(path: str | Path | None = None) -> ResultsStore:
    """Open (creating if needed) the results store at ``path`` or the default."""
    return ResultsStore(path)
