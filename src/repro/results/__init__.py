"""Queryable results store: run manifests, metrics, diffs and bench views.

Every sweep, benchmark and replay in this repository used to end as a
write-only JSON blob; this package turns those numbers into rows that can
be listed, queried, aggregated and — most importantly for CI — *diffed*
across runs and PRs:

* :mod:`~repro.results.manifest` — :class:`RunManifest`, the provenance
  record (git sha, package version, ``CACHE_VERSION``, topology, protocol
  set, scenario-set hash, timings) stamped onto every run;
* :mod:`~repro.results.store` — :class:`ResultsStore`, one SQLite file of
  runs + records with ``query`` / ``aggregate`` / ``diff`` /
  ``export_bench_view`` / ``import_bench_view``;
* :mod:`~repro.results.diffing` — the category-aware field comparison
  (timing vs shape vs metric) behind ``repro results diff``;
* :mod:`~repro.results.formatting` — the shared ``table|csv|json`` row
  renderer behind every ``repro results`` listing (rich optional);
* :mod:`~repro.results.plotting` — per-metric trendlines over stored runs
  (terminal sparklines, matplotlib-or-builtin PNG) for ``repro results
  plot``;
* :mod:`~repro.results.perf` — span-timing history over ``__profile__``
  records and the median±MAD regression gate behind ``repro results
  perf [--gate]``.

The scenario :class:`~repro.scenarios.BatchRunner` (``results_store=``),
the benchmark harness (:mod:`benchmarks.bench_utils`) and the ``repro``
CLI all write through this package; the committed ``BENCH_*.json`` files
are exported views over it, never hand-edited artifacts.
"""

from .diffing import FieldDiff, RunDiff, classify_field, diff_records, flatten_record
from .formatting import FORMATS, format_output
from .manifest import (
    KNOWN_KINDS,
    RunManifest,
    git_revision,
    new_run_id,
    scenario_set_fingerprint,
    utc_now_iso,
)
from .perf import (
    PROFILE_SCENARIO,
    GateReport,
    PerfError,
    SpanVerdict,
    gate,
    profile_rows,
)
from .plotting import (
    AGGREGATIONS,
    PNG_BACKENDS,
    PlotError,
    TrendPoint,
    TrendSeries,
    metric_trend,
    render_terminal,
    sparkline,
    write_png,
)
from .store import (
    VIEW_FILENAMES,
    ResultsStore,
    ResultsStoreError,
    default_results_path,
    load_bench_view,
    open_store,
)

__all__ = [
    "FieldDiff",
    "RunDiff",
    "classify_field",
    "diff_records",
    "flatten_record",
    "FORMATS",
    "format_output",
    "AGGREGATIONS",
    "PNG_BACKENDS",
    "PlotError",
    "TrendPoint",
    "TrendSeries",
    "metric_trend",
    "render_terminal",
    "sparkline",
    "write_png",
    "PROFILE_SCENARIO",
    "GateReport",
    "PerfError",
    "SpanVerdict",
    "gate",
    "profile_rows",
    "KNOWN_KINDS",
    "RunManifest",
    "git_revision",
    "new_run_id",
    "scenario_set_fingerprint",
    "utc_now_iso",
    "VIEW_FILENAMES",
    "ResultsStore",
    "ResultsStoreError",
    "default_results_path",
    "load_bench_view",
    "open_store",
]
