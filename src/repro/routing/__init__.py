"""Vectorized sparse routing backend (compile DAGs once, route with numpy).

Every hot routing path in the library -- ECMP / all-or-nothing assignment,
SPEF's exponential traffic distribution, the scenario engine's sweeps -- can
run on one of two interchangeable backends:

* ``"python"`` -- the original per-destination dict-loop implementations in
  :mod:`repro.solvers.assignment` and :mod:`repro.core.traffic_distribution`,
  kept verbatim as the reference oracle that the golden-equivalence test
  suite checks the sparse backend against.
* ``"sparse"`` -- the compiled backend in this package: each destination DAG
  becomes a CSR split-ratio matrix and flow propagation is a
  topological-order forward substitution (``(I - P^T) x = demand``) over
  numpy arrays, with a batched entry point that routes whole demand
  ensembles in one stacked sweep.

The shipped default policy is ``"auto"``: sparse for the batched/amortised
entry points -- :class:`SparseRouter`, :class:`CompiledDagSet`,
:func:`batched_link_loads`, ``RoutingProtocol.batch_link_loads`` and the
scenario runner's grouped dispatch -- which is where compilation is
amortised and the measured 5-12x speedups live
(``benchmarks/test_routing_speed.py``); the oracle for one-shot
single-matrix calls, where the dict loops are actually faster than numpy's
per-row call overhead (the sparse win appears once several matrices share
one weight setting).  Forcing a concrete backend applies it everywhere:
``"python"`` also disables the protocols' batched sparse routing.  Select
per call (``ecmp_assignment(..., backend="sparse")``), per process
(:func:`set_default_backend`) or per environment
(``REPRO_ROUTING_BACKEND=sparse``).  Both backends produce link loads equal
to well below 1e-9; see the "Routing backends" section of the README.
"""

from __future__ import annotations

import os

from .compiled import CompiledDag, warn_degenerate_split
from .sparse import (
    CompiledDagSet,
    SparseRouter,
    batched_link_loads,
    sparse_all_or_nothing_assignment,
    sparse_ecmp_assignment,
    sparse_split_ratio_assignment,
    sparse_traffic_distribution,
)

#: The two concrete routing backends, plus the "auto" policy that picks the
#: oracle for one-shot single-matrix calls and sparse for the batched entry
#: points (where compilation is amortised and the speedups live).
BACKENDS = ("auto", "sparse", "python")

_default_backend = os.environ.get("REPRO_ROUTING_BACKEND", "auto")
if _default_backend not in BACKENDS:  # pragma: no cover - env misconfiguration
    raise ValueError(
        f"REPRO_ROUTING_BACKEND must be one of {BACKENDS}, got {_default_backend!r}"
    )


def get_default_backend() -> str:
    """The backend policy used when a routing call does not name one.

    ``"auto"`` (the shipped default) means: dict-loop oracle for one-shot
    single-matrix calls, sparse for batched/amortised entry points.  Forcing
    ``"python"`` or ``"sparse"`` applies that concrete backend everywhere --
    in particular ``"python"`` also disables the protocols' batched sparse
    routing, so an all-oracle comparison really is all-oracle.
    """
    return _default_backend


def set_default_backend(backend: str) -> str:
    """Set the process-wide default backend policy; returns the previous one."""
    global _default_backend
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    previous = _default_backend
    _default_backend = backend
    return previous


def resolve_backend(backend: str | None) -> str:
    """Normalise an optional per-call backend argument to a policy value."""
    if backend is None:
        return _default_backend
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


__all__ = [
    "BACKENDS",
    "CompiledDag",
    "CompiledDagSet",
    "SparseRouter",
    "batched_link_loads",
    "get_default_backend",
    "resolve_backend",
    "set_default_backend",
    "sparse_all_or_nothing_assignment",
    "sparse_ecmp_assignment",
    "sparse_split_ratio_assignment",
    "sparse_traffic_distribution",
    "warn_degenerate_split",
]
