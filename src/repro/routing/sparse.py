"""Vectorized routing entry points built on :class:`CompiledDag`.

Three layers, from most throwaway to most amortised:

* ``sparse_*_assignment`` -- drop-in equivalents of the oracle routines in
  :mod:`repro.solvers.assignment` / :mod:`repro.core.traffic_distribution`.
  They compile each destination DAG, route, and throw the compilation away;
  use them through the ``backend="sparse"`` switch of the oracle functions.
* :class:`CompiledDagSet` -- compile a ``{destination: dag}`` mapping once
  and route arbitrarily many demand matrices / split-ratio settings against
  it.  This is what Algorithm 2's gradient loop and the SPEF pipeline use.
* :class:`SparseRouter` -- owns the whole pipeline for one weight setting
  (Dijkstra, compilation, ratio binding) and exposes the batched entry point
  :meth:`SparseRouter.link_loads_many` that evaluates a whole demand ensemble
  in one stacked propagation per destination.  This is what the scenario
  engine's failure sweeps amortise their DAG compilation through.

All routines produce link loads identical (to float round-off, well below the
equivalence suite's 1e-9) to the pure-Python oracles; the golden-equivalence
tests in ``tests/test_routing_equivalence.py`` pin that property.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network, Node
from ..network.spt import (
    DEFAULT_TOLERANCE,
    ShortestPathDag,
    UnreachableError,
    WeightsLike,
    as_weight_vector,
    shortest_path_dag,
)
from .compiled import CompiledDag

#: Ratio modes understood by :class:`SparseRouter`.
_MODES = ("ecmp", "all_or_nothing", "split")


# ----------------------------------------------------------------------
# compiled DAG sets (compile once, route many)
# ----------------------------------------------------------------------
class CompiledDagSet:
    """Per-destination compiled DAGs over one network.

    Compilation is lazy with caching: a DAG handed in (or added later) is
    compiled on first use through :meth:`compiled`, so routing a traffic
    matrix only pays compilation for the destinations it actually touches.
    """

    def __init__(
        self,
        network: Network,
        dags: Mapping[Node, ShortestPathDag] | None = None,
    ) -> None:
        self.network = network
        self._dags: dict[Node, ShortestPathDag] = dict(dags or {})
        self._compiled: dict[Node, CompiledDag] = {}

    def __contains__(self, destination: Node) -> bool:
        return destination in self._dags

    @property
    def destinations(self) -> list[Node]:
        return list(self._dags)

    def add(self, destination: Node, dag: ShortestPathDag) -> CompiledDag:
        """Compile (and cache) one more destination DAG."""
        compiled = CompiledDag.from_dag(self.network, dag)
        self._dags[destination] = dag
        self._compiled[destination] = compiled
        return compiled

    def update(self, destination: Node, dag: ShortestPathDag) -> None:
        """Replace one destination's DAG after a network event.

        The delta-compilation entry point: only the touched destination's
        compilation is dropped (and lazily rebuilt on next use) — every
        other destination keeps its compiled CSR arrays, which is what makes
        per-event work proportional to the event's footprint rather than to
        the destination count.
        """
        self._dags[destination] = dag
        self._compiled.pop(destination, None)

    def discard(self, destination: Node) -> None:
        """Forget one destination entirely (DAG and compilation)."""
        self._dags.pop(destination, None)
        self._compiled.pop(destination, None)

    def dag(self, destination: Node) -> ShortestPathDag:
        return self._dags[destination]

    def compiled(self, destination: Node) -> CompiledDag:
        cached = self._compiled.get(destination)
        if cached is not None:
            return cached
        dag = self._dags.get(destination)
        if dag is None:
            raise UnreachableError(
                f"no shortest-path DAG for destination {destination!r}"
            )
        return self.add(destination, dag)

    # ------------------------------------------------------------------
    def traffic_distribution(
        self, demands: TrafficMatrix, second_weights: np.ndarray
    ) -> FlowAssignment:
        """Algorithm 3 (exponential splitting) against the compiled DAGs.

        Equivalent to :func:`repro.core.traffic_distribution.traffic_distribution`
        but with the DAG compilation amortised across calls -- the shape of
        Algorithm 2's inner loop, which re-evaluates this for a new ``v``
        every gradient iteration.
        """
        second = np.asarray(second_weights, dtype=float)
        flows = FlowAssignment(network=self.network)
        for destination, entering in demands.by_destination().items():
            compiled = self.compiled(destination)
            ratios = compiled.exponential_ratios(second)
            vector = flows.ensure_destination(destination)
            demand = compiled.entering_vector(entering, missing="drop")
            compiled.scatter_link_loads(compiled.propagate(demand, ratios), ratios, out=vector)
        return flows

    def split_ratio_flows(
        self,
        demands: TrafficMatrix,
        split_ratios: Mapping[Node, Mapping[Node, Mapping[Node, float]]],
    ) -> FlowAssignment:
        """Explicit-split routing against the compiled DAGs (SPEF's Eq. 22 use)."""
        flows = FlowAssignment(network=self.network)
        for destination, entering in demands.by_destination().items():
            compiled = self.compiled(destination)
            degenerate: list[tuple[int, float]] = []
            ratios = compiled.bind_ratios(split_ratios.get(destination), degenerate)
            vector = flows.ensure_destination(destination)
            demand = compiled.entering_vector(entering, missing="drop")
            throughflow = compiled.propagate(demand, ratios)
            compiled.warn_loaded_degenerates(degenerate, throughflow)
            compiled.scatter_link_loads(throughflow, ratios, out=vector)
        return flows


class SparseRouter:
    """Compile one weight setting, route many demand matrices.

    Parameters
    ----------
    network, weights:
        The topology and the link weights defining the shortest-path DAGs.
        Precomputed ``dags`` may be passed instead of (or alongside) weights;
        missing destinations are then built from ``weights`` on demand.
    mode:
        ``"ecmp"`` (even split, the OSPF behaviour), ``"all_or_nothing"``
        (single path, deterministic first-hop tie break) or ``"split"``
        (explicit per-destination ratios handed to the routing calls).
    tolerance:
        ECMP cost tolerance for DAG construction.

    Examples
    --------
    >>> from repro.topology.backbones import abilene_network
    >>> from repro.traffic.gravity import gravity_traffic_matrix
    >>> net = abilene_network()
    >>> router = SparseRouter(net, weights=[1.0] * net.num_links)
    >>> tms = [gravity_traffic_matrix(net, total_volume=v) for v in (10.0, 20.0)]
    >>> loads = router.link_loads_many(tms)
    >>> loads.shape == (2, net.num_links)
    True
    """

    def __init__(
        self,
        network: Network,
        weights: WeightsLike | None = None,
        *,
        dags: Mapping[Node, ShortestPathDag] | None = None,
        mode: str = "ecmp",
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if weights is None and dags is None:
            raise ValueError("SparseRouter needs link weights or precomputed DAGs")
        self.network = network
        self.mode = mode
        self.tolerance = tolerance
        self._weights = as_weight_vector(network, weights) if weights is not None else None
        self._set = CompiledDagSet(network, dags)
        self._ratios: dict[Node, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _compiled(self, destination: Node) -> CompiledDag:
        if destination not in self._set:
            if self._weights is None:
                raise UnreachableError(
                    f"no shortest-path DAG for destination {destination!r}"
                )
            self._set.add(
                destination,
                shortest_path_dag(self.network, destination, self._weights, self.tolerance),
            )
        return self._set.compiled(destination)

    def refresh_destination(
        self, destination: Node, dag: ShortestPathDag | None = None
    ) -> None:
        """Install a new DAG for (or invalidate) one destination.

        After a network event touched ``destination``, pass the updated DAG
        (e.g. from :class:`repro.online.DynamicSPT`) to have just that
        destination recompiled lazily; pass ``None`` to forget it (it is
        rebuilt from ``weights`` on next use, when available).  Cached mode
        ratios for the destination are dropped either way; all other
        destinations keep their compiled state.
        """
        if dag is None:
            self._set.discard(destination)
        else:
            self._set.update(destination, dag)
        self._ratios.pop(destination, None)

    def _mode_ratios(self, destination: Node, compiled: CompiledDag) -> np.ndarray:
        ratios = self._ratios.get(destination)
        if ratios is None:
            if self.mode == "all_or_nothing":
                ratios = compiled.first_hop_ratios()
            else:
                ratios = compiled.uniform_ratios()
            self._ratios[destination] = ratios
        return ratios

    def _check_reachable(self, compiled: CompiledDag, entering: Mapping[Node, float]) -> None:
        for source in entering:
            if source not in compiled.positions:
                raise UnreachableError(
                    f"demand source {source!r} cannot reach {compiled.destination!r}"
                )

    # ------------------------------------------------------------------
    def route(
        self,
        demands: TrafficMatrix,
        split_ratios: Mapping[Node, Mapping[Node, Mapping[Node, float]]] | None = None,
    ) -> FlowAssignment:
        """Route one traffic matrix, returning the per-destination decomposition."""
        demands.validate(self.network)
        flows = FlowAssignment(network=self.network)
        for destination, entering in demands.by_destination().items():
            compiled = self._compiled(destination)
            degenerate: list[tuple[int, float]] = []
            if self.mode == "split":
                ratios = compiled.bind_ratios(
                    split_ratios.get(destination) if split_ratios else None, degenerate
                )
                missing = "drop"
            else:
                ratios = self._mode_ratios(destination, compiled)
                missing = "raise"
                self._check_reachable(compiled, entering)
            vector = flows.ensure_destination(destination)
            demand = compiled.entering_vector(entering, missing=missing)
            throughflow = compiled.propagate(demand, ratios)
            compiled.warn_loaded_degenerates(degenerate, throughflow)
            compiled.scatter_link_loads(throughflow, ratios, out=vector)
        return flows

    def link_loads(self, demands: TrafficMatrix) -> np.ndarray:
        """Aggregate per-link loads of one traffic matrix."""
        return self.route(demands).aggregate()

    def link_loads_many(
        self,
        matrices: Sequence[TrafficMatrix],
        split_ratios: Mapping[Node, Mapping[Node, Mapping[Node, float]]] | None = None,
    ) -> np.ndarray:
        """Aggregate link loads of a whole demand ensemble, batched.

        The stacked entry point: for each destination appearing anywhere in
        the ensemble the entering volumes of *all* matrices form one
        ``(num_dag_nodes, m)`` right-hand side, propagated in a single
        forward-substitution sweep.  Returns an ``(m, num_links)`` array whose
        row ``i`` equals ``route(matrices[i]).aggregate()`` to float
        round-off.
        """
        matrices = list(matrices)
        m = len(matrices)
        loads = np.zeros((self.network.num_links, m))
        if m == 0:
            return loads.T
        by_destination = []
        destinations: dict[Node, None] = {}
        for tm in matrices:
            tm.validate(self.network)
            per = tm.by_destination()
            by_destination.append(per)
            for destination in per:
                destinations.setdefault(destination, None)
        for destination in destinations:
            compiled = self._compiled(destination)
            degenerate: list[tuple[int, float]] = []
            if self.mode == "split":
                ratios = compiled.bind_ratios(
                    split_ratios.get(destination) if split_ratios else None, degenerate
                )
                missing = "drop"
            else:
                ratios = self._mode_ratios(destination, compiled)
                missing = "raise"
            entering = np.zeros((compiled.num_nodes, m))
            for column, per in enumerate(by_destination):
                volumes = per.get(destination)
                if not volumes:
                    continue
                if missing == "raise":
                    self._check_reachable(compiled, volumes)
                compiled.entering_vector(volumes, column=column, out=entering, missing=missing)
            throughflow = compiled.propagate(entering, ratios)
            compiled.warn_loaded_degenerates(degenerate, throughflow)
            compiled.scatter_link_loads(throughflow, ratios, out=loads)
        return loads.T


# ----------------------------------------------------------------------
# functional drop-ins for the oracle routines
# ----------------------------------------------------------------------
def sparse_ecmp_assignment(
    network: Network,
    demands: TrafficMatrix,
    weights: WeightsLike,
    tolerance: float = DEFAULT_TOLERANCE,
    dags: Mapping[Node, ShortestPathDag] | None = None,
) -> FlowAssignment:
    """Vectorized twin of :func:`repro.solvers.assignment.ecmp_assignment`."""
    router = SparseRouter(
        network, weights=weights, dags=dags, mode="ecmp", tolerance=tolerance
    )
    return router.route(demands)


def sparse_all_or_nothing_assignment(
    network: Network,
    demands: TrafficMatrix,
    weights: WeightsLike,
    tolerance: float = DEFAULT_TOLERANCE,
) -> FlowAssignment:
    """Vectorized twin of :func:`repro.solvers.assignment.all_or_nothing_assignment`."""
    router = SparseRouter(network, weights=weights, mode="all_or_nothing", tolerance=tolerance)
    return router.route(demands)


def sparse_split_ratio_assignment(
    network: Network,
    demands: TrafficMatrix,
    dags: Mapping[Node, ShortestPathDag],
    split_ratios: Mapping[Node, Mapping[Node, Mapping[Node, float]]],
) -> FlowAssignment:
    """Vectorized twin of :func:`repro.solvers.assignment.split_ratio_assignment`."""
    demands.validate(network)
    dag_set = CompiledDagSet(network, dags)
    return dag_set.split_ratio_flows(demands, split_ratios)


def sparse_traffic_distribution(
    network: Network,
    demands: TrafficMatrix,
    dags: Mapping[Node, ShortestPathDag],
    second_weights: np.ndarray,
) -> FlowAssignment:
    """Vectorized twin of :func:`repro.core.traffic_distribution.traffic_distribution`."""
    demands.validate(network)
    second = np.asarray(second_weights, dtype=float)
    if second.shape != (network.num_links,):
        raise ValueError(
            f"second weights must have length {network.num_links}, got {second.shape}"
        )
    dag_set = CompiledDagSet(network, dags)
    return dag_set.traffic_distribution(demands, second)


def batched_link_loads(
    network: Network,
    matrices: Sequence[TrafficMatrix],
    weights: WeightsLike,
    *,
    mode: str = "ecmp",
    tolerance: float = DEFAULT_TOLERANCE,
    dags: Mapping[Node, ShortestPathDag] | None = None,
    split_ratios: Mapping[Node, Mapping[Node, Mapping[Node, float]]] | None = None,
) -> np.ndarray:
    """One-shot batched evaluation: ``(m, num_links)`` loads for an ensemble.

    Convenience wrapper around :class:`SparseRouter` for callers that do not
    keep the router around (the DAGs are still compiled only once *within*
    the call, which is where the ensemble speedup comes from).
    """
    router = SparseRouter(network, weights=weights, dags=dags, mode=mode, tolerance=tolerance)
    return router.link_loads_many(matrices, split_ratios=split_ratios)
