"""Compiled destination DAGs: the data structure of the sparse routing backend.

The reference (oracle) routines in :mod:`repro.solvers.assignment` propagate
traffic per destination with nested Python dict loops.  This module compiles a
:class:`~repro.network.spt.ShortestPathDag` once into flat CSR-style arrays so
that the propagation becomes sparse linear algebra:

* nodes are renumbered into topological order ``0..k-1`` (every node precedes
  all of its next hops, the destination carries no out-edges);
* the DAG edges form a split-ratio matrix ``P`` where ``P[i, j]`` is the
  fraction of node ``i``'s throughflow forwarded to node ``j``.  Under the
  topological numbering ``P`` is strictly upper triangular, so the node
  throughflows ``x`` (local demand plus transit) solve the unit lower
  triangular system

      (I - P^T) x = e

  where ``e`` is the demand entering at each node.  :meth:`CompiledDag.propagate`
  performs that forward substitution directly on the CSR arrays, one sparse
  axpy per node row, and accepts a matrix right-hand side so a whole demand
  ensemble is routed in a single stacked sweep;
* link loads follow as the gather/scatter ``f[link(i, j)] = P[i, j] * x[i]``.

Compilation is pure-Python :math:`O(E)` and is meant to be *amortised*: build
a :class:`CompiledDag` once per (network, weight setting, destination) and
reuse it across demand matrices, gradient iterations and scenario sweeps.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from ..network.graph import Network, Node
from ..network.spt import ShortestPathDag, UnreachableError

logger = logging.getLogger(__name__)


def warn_degenerate_split(node: Node, destination: Node, total: float, count: int) -> None:
    """Log the even-split fallback for degenerate stored split ratios.

    Called by both backends when a node has *stored* split ratios towards a
    destination but they sum to (numerically) zero over its next hops.  The
    traffic is still delivered -- split evenly -- but silently ignoring the
    configured ratios used to hide configuration bugs, so the fallback is now
    logged explicitly.
    """
    logger.warning(
        "stored split ratios at node %r towards %r sum to %g over %d next hop(s); "
        "falling back to an even split",
        node,
        destination,
        total,
        count,
    )


@dataclass
class CompiledDag:
    """One destination DAG compiled to CSR arrays in topological node order.

    Attributes
    ----------
    destination:
        The destination node the DAG routes towards.
    order:
        DAG nodes in topological order (position ``i`` holds the node whose
        row is ``i``; every node precedes all of its next hops).
    positions:
        Inverse of ``order``: ``positions[node] = i``.
    node_ids:
        Dense network node index of each position (``network.node_index``).
    indptr, targets, links:
        CSR layout of the DAG edges: the out-edges of position ``i`` are the
        slice ``indptr[i]:indptr[i + 1]``; ``targets`` holds the position of
        each edge's head and ``links`` its dense link index in the network.
    rows:
        Position of each edge's tail (the expanded CSR row index), kept for
        vectorised per-edge gathers.
    num_links:
        ``network.num_links`` of the owning network (the scatter width).
    """

    destination: Node
    order: list[Node]
    positions: dict[Node, int]
    node_ids: np.ndarray
    indptr: np.ndarray
    targets: np.ndarray
    links: np.ndarray
    rows: np.ndarray
    num_links: int

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dag(cls, network: Network, dag: ShortestPathDag) -> CompiledDag:
        """Compile a shortest-path DAG (including augmented DAGs)."""
        return cls.from_next_hops(network, dag.destination, dag.topological_order(), dag.next_hops)

    @classmethod
    def from_next_hops(
        cls,
        network: Network,
        destination: Node,
        order: Sequence[Node],
        next_hops: Mapping[Node, Sequence[Node]],
    ) -> CompiledDag:
        """Compile an explicit (topological order, next-hop map) pair.

        ``order`` must list every node of the DAG with each node before all of
        its next hops; this is what lets non-shortest-path structures (e.g.
        PEFT's downward graph, ordered by decreasing distance) reuse the same
        kernels.
        """
        positions = {node: i for i, node in enumerate(order)}
        k = len(order)
        indptr = np.zeros(k + 1, dtype=np.int64)
        targets: list[int] = []
        links: list[int] = []
        for i, node in enumerate(order):
            if node != destination:
                for hop in next_hops.get(node, ()):
                    position = positions.get(hop)
                    if position is None:
                        raise UnreachableError(
                            f"next hop {hop!r} of {node!r} is not part of the DAG "
                            f"towards {destination!r}"
                        )
                    targets.append(position)
                    links.append(network.link_index(node, hop))
            indptr[i + 1] = len(targets)
        targets_arr = np.asarray(targets, dtype=np.int64)
        rows = np.repeat(np.arange(k, dtype=np.int64), np.diff(indptr))
        node_ids = np.fromiter(
            (network.node_index(node) for node in order), dtype=np.int64, count=k
        )
        return cls(
            destination=destination,
            order=list(order),
            positions=positions,
            node_ids=node_ids,
            indptr=indptr,
            targets=targets_arr,
            links=np.asarray(links, dtype=np.int64),
            rows=rows,
            num_links=network.num_links,
        )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.order)

    @property
    def num_edges(self) -> int:
        return int(self.links.size)

    def out_degree(self) -> np.ndarray:
        """Number of next hops per position."""
        return np.diff(self.indptr)

    def split_matrix(self, ratios: np.ndarray | None = None):
        """The split-ratio matrix ``P`` as a :class:`scipy.sparse.csr_matrix`.

        ``P[i, j]`` is the fraction of position ``i``'s throughflow forwarded
        to position ``j``; strictly upper triangular by construction.  With
        ``ratios=None`` the even ECMP split is used.  Mostly a debugging and
        interop view -- :meth:`propagate` works on the raw arrays directly.
        """
        import scipy.sparse as sp

        data = self.uniform_ratios() if ratios is None else np.asarray(ratios, dtype=float)
        return sp.csr_matrix(
            (data, self.targets, self.indptr), shape=(self.num_nodes, self.num_nodes)
        )

    # ------------------------------------------------------------------
    # ratio vectors (one value per compiled edge)
    # ------------------------------------------------------------------
    def uniform_ratios(self) -> np.ndarray:
        """Even ECMP split: ``1 / out_degree`` on every edge."""
        degrees = self.out_degree()
        with np.errstate(divide="ignore"):
            inverse = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1), 0.0)
        return np.repeat(inverse, degrees)

    def first_hop_ratios(self) -> np.ndarray:
        """All-or-nothing split: the first next hop of every node gets 1.0."""
        ratios = np.zeros(self.num_edges)
        ratios[self.indptr[:-1][np.diff(self.indptr) > 0]] = 1.0
        return ratios

    def bind_ratios(
        self,
        split_ratios: Mapping[Node, Mapping[Node, float]] | None,
        degenerate: list[tuple[int, float]] | None = None,
    ) -> np.ndarray:
        """Normalise per-node ``{hop: ratio}`` mappings into a per-edge vector.

        Mirrors the oracle's semantics exactly: nodes absent from
        ``split_ratios`` (or with an empty mapping) split evenly; nodes whose
        stored ratios sum to zero over their next hops also fall back to an
        even split.  The latter are logged via :func:`warn_degenerate_split`
        -- immediately when ``degenerate`` is ``None``, or collected into it
        as ``(position, total)`` pairs so the caller can warn only for nodes
        that actually carry traffic (:meth:`warn_loaded_degenerates`), which
        is when the oracle's warning fires.
        """
        if split_ratios is None:
            return self.uniform_ratios()
        ratios = np.empty(self.num_edges)
        indptr = self.indptr
        for i, node in enumerate(self.order):
            start, end = indptr[i], indptr[i + 1]
            if start == end:
                continue
            stored = split_ratios.get(node)
            if not stored:
                ratios[start:end] = 1.0 / (end - start)
                continue
            values = np.fromiter(
                (stored.get(self.order[t], 0.0) for t in self.targets[start:end]),
                dtype=float,
                count=end - start,
            )
            total = float(values.sum())
            if total <= 0:
                if degenerate is None:
                    warn_degenerate_split(node, self.destination, total, int(end - start))
                else:
                    degenerate.append((i, total))
                ratios[start:end] = 1.0 / (end - start)
            else:
                # Clamp negative stored ratios to zero *after* normalising,
                # mirroring the oracle, which normalises by the signed total
                # but never pushes a non-positive share onto a link.
                ratios[start:end] = np.maximum(values / total, 0.0)
        return ratios

    def warn_loaded_degenerates(
        self, degenerate: list[tuple[int, float]], throughflow: np.ndarray
    ) -> None:
        """Warn for degenerate-ratio nodes that actually carried traffic.

        ``degenerate`` is what :meth:`bind_ratios` collected; ``throughflow``
        the corresponding :meth:`propagate` result (single or batched).
        """
        for position, total in degenerate:
            if np.any(throughflow[position] > 0):
                count = int(self.indptr[position + 1] - self.indptr[position])
                warn_degenerate_split(self.order[position], self.destination, total, count)

    def exponential_ratios(self, link_lengths: np.ndarray) -> np.ndarray:
        """The exponential split ratios of Eq. (22), vectorised.

        ``link_lengths`` is a link-indexed vector (e.g. the second weights
        ``v``); the ratio of edge ``(s, k)`` is
        ``exp(-v_sk) * Z(k) / sum_i exp(-v_si) * Z(i)`` where the path-weight
        sums ``Z`` are computed by one reverse topological sweep.  Rows whose
        total is numerically zero fall back to an even split, matching
        :func:`repro.core.traffic_distribution.exponential_split_ratios`.
        """
        lengths = np.asarray(link_lengths, dtype=float)
        boltzmann = np.exp(-lengths[self.links]) if self.num_edges else np.empty(0)
        z_values = self.path_weight_sums(boltzmann)
        data = boltzmann * z_values[self.targets]
        totals = np.zeros(self.num_nodes)
        np.add.at(totals, self.rows, data)
        edge_totals = totals[self.rows]
        degrees = self.out_degree()
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(
                edge_totals > 0,
                np.divide(data, edge_totals, out=np.zeros_like(data), where=edge_totals > 0),
                1.0 / degrees[self.rows],
            )
        return ratios

    def path_weight_sums(self, edge_factors: np.ndarray) -> np.ndarray:
        """``Z(s) = sum over DAG paths p from s of prod of edge factors on p``.

        One reverse topological sweep; ``Z(destination) = 1``.  With
        ``edge_factors = exp(-v)`` this is the dynamic program of the paper's
        Eq. (22) (:func:`repro.core.traffic_distribution.path_weight_sums`).
        """
        z_values = np.zeros(self.num_nodes)
        destination_pos = self.positions[self.destination]
        z_values[destination_pos] = 1.0
        indptr, targets = self.indptr, self.targets
        for i in range(self.num_nodes - 1, -1, -1):
            start, end = indptr[i], indptr[i + 1]
            if start == end:
                continue
            z_values[i] = float(np.dot(edge_factors[start:end], z_values[targets[start:end]]))
        return z_values

    # ------------------------------------------------------------------
    # demand vectors
    # ------------------------------------------------------------------
    def entering_vector(
        self,
        entering: Mapping[Node, float],
        columns: int = 0,
        column: int = 0,
        out: np.ndarray | None = None,
        missing: str = "raise",
    ) -> np.ndarray:
        """Scatter ``{node: volume}`` into a (stacked) position-indexed vector.

        ``missing`` controls sources outside the DAG (unreachable nodes):
        ``"raise"`` matches the ECMP/all-or-nothing oracles, ``"drop"``
        matches the split-ratio oracle which silently ignores them.
        """
        if out is None:
            shape = (self.num_nodes, columns) if columns else (self.num_nodes,)
            out = np.zeros(shape)
        positions = self.positions
        target = out[:, column] if out.ndim == 2 else out
        for node, volume in entering.items():
            position = positions.get(node)
            if position is None:
                if missing == "raise":
                    raise UnreachableError(
                        f"demand source {node!r} cannot reach {self.destination!r}"
                    )
                continue
            target[position] += volume
        return out

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def propagate(self, entering: np.ndarray, ratios: np.ndarray) -> np.ndarray:
        """Node throughflows ``x`` solving ``(I - P^T) x = entering``.

        Forward substitution in topological order: each row's (now final)
        throughflow is pushed to its next hops with one sparse axpy.  A 2-D
        ``entering`` of shape ``(num_nodes, m)`` routes ``m`` demand vectors
        at once -- the batched path the scenario engine uses.

        Raises
        ------
        UnreachableError
            If positive traffic reaches a node with no next hops (other than
            the destination), matching the oracle's behaviour.
        """
        x = np.array(entering, dtype=float, copy=True)
        indptr, targets = self.indptr, self.targets
        destination_pos = self.positions[self.destination]
        batched = x.ndim == 2
        for i in range(self.num_nodes):
            start, end = indptr[i], indptr[i + 1]
            if start == end:
                if i != destination_pos and np.any(x[i] > 0):
                    raise UnreachableError(
                        f"node {self.order[i]!r} has traffic for "
                        f"{self.destination!r} but no next hop"
                    )
                continue
            if batched:
                x[targets[start:end]] += ratios[start:end, None] * x[i]
            else:
                x[targets[start:end]] += ratios[start:end] * x[i]
        return x

    def scatter_link_loads(
        self,
        throughflow: np.ndarray,
        ratios: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-link loads ``f[link(i, j)] = ratio_ij * x_i`` (added into ``out``).

        ``throughflow`` is the result of :meth:`propagate`; a 2-D input yields
        ``(num_links, m)`` stacked loads.  Each link appears at most once in
        the DAG, so a vectorised fancy-index add is exact.
        """
        if out is None:
            if throughflow.ndim == 2:
                out = np.zeros((self.num_links, throughflow.shape[1]))
            else:
                out = np.zeros(self.num_links)
        if self.num_edges:
            if throughflow.ndim == 2:
                out[self.links] += ratios[:, None] * throughflow[self.rows]
            else:
                out[self.links] += ratios * throughflow[self.rows]
        return out

    def link_loads(
        self,
        entering: Mapping[Node, float],
        ratios: np.ndarray,
        missing: str = "raise",
    ) -> np.ndarray:
        """Convenience: entering mapping -> per-link load vector."""
        demand = self.entering_vector(entering, missing=missing)
        return self.scatter_link_loads(self.propagate(demand, ratios), ratios)
