"""Experiment harness and plain-text reporting."""

from .experiments import (
    Instance,
    fig2_cost_curves,
    fig3_beta_sweep,
    fig4_example_results,
    fig5_forwarding_table,
    fig9_sorted_utilizations,
    fig10_utility_sweep,
    fig11_simulation,
    fig12_convergence,
    fig13_integer_weights,
    standard_instances,
    table1_weights_and_utilizations,
    table3_topologies,
    table4_demands,
    table5_equal_cost_paths,
)
from .reporting import (
    format_histogram,
    format_series,
    format_table,
    print_report,
    series_summary,
)

__all__ = [
    "Instance",
    "fig2_cost_curves",
    "fig3_beta_sweep",
    "fig4_example_results",
    "fig5_forwarding_table",
    "fig9_sorted_utilizations",
    "fig10_utility_sweep",
    "fig11_simulation",
    "fig12_convergence",
    "fig13_integer_weights",
    "standard_instances",
    "table1_weights_and_utilizations",
    "table3_topologies",
    "table4_demands",
    "table5_equal_cost_paths",
    "format_histogram",
    "format_series",
    "format_table",
    "print_report",
    "series_summary",
]
