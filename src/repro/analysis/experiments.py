"""Experiment harness: one function per table/figure of the paper.

Each function returns plain Python data structures (dicts, lists, numpy
arrays) that the ``benchmarks/`` modules print and sanity-check, and that the
``examples/`` scripts plot or tabulate.  Nothing here touches matplotlib so
the harness stays importable in headless CI.

The module also defines the *standard instances*: the (network, base traffic
matrix) pairs for Abilene, Cernet2 and the synthetic topologies, generated
with fixed seeds so every experiment is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from ..core.first_weights import compute_first_weights
from ..core.nem import compute_second_weights
from ..core.objectives import LoadBalanceObjective, normalized_utility
from ..core.spef import SPEF, SPEFConfig
from ..core.te_problem import TEProblem, solve_optimal_te
from ..network.demands import TrafficMatrix
from ..network.graph import Network, NetworkSummary
from ..network.spt import all_shortest_path_dags
from ..protocols.fortz_thorup import FortzThorup, link_cost
from ..protocols.minmax_mlu import MinMaxMLU
from ..protocols.ospf import OSPF, invcap_weights
from ..protocols.peft import PEFT
from ..protocols.spef_protocol import SPEFProtocol
from ..scenarios.generators import baseline_scenario, single_link_failures
from ..scenarios.robustness import regret_rows, robustness_summary
from ..scenarios.runner import BatchRunner, ProtocolSpec
from ..scenarios.scenario import Scenario
from ..simulator.simulation import simulate_protocol
from ..topology.backbones import abilene_network, cernet2_network
from ..topology.generators import hier50a, hier50b, rand50a, rand50b, rand100
from ..topology.paper_examples import (
    FIG4_LINKS,
    fig1_demands,
    fig1_network,
    fig4_demands,
    fig4_network,
)
from ..traffic.fortz_thorup_tm import abilene_traffic_matrix, fortz_thorup_traffic_matrix
from ..traffic.netflow import cernet2_traffic_matrix
from ..traffic.scaling import scale_to_network_load


# ----------------------------------------------------------------------
# Standard instances
# ----------------------------------------------------------------------
@dataclass
class Instance:
    """A named (network, base traffic matrix) pair used by the evaluation."""

    network: Network
    base_demands: TrafficMatrix
    kind: str
    #: Fractions of the saturation load swept in Fig. 10 for this instance.
    load_fractions: tuple[float, ...] = (0.55, 0.65, 0.75, 0.85, 0.95, 1.0)
    #: Cached network load at which the *optimal* (min-max) MLU reaches
    #: ``SATURATION_MLU``; computed lazily by :meth:`saturation_load`.
    _saturation_load: float | None = None

    #: Optimal MLU that defines "almost 100% utilisation" in the paper's
    #: demand-scaling procedure.  Kept a little below 1 so that the
    #: proportional-fairness optimum (whose MLU is >= the min-max optimum)
    #: still fits at the top of the sweep.
    SATURATION_MLU = 0.9

    def at_load(self, load: float) -> TrafficMatrix:
        """The base matrix uniformly scaled to a target network load."""
        return scale_to_network_load(self.network, self.base_demands, load)

    def saturation_load(self) -> float:
        """Network load at which the optimal MLU reaches ``SATURATION_MLU``.

        This reproduces the paper's procedure of "uniformly increasing the
        traffic demands until the maximal link utilization almost reaches
        100% with SPEF": SPEF realises the optimal TE, so its MLU equals the
        min-max LP optimum, which scales linearly with a uniform demand
        scaling.  One LP solve therefore pins down the saturation load.
        """
        if self._saturation_load is None:
            from ..solvers.mcf import solve_min_mlu

            base_load = self.base_demands.network_load(self.network)
            base_mlu = solve_min_mlu(
                self.network, self.base_demands, allow_overload=True
            ).objective
            if base_mlu <= 0:
                raise ValueError("base traffic matrix routes with zero utilization")
            self._saturation_load = base_load * self.SATURATION_MLU / base_mlu
        return self._saturation_load

    def fig10_loads(self) -> list[float]:
        """The network-load levels swept in Fig. 10 for this instance."""
        saturation = self.saturation_load()
        return [round(fraction * saturation, 6) for fraction in self.load_fractions]

    def at_fraction(self, fraction: float) -> TrafficMatrix:
        """Demands scaled to ``fraction`` of the saturation load."""
        return self.at_load(fraction * self.saturation_load())


def _limit_pairs(
    demands: TrafficMatrix,
    max_pairs: int | None,
    max_destinations: int | None = None,
) -> TrafficMatrix:
    """Keep only the largest demands, optionally capping distinct destinations.

    The LP and Frank-Wolfe costs scale with the number of *commodities*
    (destinations), so the destination cap is the effective runtime knob for
    the 50/100-node synthetic topologies.
    """
    kept = dict(demands.items())
    if max_destinations is not None:
        by_destination: dict[object, float] = {}
        for (_source, target), volume in kept.items():
            by_destination[target] = by_destination.get(target, 0.0) + volume
        top = set(
            sorted(by_destination, key=by_destination.get, reverse=True)[:max_destinations]
        )
        kept = {pair: volume for pair, volume in kept.items() if pair[1] in top}
    if max_pairs is not None and len(kept) > max_pairs:
        largest = sorted(kept.items(), key=lambda item: item[1], reverse=True)[:max_pairs]
        kept = dict(largest)
    return TrafficMatrix(kept)


def standard_instances(
    max_pairs: int | None = 240, max_destinations: int | None = 20
) -> dict[str, Instance]:
    """The seven evaluation instances of Table III with their base workloads.

    ``max_pairs`` and ``max_destinations`` cap the demand matrix on the large
    synthetic topologies (the biggest demands / busiest destinations are
    kept); set both to ``None`` for the full all-pairs matrices at the cost of
    much slower LP solves.
    """
    instances: dict[str, Instance] = {}

    abilene = abilene_network()
    instances["Abilene"] = Instance(
        network=abilene,
        base_demands=abilene_traffic_matrix(abilene, total_volume=1.0, seed=1),
        kind="Backbone",
    )

    cernet2 = cernet2_network()
    instances["Cernet2"] = Instance(
        network=cernet2,
        base_demands=cernet2_traffic_matrix(cernet2, mean_utilization=0.25, seed=2010),
        kind="Backbone",
    )

    synthetic: list[tuple[str, Callable[[], Network]]] = [
        ("Hier50a", hier50a),
        ("Hier50b", hier50b),
        ("Rand50a", rand50a),
        ("Rand50b", rand50b),
        ("Rand100", rand100),
    ]
    for name, builder in synthetic:
        network = builder()
        seed = sum(ord(c) for c in name)
        demands = fortz_thorup_traffic_matrix(network, total_volume=1.0, seed=seed)
        demands = _limit_pairs(demands, max_pairs, max_destinations)
        kind = "2-level" if name.startswith("Hier") else "Random"
        instances[name] = Instance(network=network, base_demands=demands, kind=kind)
    return instances


def table3_topologies(instances: dict[str, Instance] | None = None) -> list[dict[str, object]]:
    """Table III: the properties of every evaluation network."""
    instances = instances or standard_instances()
    rows = []
    for name, instance in instances.items():
        summary = NetworkSummary.of(instance.network, kind=instance.kind)
        rows.append(
            {
                "network": name,
                "topology": instance.kind,
                "nodes": summary.num_nodes,
                "links": summary.num_links,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table I / Fig. 2 / Fig. 3 -- the Fig. 1 example
# ----------------------------------------------------------------------
def table1_weights_and_utilizations() -> list[dict[str, object]]:
    """Table I: weights and utilizations on Fig. 1 for several objectives."""
    network = fig1_network()
    demands = fig1_demands()
    rows: list[dict[str, object]] = []

    for beta in (0.0, 1.0):
        objective = LoadBalanceObjective(beta=beta)
        solution = solve_optimal_te(TEProblem(network, demands, objective))
        utilization = solution.flows.utilization()
        for link in network.links:
            rows.append(
                {
                    "objective": f"beta={beta:g}",
                    "link": f"{link.source}->{link.target}",
                    "weight": float(solution.link_weights[link.index]),
                    "utilization": float(utilization[link.index]),
                }
            )

    # Fortz-Thorup optimised integer weights with even ECMP splitting.
    ft = FortzThorup(max_weight=5, max_evaluations=200, seed=3)
    ft_flows = ft.route(network, demands)
    ft_weights = ft.last_result.weights
    ft_util = ft_flows.utilization()
    for link in network.links:
        rows.append(
            {
                "objective": "Fortz-Thorup",
                "link": f"{link.source}->{link.target}",
                "weight": float(ft_weights[link.index]),
                "utilization": float(ft_util[link.index]),
            }
        )

    # Min-max MLU LP routing.
    mlu = MinMaxMLU()
    mlu_flows = mlu.route(network, demands)
    mlu_weights = mlu.weights(network, demands)
    mlu_util = mlu_flows.utilization()
    for link in network.links:
        rows.append(
            {
                "objective": "min-max MLU",
                "link": f"{link.source}->{link.target}",
                "weight": float(mlu_weights[link.index]) if mlu_weights is not None else 0.0,
                "utilization": float(mlu_util[link.index]),
            }
        )
    return rows


def fig2_cost_curves(
    loads: Sequence[float] | None = None, capacity: float = 1.0
) -> dict[str, list[float]]:
    """Fig. 2: link cost as a function of load for FT and beta in {0, 1, 2}.

    The (q, beta) "cost" of carrying load f on a unit-capacity link is the
    utility loss ``V(c) - V(c - f)`` with q = 1, which is the natural
    counterpart of the Fortz-Thorup piecewise-linear cost.
    """
    if loads is None:
        loads = [round(x, 3) for x in np.linspace(0.0, 0.99, 100)]
    curves: dict[str, list[float]] = {"load": list(map(float, loads))}
    curves["FT"] = [link_cost(load * capacity, capacity) for load in loads]
    for beta in (0.0, 1.0, 2.0):
        objective = LoadBalanceObjective(beta=beta)
        base = float(objective.utility(np.array([capacity]))[0])
        values = []
        for load in loads:
            spare = capacity - load * capacity
            utility = float(objective.utility(np.array([spare]))[0])
            values.append(base - utility if np.isfinite(utility) else float("inf"))
        curves[f"beta={beta:g}"] = values
    return curves


def fig3_beta_sweep(betas: Sequence[float] | None = None) -> dict[str, dict[str, list[float]]]:
    """Fig. 3: first weights and utilizations on Fig. 1 as beta varies."""
    if betas is None:
        betas = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0]
    network = fig1_network()
    demands = fig1_demands()
    weights: dict[str, list[float]] = {f"{u}->{v}": [] for u, v in network.edges}
    utilizations: dict[str, list[float]] = {f"{u}->{v}": [] for u, v in network.edges}
    for beta in betas:
        objective = LoadBalanceObjective(beta=beta)
        solution = solve_optimal_te(TEProblem(network, demands, objective))
        utilization = solution.flows.utilization()
        for link in network.links:
            key = f"{link.source}->{link.target}"
            weights[key].append(float(solution.link_weights[link.index]))
            utilizations[key].append(float(utilization[link.index]))
    return {"beta": {"values": list(map(float, betas))}, "weights": weights, "utilizations": utilizations}


# ----------------------------------------------------------------------
# Fig. 5/6/7 -- the Fig. 4 example
# ----------------------------------------------------------------------
def fig4_example_results(betas: Sequence[float] = (0.0, 1.0, 5.0)) -> dict[str, object]:
    """Fig. 6 and Fig. 7: OSPF vs SPEF(beta) on the 7-node example topology."""
    network = fig4_network()
    demands = fig4_demands()
    link_labels = [f"{FIG4_LINKS[i][0]}->{FIG4_LINKS[i][1]}" for i in sorted(FIG4_LINKS)]

    ospf_util = OSPF().route(network, demands).utilization()
    results: dict[str, object] = {
        "link_labels": link_labels,
        "OSPF_utilization": [float(x) for x in ospf_util],
    }
    for beta in betas:
        protocol = SPEFProtocol.with_beta(beta)
        solution = protocol.fit(network, demands)
        results[f"SPEF{beta:g}_first_weights"] = [float(x) for x in solution.first_weights]
        results[f"SPEF{beta:g}_second_weights"] = [float(x) for x in solution.second_weights]
        results[f"SPEF{beta:g}_utilization"] = [float(x) for x in solution.utilization()]
    return results


def fig5_forwarding_table(beta: float = 1.0, destination: int = 2) -> dict[str, object]:
    """Fig. 5 / Table II: the SPEF forwarding entries towards one destination."""
    network = fig4_network()
    demands = fig4_demands()
    solution = SPEFProtocol.with_beta(beta).fit(network, demands)
    rows = []
    for node, table in solution.forwarding_tables.items():
        if destination not in table.entries:
            continue
        for entry in table.entries[destination]:
            rows.append(
                {
                    "node": node,
                    "destination": destination,
                    "next_hop": entry.next_hop,
                    "num_paths": entry.num_paths,
                    "path_lengths": tuple(round(x, 4) for x in entry.path_lengths),
                    "split_ratio": round(entry.split_ratio, 4),
                }
            )
    return {"rows": rows, "solution": solution}


# ----------------------------------------------------------------------
# Fig. 9 / Fig. 10 -- SPEF vs OSPF on the evaluation topologies
# ----------------------------------------------------------------------
def fig9_sorted_utilizations(
    instance: Instance,
    load: float | None = None,
    spef_config: SPEFConfig | None = None,
) -> dict[str, list[float]]:
    """Fig. 9: sorted link utilizations of OSPF and SPEF at one load level.

    ``load`` defaults to 85% of the instance's saturation load, the regime
    where the paper's Fig. 9 snapshots are taken (OSPF already overloading
    some links while SPEF still fits).
    """
    if load is None:
        load = 0.85 * instance.saturation_load()
    demands = instance.at_load(load)
    ospf_flows = OSPF().route(instance.network, demands)
    spef_protocol = SPEFProtocol(config=spef_config) if spef_config else SPEFProtocol()
    spef_flows = spef_protocol.route(instance.network, demands)
    return {
        "OSPF": [float(x) for x in ospf_flows.sorted_utilizations()],
        "SPEF": [float(x) for x in spef_flows.sorted_utilizations()],
    }


def fig10_utility_sweep(
    instance: Instance,
    loads: Sequence[float] | None = None,
    protocols: dict[str, Callable[[], object]] | None = None,
) -> dict[str, list[float]]:
    """Fig. 10: normalised utility of OSPF and SPEF across network loads."""
    loads = list(loads) if loads is not None else instance.fig10_loads()
    if protocols is None:
        protocols = {"OSPF": OSPF, "SPEF": SPEFProtocol}
    series: dict[str, list[float]] = {"load": [float(x) for x in loads]}
    for name, factory in protocols.items():
        values = []
        for load in loads:
            demands = instance.at_load(load)
            protocol = factory()
            flows = protocol.route(instance.network, demands)
            values.append(normalized_utility(flows.utilization()))
        series[name] = values
    return series


# ----------------------------------------------------------------------
# Table IV / Fig. 11 -- SPEF vs PEFT in the flow-level simulator
# ----------------------------------------------------------------------
def table4_demands() -> dict[str, TrafficMatrix]:
    """The demand sets of Table IV (simple network and Cernet2 backbone).

    The Cernet2 demands keep the paper's source/destination pairs and their
    relative sizes but are scaled down (factor 0.25): our Cernet2
    reconstruction attaches less regional capacity to the source PoPs 11 and
    14 than the paper's map, so the full Table IV volumes would not be
    routable on it.  The scaling preserves the experiment's purpose --
    comparing how SPEF and PEFT spread a fixed demand set over the backbone.
    """
    cernet2_demands = TrafficMatrix(
        {
            (11, 1): 3.0,
            (11, 2): 2.0,
            (11, 20): 2.0,
            (13, 6): 1.0,
            (14, 1): 4.0,
            (14, 8): 2.0,
        }
    ).scaled(0.25)
    return {"simple": fig4_demands(), "cernet2": cernet2_demands}


def fig11_simulation(
    case: str = "simple",
    duration: float = 400.0,
    seed: int = 7,
) -> dict[str, object]:
    """Fig. 11: mean per-link load of SPEF vs PEFT in the flow-level simulator."""
    demands_by_case = table4_demands()
    if case not in demands_by_case:
        raise ValueError(f"unknown case {case!r}; expected one of {sorted(demands_by_case)}")
    if case == "simple":
        network = fig4_network()
    else:
        network = cernet2_network()
    demands = demands_by_case[case]

    spef = SPEFProtocol()
    peft = PEFT()
    spef_result = simulate_protocol(network, demands, spef, duration=duration, seed=seed)
    peft_result = simulate_protocol(network, demands, peft, duration=duration, seed=seed)
    return {
        "network": network,
        "demands": demands,
        "SPEF": spef_result,
        "PEFT": peft_result,
        "SPEF_used_links": len(spef_result.used_links()),
        "PEFT_used_links": len(peft_result.used_links()),
        "SPEF_load_std": spef_result.load_variation(),
        "PEFT_load_std": peft_result.load_variation(),
    }


# ----------------------------------------------------------------------
# Table V -- equal-cost path histogram on Cernet2
# ----------------------------------------------------------------------
def table5_equal_cost_paths(
    load_fractions: Sequence[float] = (0.6, 0.8, 1.0),
    instance: Instance | None = None,
) -> dict[str, dict[int, int]]:
    """Table V: number of pairs with i equal-cost paths, OSPF vs SPEF per load.

    ``load_fractions`` are fractions of the instance's saturation load (the
    paper's three Cernet2 load levels 0.13 / 0.17 / 0.21 are, in its own
    scaling procedure, increasing fractions of the saturating demand).
    """
    from ..metrics.paths import equal_cost_path_histogram, histogram_from_dags

    if instance is None:
        instance = standard_instances()["Cernet2"]
    network = instance.network
    results: dict[str, dict[int, int]] = {}
    results["OSPF"] = equal_cost_path_histogram(network, invcap_weights(network))
    for fraction in load_fractions:
        load = fraction * instance.saturation_load()
        demands = instance.at_load(load)
        solution = SPEFProtocol().fit(network, demands)
        results[f"SPEF@{load:.3f}"] = histogram_from_dags(solution.dags, network)
    return results


# ----------------------------------------------------------------------
# Fig. 12 -- convergence of Algorithms 1 and 2
# ----------------------------------------------------------------------
def fig12_convergence(
    instance: Instance | None = None,
    load: float | None = None,
    alg1_step_ratios: Sequence[float] = (2.0, 1.0, 0.5, 0.1),
    alg2_step_ratios: Sequence[float] = (2.0, 1.0, 0.5, 0.25),
    alg1_iterations: int = 600,
    alg2_iterations: int = 200,
) -> dict[str, dict[str, list[float]]]:
    """Fig. 12: dual objective evolution of Algorithm 1 and 2 for several steps."""
    if instance is None:
        instance = standard_instances()["Cernet2"]
    if load is None:
        load = 0.85 * instance.saturation_load()
    network = instance.network
    demands = instance.at_load(load)
    objective = LoadBalanceObjective.proportional()

    alg1_series: dict[str, list[float]] = {}
    best_result = None
    for ratio in alg1_step_ratios:
        result = compute_first_weights(
            network,
            demands,
            objective=objective,
            max_iterations=alg1_iterations,
            tolerance=0.0,
            step_ratio=ratio,
            record_history=True,
        )
        alg1_series[f"ratio={ratio:g}"] = result.dual_objective_history
        if ratio == 1.0:
            best_result = result
    if best_result is None:
        best_result = compute_first_weights(
            network, demands, objective=objective, max_iterations=alg1_iterations, tolerance=0.0
        )

    # Algorithm 2 convergence on top of the default first weights.
    te_solution = solve_optimal_te(TEProblem(network, demands, objective))
    weights = te_solution.link_weights
    target = te_solution.flows.aggregate()
    tolerance = 0.05 * float(np.mean(weights[weights > 0])) if np.any(weights > 0) else 1e-9
    dags = all_shortest_path_dags(network, demands.destinations(), weights, tolerance)
    alg2_series: dict[str, list[float]] = {}
    for ratio in alg2_step_ratios:
        result = compute_second_weights(
            network,
            demands,
            dags,
            target,
            max_iterations=alg2_iterations,
            tolerance=0.0,
            step_ratio=ratio,
            record_history=True,
        )
        alg2_series[f"ratio={ratio:g}"] = result.dual_objective_history
    return {"algorithm1": alg1_series, "algorithm2": alg2_series}


# ----------------------------------------------------------------------
# Scenario robustness sweeps (beyond the paper: failures and demand
# uncertainty, evaluated with the cached parallel batch runner)
# ----------------------------------------------------------------------
def scenario_robustness_sweep(
    network: Network,
    demands: TrafficMatrix,
    scenarios: Sequence[Scenario] | None = None,
    protocols: Sequence[object] = ("OSPF", "SPEF"),
    oracle: object | None = "MinMaxMLU",
    metric: str = "mlu",
    cvar_alpha: float = 0.1,
    runner: BatchRunner | None = None,
    include_baseline: bool = True,
) -> dict[str, object]:
    """Evaluate protocols across a scenario set and summarise robustness.

    The scenario-engine counterpart of the per-figure experiments above:
    instead of one (topology, matrix) point it sweeps a whole scenario set
    (defaulting to the baseline plus every single-trunk failure) through the
    cached parallel :class:`~repro.scenarios.runner.BatchRunner` and returns

    * ``results`` — the flat per-(scenario, protocol) result list,
    * ``summary`` — one robustness row per protocol (mean / median /
      worst-case / CVaR of ``metric``, plus regret when an oracle is given),
    * ``regret`` — per-scenario regret rows against ``oracle`` re-optimised
      for each perturbed instance (``None`` oracle skips both),
    * ``stats`` — the runner's cache/parallelism statistics.

    ``protocols`` and ``oracle`` accept registry names (``"OSPF"``) or
    :class:`~repro.scenarios.runner.ProtocolSpec` objects.
    """
    if scenarios is None:
        scenarios = single_link_failures(network)
    scenarios = list(scenarios)
    if include_baseline and not any(s.is_baseline() for s in scenarios):
        scenarios = [baseline_scenario()] + scenarios
    # The implicit runner is uncached: persistent caching is an explicit
    # opt-in (pass a BatchRunner), so casual calls can never be served
    # stale results from a previous code version.
    runner = runner or BatchRunner(cache_dir=False, max_workers=0)

    specs = [ProtocolSpec.of(p) for p in protocols]
    oracle_spec = ProtocolSpec.of(oracle) if oracle is not None else None
    all_specs = list(specs)
    if oracle_spec is not None and oracle_spec not in all_specs:
        all_specs.append(oracle_spec)

    results = runner.run(network, demands, scenarios, all_specs)
    per_scenario = len(scenarios)
    by_spec = {
        spec.display_name: results[i * per_scenario : (i + 1) * per_scenario]
        for i, spec in enumerate(all_specs)
    }
    protocol_results = [r for spec in specs for r in by_spec[spec.display_name]]
    oracle_results = by_spec[oracle_spec.display_name] if oracle_spec is not None else None

    summary = robustness_summary(
        protocol_results, metric=metric, cvar_alpha=cvar_alpha, oracle=oracle_results
    )
    regret = (
        regret_rows(protocol_results, oracle_results, metric=metric)
        if oracle_results is not None
        else []
    )
    return {
        "results": protocol_results,
        "oracle_results": oracle_results,
        "summary": summary,
        "regret": regret,
        "stats": runner.last_stats,
        "scenarios": scenarios,
    }


def abilene_failure_sweep(
    protocols: Sequence[object] = ("OSPF", "SPEF"),
    load_fraction: float = 0.5,
    runner: BatchRunner | None = None,
    instance: Instance | None = None,
) -> dict[str, object]:
    """The canonical demo sweep: every Abilene trunk failure, SPEF vs OSPF.

    Demands are scaled to ``load_fraction`` of the saturation load; the 0.5
    default is the highest regime where every single-trunk failure still
    leaves the demands routable (at the Fig. 9 level of 0.85, several
    failures make even re-optimised TE infeasible).  Pass a cached
    ``BatchRunner`` to have repeated calls served from its result cache.
    """
    if instance is None:
        instance = standard_instances()["Abilene"]
    demands = instance.at_fraction(load_fraction)
    return scenario_robustness_sweep(
        instance.network,
        demands,
        protocols=protocols,
        runner=runner,
    )


# ----------------------------------------------------------------------
# Fig. 13 -- impact of integer weights
# ----------------------------------------------------------------------
def fig13_integer_weights(
    instance: Instance, loads: Sequence[float] | None = None
) -> dict[str, list[float]]:
    """Fig. 13: normalised utility with fractional vs rounded integer weights."""
    loads = list(loads) if loads is not None else instance.fig10_loads()
    series: dict[str, list[float]] = {"load": [float(x) for x in loads]}
    for label, integer in (("Noninteger", False), ("Integer", True)):
        values = []
        for load in loads:
            demands = instance.at_load(load)
            config = SPEFConfig(integer_weights=integer)
            solution = SPEF(config=config).fit(instance.network, demands)
            values.append(solution.normalized_utility())
        series[label] = values
    return series
