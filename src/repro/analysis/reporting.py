"""Plain-text reporting helpers for experiment results.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that formatting in one place (aligned text tables
and simple numeric series), so benchmark modules stay declarative.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.4g}",
    title: str | None = None,
) -> str:
    """Render a list of dict rows as an aligned text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            if value == float("inf"):
                return "inf"
            if value == float("-inf"):
                return "-inf"
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(line[i]) for line in rendered)) for i, col in enumerate(columns)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in rendered:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[float] | None = None,
    x_label: str = "x",
    float_format: str = "{:.4g}",
    title: str | None = None,
) -> str:
    """Render several aligned numeric series (one column per series)."""
    names = list(series)
    if not names:
        return "(empty)"
    length = max(len(values) for values in series.values())
    rows = []
    for index in range(length):
        row: dict[str, object] = {}
        if x_values is not None and index < len(x_values):
            row[x_label] = x_values[index]
        else:
            row[x_label] = index
        for name in names:
            values = series[name]
            row[name] = float(values[index]) if index < len(values) else ""
        rows.append(row)
    return format_table(rows, columns=[x_label] + names, float_format=float_format, title=title)


def format_histogram(histogram: Mapping[int, int], title: str | None = None) -> str:
    """Render a ``{bucket: count}`` histogram as a compact table."""
    rows = [
        {"paths": bucket, "pairs": count}
        for bucket, count in sorted(histogram.items())
    ]
    return format_table(rows, columns=["paths", "pairs"], title=title)


def format_robustness_summary(
    rows: Sequence[Mapping[str, object]],
    title: str | None = "Robustness summary (per protocol)",
) -> str:
    """Render the per-protocol robustness rows of a scenario sweep.

    Accepts the ``summary`` rows produced by
    :func:`repro.scenarios.robustness.robustness_summary` (whatever metric
    they were built for) and renders them as an aligned table.
    """
    return format_table(rows, title=title)


def format_regret(
    rows: Sequence[Mapping[str, object]],
    worst: int = 10,
    title: str | None = None,
) -> str:
    """Render the ``worst`` highest-regret scenarios of a sweep.

    Regret rows come from :func:`repro.scenarios.robustness.regret_rows`;
    sorting puts the scenarios where the protocol leaves the most
    performance on the table (vs. a re-optimised oracle) on top.
    """
    ordered = sorted(rows, key=lambda row: float(row.get("regret", 0.0)), reverse=True)
    shown = ordered[: worst if worst else len(ordered)]
    if title is None:
        title = f"Worst {len(shown)} scenarios by regret vs. re-optimised oracle"
    return format_table(shown, title=title)


def print_report(*sections: str) -> None:
    """Print report sections separated by blank lines (captured by pytest -s)."""
    print()
    for section in sections:
        print(section)
        print()


def series_summary(values: Iterable[float]) -> dict[str, float]:
    """Min/mean/max of a numeric series (for quick assertions in benchmarks)."""
    data = [float(v) for v in values]
    if not data:
        return {"min": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "min": min(data),
        "mean": sum(data) / len(data),
        "max": max(data),
    }
