"""Diagnostics and suppression comments of the ``repro check`` lint pass.

A :class:`Diagnostic` is one finding, located as ``path:line:col`` the way
compilers locate errors.  A finding is silenced by an explicit
*suppression comment* on the same physical line::

    timestamp = datetime.now(timezone.utc)  # repro: allow[REP003] run metadata

Every suppression must name the rule(s) it silences —
``# repro: allow[REP001,REP003]`` — and must actually silence something:
a suppression that matches no diagnostic is itself reported as
:data:`UNUSED_SUPPRESSION` (``REP000``), so stale allows cannot
accumulate as the code underneath them changes.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

#: Pseudo-rule reporting suppression comments that silence nothing (or name
#: a rule the engine does not know).
UNUSED_SUPPRESSION = "REP000"

#: A suppression comment: ``allow[REP001]`` or ``allow[REP001,REP003]``
#: after the ``repro:`` marker, anchored at the start of the comment so
#: prose that merely *mentions* the syntax cannot suppress anything.
_ALLOW_PATTERN = re.compile(r"^#\s*repro:\s*allow\[([^\]]*)\]")

#: One rule identifier inside the ``allow[...]`` brackets.
_RULE_ID_PATTERN = re.compile(r"^REP\d{3}$")


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, ordered for deterministic reports."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The classic one-line compiler form ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One ``allow[...]`` entry: ``rule`` suppressed on physical ``line``."""

    path: str
    line: int
    rule: str


def parse_suppressions(source: str, path: str) -> list[Suppression]:
    """Extract every ``# repro: allow[...]`` entry from ``source``.

    A trailing comment suppresses findings on its own line; a comment that
    *stands alone* on its line suppresses findings on the next code line
    (so an allow plus its rationale can sit above a long statement).
    Malformed entries (an empty bracket, an identifier that is not
    ``REPxxx``) are preserved verbatim so the engine can report them as
    unused/unknown suppressions instead of silently ignoring them.
    """
    lines = source.splitlines()
    suppressions: list[Suppression] = []
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_PATTERN.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        before = lines[line - 1][: token.start[1]] if line <= len(lines) else ""
        if not before.strip():
            line = _next_code_line(lines, line)
        names = [name.strip() for name in match.group(1).split(",")]
        for name in names:
            suppressions.append(Suppression(path=path, line=line, rule=name))
    return suppressions


def _next_code_line(lines: list[str], comment_line: int) -> int:
    """The 1-based line a standalone comment on ``comment_line`` covers."""
    for offset in range(comment_line, len(lines)):
        stripped = lines[offset].strip()
        if stripped and not stripped.startswith("#"):
            return offset + 1
    return comment_line


def is_valid_rule_id(name: str) -> bool:
    """True when ``name`` is syntactically a ``REPxxx`` rule identifier."""
    return bool(_RULE_ID_PATTERN.match(name))
