"""The ``repro check`` rule set: the repo's invariants as AST checks.

Each rule encodes one invariant the test suite already relies on at
runtime — byte-stable exports, deterministic sweeps, locked session
state — so violations are caught at lint time, before they can ship:

========  ==============================================================
REP001    ``json.dumps``/``json.dump`` without ``sort_keys=True``
          (exported views must be byte-stable).
REP002    unseeded ``random`` use — global-RNG calls, ``random.Random()``
          or ``np.random.default_rng()`` without a seed (sweeps must be
          replayable bit-for-bit).
REP003    wall-clock reads (``time.time``, ``datetime.now``,
          ``datetime.today``) outside ``obs/`` (results must not depend
          on when they were produced).
REP004    ``sum()``/``min()``/``max()`` over a ``set``, and — in the
          metric/export layer — accumulation over ``dict.values()``
          (float accumulation order must be pinned).
REP005    session-state attribute writes in the serve daemon outside an
          ``async with <lock>`` scope (session state is only touched
          under per-session locks or in executor-dispatched sync code).
REP006    bare ``except:`` and ``except Exception: pass`` (daemon and
          worker loops must not swallow errors invisibly).
REP007    ``__all__`` drift — exported names that are undefined, or
          public defs missing from a curated ``__all__``.
========  ==============================================================

Every rule is one :class:`ast.NodeVisitor`; a rule never imports the
modules it checks, so the pass is side-effect free and dependency-light.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import ClassVar

from .diagnostics import Diagnostic

#: Path parts that mark test code (rules about production invariants do
#: not apply to tests, which are free to use wall clocks and ad-hoc JSON).
_TEST_PARTS = frozenset({"tests"})

#: numpy Generator constructors that take (and therefore can pin) a seed.
_SEEDED_NUMPY = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)

#: Wall-clock attribute reads: ``base.attr`` pairs that return "now".
_WALL_CLOCK_TIME_ATTRS = frozenset({"time", "time_ns"})
_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "today", "utcnow"})


def is_test_path(path: PurePath) -> bool:
    """True for files under ``tests/`` or named ``test_*.py``/``conftest.py``."""
    if _TEST_PARTS.intersection(path.parts):
        return True
    return path.name.startswith(("test_", "conftest"))


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as a string for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_set_expression(node: ast.expr) -> bool:
    """True for expressions that evaluate to a set (iteration order varies)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # Set algebra (``a | b``, ``a & b``, ``a - b``) over set operands.
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _values_call_attr(node: ast.expr) -> str | None:
    """``"values"``/``"keys"`` for ``<expr>.values()``-style calls, else ``None``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("values", "keys")
        and not node.args
        and not node.keywords
    ):
        return node.func.attr
    return None


class Rule(ast.NodeVisitor):
    """One lint rule: a reusable visitor producing :class:`Diagnostic` rows.

    Subclasses set :attr:`id`/:attr:`title`/:attr:`rationale` and override
    visitor methods; :meth:`check` drives one file through the visitor.
    """

    id: ClassVar[str] = "REP000"
    title: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def __init__(self) -> None:
        self._path = ""
        self._diagnostics: list[Diagnostic] = []

    def applies_to(self, path: PurePath) -> bool:
        """Whether the rule runs on ``path`` at all (default: non-test code)."""
        return not is_test_path(path)

    def check(self, tree: ast.Module, path: PurePath) -> list[Diagnostic]:
        """Run the rule over one parsed module."""
        self._path = str(path)
        self._diagnostics = []
        self._begin(tree, path)
        self.visit(tree)
        return self._diagnostics

    def _begin(self, tree: ast.Module, path: PurePath) -> None:
        """Per-file setup hook (import tracking, scope state)."""

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self._diagnostics.append(
            Diagnostic(path=self._path, line=line, col=col, rule=self.id, message=message)
        )


class JsonSortKeysRule(Rule):
    """REP001 — every JSON serialisation must pin its key order."""

    id = "REP001"
    title = "json.dumps/json.dump without sort_keys=True"
    rationale = (
        "exported views (BENCH_*.json, trace.jsonl, state dumps) are "
        "byte-stable only when key order is pinned"
    )

    def _begin(self, tree: ast.Module, path: PurePath) -> None:
        self._json_aliases = {"json"}
        self._bare_names: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "json":
                self._json_aliases.add(alias.asname or "json")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "json":
            for alias in node.names:
                if alias.name in ("dump", "dumps"):
                    self._bare_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_dump = (
            isinstance(func, ast.Attribute)
            and func.attr in ("dump", "dumps")
            and isinstance(func.value, ast.Name)
            and func.value.id in self._json_aliases
        ) or (isinstance(func, ast.Name) and func.id in self._bare_names)
        if is_dump and not self._sorts_keys(node):
            self.report(node, "json serialisation without sort_keys=True is not byte-stable")
        self.generic_visit(node)

    @staticmethod
    def _sorts_keys(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if keyword.arg is None:
                # A **kwargs splat may carry sort_keys; give it the benefit
                # of the doubt (the call site cannot be judged statically).
                return True
            if keyword.arg == "sort_keys":
                value = keyword.value
                if isinstance(value, ast.Constant):
                    return bool(value.value)
                return True  # dynamic value: assume the caller pins it
        return False


class SeededRandomRule(Rule):
    """REP002 — randomness must flow through an explicitly seeded generator."""

    id = "REP002"
    title = "unseeded random use (global RNG or seedless constructor)"
    rationale = (
        "sweeps and generators must replay bit-for-bit; only "
        "random.Random(seed) / np.random.default_rng(seed) are allowed"
    )

    def _begin(self, tree: ast.Module, path: PurePath) -> None:
        self._random_aliases: set[str] = set()
        self._numpy_aliases: set[str] = set()
        self._from_random: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._random_aliases.add(alias.asname or "random")
            elif alias.name == "numpy":
                self._numpy_aliases.add(alias.asname or "numpy")
            elif alias.name == "numpy.random" and alias.asname:
                self._numpy_aliases.add(alias.asname + "!module")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self._from_random.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        seeded = bool(node.args or node.keywords)
        # from random import choice / Random
        if isinstance(func, ast.Name) and func.id in self._from_random:
            if func.id in ("Random", "SystemRandom") and seeded:
                return
            self.report(node, f"unseeded stdlib random call {func.id!r}")
            return
        if not isinstance(func, ast.Attribute):
            return
        dotted = _dotted_name(func)
        if dotted is None:
            return
        parts = dotted.split(".")
        # random.<anything>: the module-global RNG (or a seedless Random()).
        if parts[0] in self._random_aliases and len(parts) == 2:
            if parts[1] in ("Random", "SystemRandom") and seeded:
                return
            self.report(node, f"unseeded stdlib random call {dotted!r}")
            return
        # numpy legacy global RNG (np.random.rand & co.) and seedless
        # default_rng() / Generator constructions.
        is_np_random = (
            len(parts) >= 2 and parts[0] in self._numpy_aliases and parts[-2] == "random"
        ) or (len(parts) == 2 and (parts[0] + "!module") in self._numpy_aliases)
        if is_np_random:
            terminal = parts[-1]
            if terminal in _SEEDED_NUMPY:
                if not seeded:
                    self.report(node, f"{dotted}() without a seed is not reproducible")
                return
            self.report(node, f"legacy numpy global RNG call {dotted!r}")


class WallClockRule(Rule):
    """REP003 — results must not read the wall clock."""

    id = "REP003"
    title = "wall-clock read (time.time, datetime.now, datetime.today)"
    rationale = (
        "recorded results must be independent of when they were produced; "
        "monotonic timing uses time.perf_counter, timestamps live in obs/ "
        "or carry an explicit allow"
    )

    def applies_to(self, path: PurePath) -> bool:
        if is_test_path(path):
            return False
        # The observability layer is the one place wall-clock timestamps
        # belong (trace metadata); everywhere else needs an explicit allow.
        return "obs" not in path.parts

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            terminal = parts[-1]
            base = parts[-2] if len(parts) >= 2 else ""
            if terminal in _WALL_CLOCK_TIME_ATTRS and base == "time":
                self.report(node, f"wall-clock read {dotted}()")
            elif terminal in _WALL_CLOCK_DATETIME_ATTRS and base in ("datetime", "date"):
                self.report(node, f"wall-clock read {dotted}()")
        self.generic_visit(node)


class OrderedAccumulationRule(Rule):
    """REP004 — float accumulation must run in a pinned order."""

    id = "REP004"
    title = "accumulation over an unordered (or unpinned-order) iterable"
    rationale = (
        "sum() over a set depends on hash order; in the metric/export "
        "layer even dict.values() order must be made explicit (sort first)"
    )

    #: Path parts marking the metric/export layer, where the stricter
    #: dict-order checks apply on top of the set checks.
    METRIC_EXPORT_PARTS: ClassVar[frozenset[str]] = frozenset({"metrics", "results"})

    def _begin(self, tree: ast.Module, path: PurePath) -> None:
        self._strict = bool(self.METRIC_EXPORT_PARTS.intersection(path.parts))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("sum", "min", "max") and node.args:
            arg = node.args[0]
            target = arg
            if isinstance(arg, ast.GeneratorExp) and arg.generators:
                target = arg.generators[0].iter
            values_attr = _values_call_attr(target)
            if _is_set_expression(target):
                self.report(
                    node,
                    f"{func.id}() over a set: iteration order (and float "
                    "accumulation) is not pinned",
                )
            elif self._strict and values_attr is not None:
                self.report(
                    node,
                    f"{func.id}() over dict.{values_attr}() in the "
                    "metric/export layer: sort the items first to pin "
                    "accumulation order",
                )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._strict and _is_set_expression(node.iter):
            self.report(node, "iteration over a set in the metric/export layer")
        self.generic_visit(node)


class SessionLockRule(Rule):
    """REP005 — daemon coroutines only touch session state under a lock."""

    id = "REP005"
    title = "session-state write outside an `async with <lock>` scope"
    rationale = (
        "the serve daemon's event loop must never mutate session state "
        "directly; state work runs in the executor behind a per-session lock"
    )

    def applies_to(self, path: PurePath) -> bool:
        # The invariant is specific to the serve daemon module.
        return path.name == "daemon.py" and not is_test_path(path)

    def _begin(self, tree: ast.Module, path: PurePath) -> None:
        self._async_depth = 0
        self._lock_depth = 0

    # -- scope tracking -------------------------------------------------
    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._async_depth += 1
        self.generic_visit(node)
        self._async_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Sync functions are executor-dispatched (or thread-side) scope.
        async_depth, self._async_depth = self._async_depth, 0
        self.generic_visit(node)
        self._async_depth = async_depth

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        holds_lock = any(self._mentions_lock(item.context_expr) for item in node.items)
        if holds_lock:
            self._lock_depth += 1
        self.generic_visit(node)
        if holds_lock:
            self._lock_depth -= 1

    @staticmethod
    def _mentions_lock(node: ast.expr) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and "lock" in child.id.lower():
                return True
            if isinstance(child, ast.Attribute) and "lock" in child.attr.lower():
                return True
        return False

    # -- the write checks ----------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(node, target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node, node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node, node.target)
        self.generic_visit(node)

    def _check_target(self, node: ast.AST, target: ast.expr) -> None:
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        if self._async_depth == 0 or self._lock_depth > 0:
            return
        if self._is_session_object(target.value):
            self.report(
                node,
                "session state written on the event loop outside an "
                "`async with <lock>` scope",
            )

    @classmethod
    def _is_session_object(cls, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return "session" in node.id.lower() or node.id.lower() == "sess"
        if isinstance(node, ast.Attribute):
            return "session" in node.attr.lower()
        if isinstance(node, ast.Subscript):
            return cls._is_session_object(node.value)
        if isinstance(node, ast.Call):
            # e.g. self._session_for(key).attr = ...
            return cls._is_session_object(node.func)
        return False


class ExceptionDisciplineRule(Rule):
    """REP006 — no invisible error swallowing in long-running code."""

    id = "REP006"
    title = "bare `except:` or `except Exception: pass`"
    rationale = (
        "daemon and worker loops that swallow everything hide real "
        "failures; catch specific exceptions or at least record the error"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare `except:` catches SystemExit/KeyboardInterrupt too")
        elif self._catches_everything(node.type) and self._is_silent(node.body):
            self.report(
                node,
                "`except Exception: pass` swallows every failure invisibly",
            )
        self.generic_visit(node)

    @staticmethod
    def _catches_everything(node: ast.expr) -> bool:
        names = []
        if isinstance(node, ast.Tuple):
            names = [_dotted_name(elt) for elt in node.elts]
        else:
            names = [_dotted_name(node)]
        return any(name in ("Exception", "BaseException") for name in names)

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        for statement in body:
            if isinstance(statement, ast.Pass):
                continue
            if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
                continue  # a docstring/Ellipsis is as silent as pass
            return False
        return True


class AllExportsRule(Rule):
    """REP007 — a curated ``__all__`` must match the module it curates."""

    id = "REP007"
    title = "__all__ drift (undefined export or unexported public def)"
    rationale = (
        "a curated __all__ is the module's public contract: every listed "
        "name must exist, every public def/class must be listed (or made "
        "private)"
    )

    def check(self, tree: ast.Module, path: PurePath) -> list[Diagnostic]:
        self._path = str(path)
        self._diagnostics = []
        exported = self._exported_names(tree)
        if exported is None:
            return []  # no curated __all__: nothing to drift from
        names, elements = exported
        bound = self._bound_names(tree)
        for name, element in zip(names, elements, strict=True):
            if name not in bound:
                self.report(element, f"__all__ exports undefined name {name!r}")
        listed = set(names)
        for statement in self._top_level_statements(tree):
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                public = not statement.name.startswith("_")
                if public and statement.name not in listed:
                    self.report(
                        statement,
                        f"public {statement.name!r} is missing from __all__ "
                        "(export it or rename it _private)",
                    )
        return self._diagnostics

    @staticmethod
    def _top_level_statements(tree: ast.Module) -> list[ast.stmt]:
        """Module-level statements, looking through `if`/`try` guards."""
        statements: list[ast.stmt] = []
        queue = list(tree.body)
        while queue:
            statement = queue.pop(0)
            statements.append(statement)
            if isinstance(statement, ast.If):
                queue.extend(statement.body)
                queue.extend(statement.orelse)
            elif isinstance(statement, ast.Try):
                queue.extend(statement.body)
                queue.extend(statement.orelse)
                queue.extend(statement.finalbody)
                for handler in statement.handlers:
                    queue.extend(handler.body)
        return statements

    def _exported_names(
        self, tree: ast.Module
    ) -> tuple[list[str], list[ast.expr]] | None:
        for statement in self._top_level_statements(tree):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target, value = statement.targets[0], statement.value
            elif isinstance(statement, ast.AnnAssign):
                target, value = statement.target, statement.value
            if (
                isinstance(target, ast.Name)
                and target.id == "__all__"
                and isinstance(value, (ast.List, ast.Tuple))
            ):
                names: list[str] = []
                elements: list[ast.expr] = []
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        names.append(element.value)
                        elements.append(element)
                return names, elements
        return None

    def _bound_names(self, tree: ast.Module) -> set[str]:
        bound: set[str] = {"__version__", "__all__", "__doc__", "__name__"}
        for statement in self._top_level_statements(tree):
            if isinstance(statement, ast.Import):
                for alias in statement.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(statement, ast.ImportFrom):
                for alias in statement.names:
                    if alias.name != "*":
                        bound.add(alias.asname or alias.name)
            elif isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                bound.add(statement.name)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    bound.update(self._target_names(target))
            elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
                bound.update(self._target_names(statement.target))
            elif isinstance(statement, (ast.For, ast.AsyncFor)):
                bound.update(self._target_names(statement.target))
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                for item in statement.items:
                    if item.optional_vars is not None:
                        bound.update(self._target_names(item.optional_vars))
        return bound

    @classmethod
    def _target_names(cls, target: ast.expr) -> set[str]:
        if isinstance(target, ast.Name):
            return {target.id}
        if isinstance(target, (ast.Tuple, ast.List)):
            names: set[str] = set()
            for element in target.elts:
                names.update(cls._target_names(element))
            return names
        if isinstance(target, ast.Starred):
            return cls._target_names(target.value)
        return set()


#: The shipped rule set, in rule-id order.
ALL_RULES: tuple[Rule, ...] = (
    JsonSortKeysRule(),
    SeededRandomRule(),
    WallClockRule(),
    OrderedAccumulationRule(),
    SessionLockRule(),
    ExceptionDisciplineRule(),
    AllExportsRule(),
)

RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
