"""Developer tooling: the ``repro check`` static-analysis pass.

A dependency-light AST lint engine enforcing the repo's determinism,
byte-stability and concurrency invariants (rules REP001–REP007), with
``# repro: allow[REPxxx]`` suppression comments and an unused-suppression
check.  Run it as ``repro check [--rule REPxxx] [--format table|json]
[paths...]``; see :mod:`repro.devtools.rules` for what each rule means.
"""

from .diagnostics import UNUSED_SUPPRESSION, Diagnostic, Suppression
from .engine import (
    CheckError,
    CheckResult,
    check_paths,
    check_source,
    format_json,
    format_rule_listing,
    format_table,
    iter_python_files,
)
from .rules import ALL_RULES, RULES_BY_ID, Rule

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Rule",
    "CheckError",
    "CheckResult",
    "Diagnostic",
    "Suppression",
    "UNUSED_SUPPRESSION",
    "check_paths",
    "check_source",
    "format_json",
    "format_rule_listing",
    "format_table",
    "iter_python_files",
]
