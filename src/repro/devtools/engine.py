"""The ``repro check`` engine: run the rule set, honour suppressions.

One call — :func:`check_paths` — walks the given files/directories,
parses each Python file once, runs every applicable rule over the tree,
applies ``# repro: allow[REPxxx]`` suppression comments, and reports
*unused* suppressions as ``REP000`` findings so stale allows are flushed
out the same way violations are.

The engine always runs the full rule set per file (a ``--rule`` filter
only narrows what is *reported*): suppression accounting would otherwise
misreport an allow as unused just because its rule was filtered out.
"""

from __future__ import annotations

import ast
import json
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path, PurePath

from .diagnostics import (
    UNUSED_SUPPRESSION,
    Diagnostic,
    Suppression,
    is_valid_rule_id,
    parse_suppressions,
)
from .rules import ALL_RULES, RULES_BY_ID, Rule

#: Directories never descended into when expanding path arguments.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache"})


class CheckError(ValueError):
    """Raised for unusable inputs (missing paths, unparseable files)."""


@dataclass
class CheckResult:
    """Everything one ``repro check`` run produced."""

    diagnostics: list[Diagnostic]
    files_checked: int
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise CheckError(f"no such file or directory: {path}")
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIPPED_DIRS.intersection(candidate.parts):
                    seen.add(candidate)
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(seen)


def check_source(
    source: str,
    path: str | PurePath,
    *,
    rules: Sequence[Rule] = ALL_RULES,
) -> tuple[list[Diagnostic], int]:
    """Lint one in-memory module; returns ``(diagnostics, suppressed_count)``.

    Diagnostics include unused-suppression (``REP000``) findings; rows
    silenced by a valid same-line ``allow`` are dropped (and counted).
    """
    pure = PurePath(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise CheckError(f"{path}:{exc.lineno or 1}: syntax error: {exc.msg}") from None
    raw: list[Diagnostic] = []
    for rule in rules:
        if rule.applies_to(pure):
            raw.extend(rule.check(tree, pure))
    suppressions = parse_suppressions(source, str(path))
    active, suppressed = _apply_suppressions(raw, suppressions, str(path))
    return sorted(active), suppressed


def _apply_suppressions(
    diagnostics: Iterable[Diagnostic],
    suppressions: Sequence[Suppression],
    path: str,
) -> tuple[list[Diagnostic], int]:
    allowed: dict[tuple[int, str], Suppression] = {}
    used: set[tuple[int, str]] = set()
    for suppression in suppressions:
        allowed[(suppression.line, suppression.rule)] = suppression
    active: list[Diagnostic] = []
    suppressed = 0
    for diagnostic in diagnostics:
        key = (diagnostic.line, diagnostic.rule)
        if key in allowed:
            used.add(key)
            suppressed += 1
        else:
            active.append(diagnostic)
    for key, suppression in allowed.items():
        if key in used:
            continue
        if not is_valid_rule_id(suppression.rule) or suppression.rule not in RULES_BY_ID:
            message = f"suppression names unknown rule {suppression.rule!r}"
        else:
            message = (
                f"unused suppression: allow[{suppression.rule}] silences "
                "nothing on this line"
            )
        active.append(
            Diagnostic(
                path=path,
                line=suppression.line,
                col=0,
                rule=UNUSED_SUPPRESSION,
                message=message,
            )
        )
    return active, suppressed


def check_paths(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[Rule] = ALL_RULES,
    rule_filter: Sequence[str] | None = None,
) -> CheckResult:
    """Lint every Python file under ``paths``.

    ``rule_filter`` narrows the *reported* rules (``REP000`` unused
    suppressions are always reported unless a filter is active and
    excludes them); the full rule set still runs so suppression
    accounting stays correct.
    """
    if rule_filter is not None:
        unknown = [
            rule
            for rule in rule_filter
            if rule != UNUSED_SUPPRESSION and rule not in RULES_BY_ID
        ]
        if unknown:
            known = ", ".join(sorted(RULES_BY_ID))
            raise CheckError(
                f"unknown rule(s) {', '.join(sorted(unknown))} "
                f"(known: {UNUSED_SUPPRESSION}, {known})"
            )
    diagnostics: list[Diagnostic] = []
    suppressed_total = 0
    files = iter_python_files(paths)
    for path in files:
        source = path.read_text(encoding="utf-8")
        rows, suppressed = check_source(source, path, rules=rules)
        diagnostics.extend(rows)
        suppressed_total += suppressed
    if rule_filter is not None:
        wanted = set(rule_filter)
        diagnostics = [d for d in diagnostics if d.rule in wanted]
    return CheckResult(
        diagnostics=sorted(diagnostics),
        files_checked=len(files),
        suppressed=suppressed_total,
    )


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------
def format_table(result: CheckResult) -> str:
    """The human report: one ``path:line:col: RULE message`` row per finding."""
    lines = [diagnostic.render() for diagnostic in result.diagnostics]
    summary = (
        f"{len(result.diagnostics)} finding(s) in {result.files_checked} file(s)"
        f" ({result.suppressed} suppressed)"
    )
    if lines:
        return "\n".join([*lines, summary])
    return summary


def format_json(result: CheckResult) -> str:
    """The machine report (sorted keys, trailing newline: byte-stable)."""
    payload = {
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "findings": [
            {
                "path": diagnostic.path,
                "line": diagnostic.line,
                "col": diagnostic.col,
                "rule": diagnostic.rule,
                "message": diagnostic.message,
            }
            for diagnostic in result.diagnostics
        ],
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def format_rule_listing() -> str:
    """The ``--list-rules`` table (also the README's source of truth)."""
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"        {rule.rationale}")
    lines.append(
        f"{UNUSED_SUPPRESSION}  unused `# repro: allow[...]` suppression "
        "(reported automatically)"
    )
    return "\n".join(lines)
