"""Synthetic topology generators: GT-ITM-style 2-level hierarchies and random graphs.

The paper evaluates on the same synthetic families as Fortz and Thorup [16]:

* **2-level hierarchical networks** generated with GT-ITM: a backbone of
  "transit" nodes connected by long-distance links of capacity 5, each
  attached to a local cluster of "stub" nodes connected by local-access links
  of capacity 1 (Hier50a with 222 directional links, Hier50b with 152).

* **Random networks** where each node pair is connected with a constant
  probability and every link has capacity 1 (Rand50a/242, Rand50b/230,
  Rand100/392 directional links).

GT-ITM itself is not redistributable here, so :func:`hierarchical_network`
implements the same construction with a seeded RNG; the generators accept a
target number of directional links and keep adding (or trimming) random
candidate edges until the target is met, so the paper's exact link counts are
reproduced.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..network.graph import Network

#: Capacities used by the Fortz-Thorup synthetic families.
LOCAL_ACCESS_CAPACITY = 1.0
LONG_DISTANCE_CAPACITY = 5.0
RANDOM_LINK_CAPACITY = 1.0


def _spanning_edges(nodes: list[int], rng: np.random.Generator) -> list[tuple[int, int]]:
    """A random spanning tree over ``nodes`` (guarantees connectivity)."""
    edges: list[tuple[int, int]] = []
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    for i in range(1, len(shuffled)):
        j = int(rng.integers(0, i))
        edges.append((shuffled[j], shuffled[i]))
    return edges


def _fill_to_target(
    existing: list[tuple[int, int]],
    candidates: list[tuple[int, int]],
    target_edges: int,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Add random candidate edges until ``target_edges`` bidirectional edges exist."""
    chosen = list(existing)
    chosen_set = {frozenset(e) for e in chosen}
    pool = [e for e in candidates if frozenset(e) not in chosen_set]
    rng.shuffle(pool)
    for edge in pool:
        if len(chosen) >= target_edges:
            break
        chosen.append(edge)
        chosen_set.add(frozenset(edge))
    return chosen


def random_network(
    num_nodes: int,
    num_directed_links: int,
    capacity: float = RANDOM_LINK_CAPACITY,
    seed: int = 0,
    name: str | None = None,
) -> Network:
    """A connected random topology with exactly ``num_directed_links`` links.

    Every link is bidirectional (so ``num_directed_links`` must be even) and
    has the same capacity, matching the Fortz-Thorup random family.
    """
    if num_directed_links % 2 != 0:
        raise ValueError("num_directed_links must be even (links are bidirectional)")
    target_edges = num_directed_links // 2
    max_edges = num_nodes * (num_nodes - 1) // 2
    if target_edges < num_nodes - 1 or target_edges > max_edges:
        raise ValueError(
            f"cannot build a connected graph on {num_nodes} nodes with {target_edges} edges"
        )
    rng = np.random.default_rng(seed)
    nodes = list(range(1, num_nodes + 1))
    edges = _spanning_edges(nodes, rng)
    candidates = [(u, v) for u, v in itertools.combinations(nodes, 2)]
    edges = _fill_to_target(edges, candidates, target_edges, rng)
    net = Network(name=name or f"Rand{num_nodes}")
    for node in nodes:
        net.add_node(node)
    for u, v in edges:
        net.add_duplex_link(u, v, capacity)
    return net


def hierarchical_network(
    num_nodes: int = 50,
    num_directed_links: int = 222,
    num_transit: int = 10,
    local_capacity: float = LOCAL_ACCESS_CAPACITY,
    long_capacity: float = LONG_DISTANCE_CAPACITY,
    seed: int = 0,
    name: str | None = None,
) -> Network:
    """A GT-ITM style 2-level hierarchy (transit backbone + stub clusters).

    Parameters
    ----------
    num_transit:
        Number of backbone (transit) nodes; the remaining nodes are stubs
        assigned round-robin to transit domains.
    num_directed_links:
        Total number of directional links to generate (e.g. 222 for Hier50a,
        152 for Hier50b).
    """
    if num_directed_links % 2 != 0:
        raise ValueError("num_directed_links must be even (links are bidirectional)")
    if num_transit >= num_nodes:
        raise ValueError("num_transit must be smaller than num_nodes")
    target_edges = num_directed_links // 2
    rng = np.random.default_rng(seed)
    transit = list(range(1, num_transit + 1))
    stubs = list(range(num_transit + 1, num_nodes + 1))

    # Backbone: spanning tree over transit nodes plus random extra long links.
    backbone_edges = _spanning_edges(transit, rng)
    backbone_candidates = [(u, v) for u, v in itertools.combinations(transit, 2)]
    backbone_target = min(len(backbone_candidates), max(len(backbone_edges), num_transit * 2))
    backbone_edges = _fill_to_target(backbone_edges, backbone_candidates, backbone_target, rng)
    backbone_set = {frozenset(e) for e in backbone_edges}

    # Stub attachment: each stub connects to its transit domain head, then to
    # random peers inside the same domain.
    domain_of = {stub: transit[i % num_transit] for i, stub in enumerate(stubs)}
    access_edges: list[tuple[int, int]] = [(domain_of[stub], stub) for stub in stubs]
    access_candidates: list[tuple[int, int]] = []
    for stub in stubs:
        head = domain_of[stub]
        peers = [s for s in stubs if domain_of[s] == head and s != stub]
        access_candidates.extend((stub, peer) for peer in peers if stub < peer)
        access_candidates.extend(
            (other_head, stub) for other_head in transit if other_head != head
        )
    edges = backbone_edges + access_edges
    if len(edges) > target_edges:
        raise ValueError(
            f"target of {target_edges} edges is below the {len(edges)} needed for connectivity"
        )
    edges = _fill_to_target(edges, access_candidates, target_edges, rng)

    net = Network(name=name or f"Hier{num_nodes}")
    for node in transit + stubs:
        net.add_node(node)
    for u, v in edges:
        is_backbone = frozenset((u, v)) in backbone_set or (u in transit and v in transit)
        capacity = long_capacity if is_backbone else local_capacity
        net.add_duplex_link(u, v, capacity)
    return net


# ----------------------------------------------------------------------
# The named instances from Table III
# ----------------------------------------------------------------------
def hier50a(seed: int = 11) -> Network:
    """Hier50a: 50 nodes, 222 directional links (2-level hierarchy)."""
    return hierarchical_network(50, 222, num_transit=10, seed=seed, name="Hier50a")


def hier50b(seed: int = 12) -> Network:
    """Hier50b: 50 nodes, 152 directional links (2-level hierarchy)."""
    return hierarchical_network(50, 152, num_transit=10, seed=seed, name="Hier50b")


def rand50a(seed: int = 21) -> Network:
    """Rand50a: 50 nodes, 242 directional links, unit capacities."""
    return random_network(50, 242, seed=seed, name="Rand50a")


def rand50b(seed: int = 22) -> Network:
    """Rand50b: 50 nodes, 230 directional links, unit capacities."""
    return random_network(50, 230, seed=seed, name="Rand50b")


def rand100(seed: int = 23) -> Network:
    """Rand100: 100 nodes, 392 directional links, unit capacities."""
    return random_network(100, 392, seed=seed, name="Rand100")


def rand500(seed: int = 25) -> Network:
    """Rand500: 500 nodes, 2000 directional links, unit capacities.

    The Rocketfuel-scale stress instance: mean directed degree 4.0 puts it
    in the dense class of
    :func:`repro.online.dspt.tuned_max_affected_fraction`, so the online
    controller's incremental hot path is exercised at 500-node scale.
    """
    return random_network(500, 2000, seed=seed, name="Rand500")
