"""Real backbone topologies used in the evaluation: Abilene and Cernet2.

* **Abilene** (Internet2): 11 PoPs, 14 bidirectional OC-192 links, i.e. 28
  directional links of 10 Gbps -- exactly the node/link counts of Table III.
  The adjacency is the well-known public Abilene map.

* **Cernet2** (the Chinese education/research IPv6 backbone): 20 PoPs and 22
  bidirectional links (44 directional), of which 4 directional backbone links
  run at 10 Gbps and the rest at 2.5 Gbps.  The paper's Fig. 8(b) only shows
  numbered nodes, so the adjacency below is our reconstruction of the public
  CERNET2 map with the same node count, link count and capacity mix; the
  4 bold 10 Gbps links form the Beijing-Wuhan-Guangzhou / Beijing-Shanghai
  spine.  Experiments only depend on these aggregate properties.

Capacities are expressed in Gbps.
"""

from __future__ import annotations


from ..network.graph import Network

#: Abilene PoPs in the paper's customary numbering (1-11).
ABILENE_NODES: dict[int, str] = {
    1: "Seattle",
    2: "Sunnyvale",
    3: "Denver",
    4: "Los Angeles",
    5: "Houston",
    6: "Kansas City",
    7: "Indianapolis",
    8: "Atlanta",
    9: "Chicago",
    10: "Washington DC",
    11: "New York",
}

#: Bidirectional Abilene links (14 of them -> 28 directional).
ABILENE_EDGES: list[tuple[int, int]] = [
    (1, 2),   # Seattle - Sunnyvale
    (1, 3),   # Seattle - Denver
    (2, 4),   # Sunnyvale - Los Angeles
    (2, 3),   # Sunnyvale - Denver
    (4, 5),   # Los Angeles - Houston
    (3, 6),   # Denver - Kansas City
    (5, 6),   # Houston - Kansas City
    (5, 8),   # Houston - Atlanta
    (6, 7),   # Kansas City - Indianapolis
    (7, 8),   # Indianapolis - Atlanta
    (8, 10),  # Atlanta - Washington DC
    (7, 9),   # Indianapolis - Chicago
    (9, 11),  # Chicago - New York
    (10, 11), # Washington DC - New York
]

#: Capacity of every Abilene link, in Gbps.
ABILENE_CAPACITY_GBPS = 10.0


def abilene_network() -> Network:
    """The Abilene backbone: 11 nodes, 28 directional 10 Gbps links."""
    net = Network(name="Abilene")
    for node in ABILENE_NODES:
        net.add_node(node)
    for u, v in ABILENE_EDGES:
        net.add_duplex_link(u, v, ABILENE_CAPACITY_GBPS)
    return net


#: Cernet2 PoPs (our reconstruction), numbered 1-20 as in Fig. 8(b).
CERNET2_NODES: dict[int, str] = {
    1: "Beijing",
    2: "Tianjin",
    3: "Shijiazhuang",
    4: "Jinan",
    5: "Zhengzhou",
    6: "Xian",
    7: "Lanzhou",
    8: "Chengdu",
    9: "Chongqing",
    10: "Wuhan",
    11: "Changsha",
    12: "Guangzhou",
    13: "Xiamen",
    14: "Hangzhou",
    15: "Shanghai",
    16: "Nanjing",
    17: "Hefei",
    18: "Shenyang",
    19: "Changchun",
    20: "Harbin",
}

#: Bidirectional Cernet2 links with True marking the 10 Gbps spine edges
#: (the paper: "the capacity of 4 links marked with bold lines is 10Gbps",
#: i.e. 4 directional links = 2 bidirectional spine edges).
CERNET2_EDGES: list[tuple[int, int, bool]] = [
    (1, 2, False),    # Beijing - Tianjin
    (1, 3, False),    # Beijing - Shijiazhuang
    (1, 4, False),    # Beijing - Jinan
    (1, 18, False),   # Beijing - Shenyang
    (1, 10, True),    # Beijing - Wuhan (10G spine)
    (1, 15, True),    # Beijing - Shanghai (10G spine)
    (18, 19, False),  # Shenyang - Changchun
    (19, 20, False),  # Changchun - Harbin
    (2, 4, False),    # Tianjin - Jinan
    (3, 5, False),    # Shijiazhuang - Zhengzhou
    (4, 16, False),   # Jinan - Nanjing
    (5, 6, False),    # Zhengzhou - Xian
    (6, 7, False),    # Xian - Lanzhou
    (6, 8, False),    # Xian - Chengdu
    (8, 9, False),    # Chengdu - Chongqing
    (9, 11, False),   # Chongqing - Changsha
    (10, 5, False),   # Wuhan - Zhengzhou
    (10, 11, False),  # Wuhan - Changsha
    (11, 12, False),  # Changsha - Guangzhou
    (12, 13, False),  # Guangzhou - Xiamen
    (13, 14, False),  # Xiamen - Hangzhou
    (14, 15, False),  # Hangzhou - Shanghai
    (15, 16, False),  # Shanghai - Nanjing
    (16, 17, False),  # Nanjing - Hefei
    (17, 10, False),  # Hefei - Wuhan
]

#: Capacities of the two Cernet2 link classes, in Gbps.
CERNET2_BACKBONE_GBPS = 10.0
CERNET2_REGIONAL_GBPS = 2.5


def cernet2_network() -> Network:
    """The Cernet2 backbone reconstruction: 20 nodes, 44+ directional links.

    Note: the edge list above yields 25 bidirectional edges (50 directional
    links).  To match the paper's Table III exactly (44 directional links =
    22 bidirectional edges) we drop the three least-connected redundant
    regional edges; see :data:`CERNET2_DROPPED_EDGES`.
    """
    net = Network(name="Cernet2")
    for node in CERNET2_NODES:
        net.add_node(node)
    for u, v, is_backbone in cernet2_edges():
        capacity = CERNET2_BACKBONE_GBPS if is_backbone else CERNET2_REGIONAL_GBPS
        net.add_duplex_link(u, v, capacity)
    return net


#: Redundant regional edges removed to match the 44-directional-link count of
#: Table III (they parallel existing spine detours).
CERNET2_DROPPED_EDGES: list[tuple[int, int]] = [(2, 4), (3, 5), (9, 11)]


def cernet2_edges() -> list[tuple[int, int, bool]]:
    """The 22 bidirectional Cernet2 edges actually used (after the drops)."""
    dropped = set(CERNET2_DROPPED_EDGES)
    return [
        (u, v, is_backbone)
        for u, v, is_backbone in CERNET2_EDGES
        if (u, v) not in dropped and (v, u) not in dropped
    ]


def cernet2_backbone_links() -> list[tuple[int, int]]:
    """The 4 directional 10 Gbps links (both directions of the 2 spine edges)."""
    result: list[tuple[int, int]] = []
    for u, v, is_backbone in cernet2_edges():
        if is_backbone:
            result.append((u, v))
            result.append((v, u))
    return result
