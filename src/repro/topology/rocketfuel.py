"""Rocketfuel-style ISP topology support.

Rocketfuel (Spring et al., SIGCOMM 2002) published inferred router-level maps
of real ISPs; follow-up TE papers (including Fortz-Thorup-style evaluations)
commonly use the PoP-level versions with inferred weights.  This module
provides

* a parser for the simple whitespace-separated edge-list format used by the
  public ``*.cch``-derived PoP files (``src dst [capacity] [weight]``), and
* :func:`synthetic_rocketfuel` -- a seeded generator that produces networks
  with the size/degree profile of the commonly used Rocketfuel ASes, for
  experiments on "Rocketfuel-like" topologies when the original files are not
  distributed with the package.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..network.graph import Network
from .generators import random_network

#: Approximate PoP-level sizes of the classic Rocketfuel ASes
#: (AS number -> (name, nodes, directed links)).
ROCKETFUEL_PROFILES: dict[int, tuple[str, int, int]] = {
    1221: ("Telstra", 44, 176),
    1239: ("Sprint", 52, 168),
    1755: ("Ebone", 23, 76),
    3257: ("Tiscali", 41, 174),
    3967: ("Exodus", 21, 72),
    6461: ("Abovenet", 19, 68),
}

#: Approximate *router-level* sizes of the reduced Rocketfuel backbone maps
#: (AS number -> (name, nodes, directed links)).  These are the
#: several-hundred-node instances the incremental hot path has to scale to;
#: :func:`synthetic_rocketfuel` selects them with ``level="router"``.
ROCKETFUEL_ROUTER_PROFILES: dict[int, tuple[str, int, int]] = {
    1221: ("Telstra", 104, 604),
    1239: ("Sprint", 315, 1944),
    1755: ("Ebone", 87, 644),
    3257: ("Tiscali", 161, 656),
    3967: ("Exodus", 79, 294),
    6461: ("Abovenet", 138, 744),
}


def parse_rocketfuel(
    path: str | Path,
    default_capacity: float = 10.0,
    name: str | None = None,
    duplex: bool = True,
) -> Network:
    """Parse a whitespace-separated edge list into a :class:`Network`.

    Each non-comment line is ``src dst [capacity]``; lines starting with ``#``
    are ignored.  Node identifiers are kept as strings.  With ``duplex=True``
    (the default) each line adds both directions unless the reverse direction
    appears explicitly later in the file.
    """
    path = Path(path)
    net = Network(name=name or path.stem)
    pending: list[tuple[str, str, float]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed rocketfuel line: {line!r}")
            src, dst = parts[0], parts[1]
            capacity = float(parts[2]) if len(parts) > 2 else default_capacity
            pending.append((src, dst, capacity))
    seen = {(s, d) for s, d, _ in pending}
    for src, dst, capacity in pending:
        if not net.has_link(src, dst):
            net.add_link(src, dst, capacity)
        if duplex and (dst, src) not in seen and not net.has_link(dst, src):
            net.add_link(dst, src, capacity)
    return net


def write_rocketfuel(network: Network, path: str | Path) -> None:
    """Write a network in the simple edge-list format understood by the parser."""
    path = Path(path)
    lines = [f"# {network.name}: {network.num_nodes} nodes, {network.num_links} links"]
    for link in network.links:
        lines.append(f"{link.source} {link.target} {link.capacity:g}")
    path.write_text("\n".join(lines) + "\n")


def synthetic_rocketfuel(
    asn: int = 1239,
    capacity: float = 10.0,
    seed: int = 0,
    level: str = "pop",
) -> Network:
    """A seeded synthetic topology with the size profile of a Rocketfuel AS.

    This substitutes for the original measurement files (which are not
    redistributable); the node count and directed link count match the public
    maps at the requested ``level`` (``"pop"`` for the PoP-level sizes in
    :data:`ROCKETFUEL_PROFILES`, ``"router"`` for the reduced router-level
    sizes in :data:`ROCKETFUEL_ROUTER_PROFILES`), capacities are uniform.
    """
    if level == "pop":
        profiles = ROCKETFUEL_PROFILES
    elif level == "router":
        profiles = ROCKETFUEL_ROUTER_PROFILES
    else:
        raise ValueError(f"unknown Rocketfuel level {level!r}; known: pop, router")
    if asn not in profiles:
        raise ValueError(
            f"unknown Rocketfuel AS {asn}; known: {sorted(profiles)}"
        )
    name, nodes, links = profiles[asn]
    if links % 2:
        links += 1
    suffix = "" if level == "pop" else "-R"
    net = random_network(
        nodes, links, capacity=capacity, seed=seed + asn, name=f"AS{asn}-{name}{suffix}"
    )
    return net


def degree_profile(network: Network) -> dict[str, float]:
    """Summary degree statistics (used when comparing generated topologies)."""
    out_degrees = np.array([len(network.out_links(node)) for node in network.nodes], dtype=float)
    return {
        "mean_degree": float(np.mean(out_degrees)),
        "max_degree": float(np.max(out_degrees)),
        "min_degree": float(np.min(out_degrees)),
    }
