"""The two small example topologies used in the paper (Fig. 1 and Fig. 4).

* :func:`fig1_network` is the 4-node topology of Fig. 1 used to motivate the
  load-balance criteria and to produce Table I and Fig. 3.  All four edges
  have capacity 1; the demands are 1.0 for pair (1, 3) and 0.9 for (3, 4).

* :func:`fig4_network` is the 7-node, 13-link example (capacity 5 per link,
  four demands of 4 units) used for Fig. 5-7 and the SPEF-vs-PEFT SSFnet
  simulation of Fig. 11(a).  The paper only shows link indices on a drawing
  and notes that six unused links of the original topology from Wang et al.
  [19] were omitted, so the exact adjacency is not fully recoverable from the
  text.  We reconstruct a topology with the same node count, link count, link
  capacities and demands, in which (as in the paper) the demands from node 1
  share a bottleneck out of node 1 and multiple equal-cost alternatives exist
  through the lower tier of nodes.  The *shape* of the results (bottleneck
  utilization decreasing in beta, SPEF spreading load over more links than
  PEFT) is preserved; the per-link indices are our own.
"""

from __future__ import annotations


from ..network.demands import TrafficMatrix
from ..network.graph import Network

#: Directed links of the Fig. 1 topology, in the paper's order:
#: (1,3), (3,4), (1,2), (2,3); every capacity is 1.
FIG1_LINKS: list[tuple[int, int, float]] = [
    (1, 3, 1.0),
    (3, 4, 1.0),
    (1, 2, 1.0),
    (2, 3, 1.0),
]

#: Demands of the Fig. 1 example: 1 unit from 1 to 3 and 0.9 units from 3 to 4.
FIG1_DEMANDS: dict[tuple[int, int], float] = {(1, 3): 1.0, (3, 4): 0.9}


def fig1_network(capacity_scale: float = 1.0) -> Network:
    """The Fig. 1 topology; ``capacity_scale`` multiplies every capacity.

    The paper uses ``capacity_scale = 5`` to illustrate that min-max load
    balance does not penalise long detours once capacity is plentiful.
    """
    net = Network(name="fig1")
    for u, v, capacity in FIG1_LINKS:
        net.add_link(u, v, capacity * capacity_scale)
    return net


def fig1_demands() -> TrafficMatrix:
    """Demands of the Fig. 1 example."""
    return TrafficMatrix(FIG1_DEMANDS)


#: Directed links of our reconstruction of the Fig. 4 topology, keyed by the
#: link index used in the figures (1-13).  Every link has capacity 5.
FIG4_LINKS: dict[int, tuple[int, int]] = {
    1: (1, 4),
    2: (1, 5),
    3: (1, 6),
    4: (4, 2),
    5: (5, 2),
    6: (5, 3),
    7: (6, 3),
    8: (6, 7),
    9: (4, 5),
    10: (5, 6),
    11: (3, 7),
    12: (2, 3),
    13: (3, 2),
}

#: Demands of the Fig. 4 example (Table IV, "simple network"): four demands of
#: 4 units each.
FIG4_DEMANDS: dict[tuple[int, int], float] = {
    (1, 2): 4.0,
    (1, 3): 4.0,
    (3, 2): 4.0,
    (1, 7): 4.0,
}

#: Capacity of every link in the Fig. 4 example (5 units; 5 Mb/s in the
#: SSFnet simulation of Fig. 11(a)).
FIG4_CAPACITY = 5.0


def fig4_network(capacity: float = FIG4_CAPACITY) -> Network:
    """Our reconstruction of the Fig. 4 example topology (7 nodes, 13 links)."""
    net = Network(name="fig4")
    for index in sorted(FIG4_LINKS):
        u, v = FIG4_LINKS[index]
        net.add_link(u, v, capacity)
    return net


def fig4_demands(volume: float = 4.0) -> TrafficMatrix:
    """Demands of the Fig. 4 example, scaled so each demand is ``volume`` units."""
    scale = volume / 4.0
    return TrafficMatrix({pair: d * scale for pair, d in FIG4_DEMANDS.items()})


def fig4_link_labels(network: Network) -> dict[int, tuple[int, int]]:
    """Map the paper's link indices (1-13) to our link endpoints.

    Useful when printing Fig. 6/7-style per-link series with the same x-axis
    labels as the paper.
    """
    return dict(FIG4_LINKS)
