"""Routing protocols: OSPF, SPEF, PEFT, Fortz-Thorup and min-max MLU baselines."""

from .base import ProtocolEvaluation, RoutingProtocol
from .fortz_thorup import (
    FT_BREAKPOINTS,
    FT_SLOPES,
    FortzThorup,
    LocalSearchResult,
    link_cost,
    link_cost_derivative,
    network_cost,
    normalized_cost,
)
from .minmax_mlu import MinMaxMLU
from .ospf import OSPF, MinHopOSPF, invcap_weights, unit_weights
from .peft import PEFT
from .spef_protocol import SPEFProtocol

__all__ = [
    "ProtocolEvaluation",
    "RoutingProtocol",
    "FT_BREAKPOINTS",
    "FT_SLOPES",
    "FortzThorup",
    "LocalSearchResult",
    "link_cost",
    "link_cost_derivative",
    "network_cost",
    "normalized_cost",
    "MinMaxMLU",
    "OSPF",
    "MinHopOSPF",
    "invcap_weights",
    "unit_weights",
    "PEFT",
    "SPEFProtocol",
]
