"""Fortz-Thorup OSPF weight optimization (INFOCOM 2000 / COA 2004).

Two pieces of the Fortz-Thorup work are needed by the paper:

* the **piecewise-linear link cost function** ``Phi_a(load)`` -- the "FT"
  curve of Fig. 2 and one of the objective columns in Table I;
* the **local-search weight optimizer** that looks for integer OSPF weights
  minimising the total piecewise-linear cost under even ECMP splitting (the
  problem shown NP-hard in [16]).

The cost function is implemented exactly (same breakpoints and slopes as the
original paper).  The local search is a faithful but deliberately compact
variant: single-weight neighbourhood moves, steepest-descent with random
sampling of neighbours and random restarts, bounded by an evaluation budget.
It is not meant to beat the original implementation's engineering, only to
reproduce its qualitative behaviour on the paper's topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network
from ..obs import telemetry
from ..solvers.assignment import ecmp_assignment
from .base import RoutingProtocol

#: Breakpoints of the Fortz-Thorup piecewise-linear cost, as fractions of the
#: link capacity.
FT_BREAKPOINTS: tuple[float, ...] = (0.0, 1.0 / 3.0, 2.0 / 3.0, 9.0 / 10.0, 1.0, 11.0 / 10.0)
#: Slopes of the cost on the corresponding segments (the last one extends to
#: infinity).
FT_SLOPES: tuple[float, ...] = (1.0, 3.0, 10.0, 70.0, 500.0, 5000.0)


def link_cost(load: float, capacity: float) -> float:
    """The Fortz-Thorup cost ``Phi_a(load)`` of a single link."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    cost = 0.0
    remaining = load
    for i, slope in enumerate(FT_SLOPES):
        lower = FT_BREAKPOINTS[i] * capacity
        upper = FT_BREAKPOINTS[i + 1] * capacity if i + 1 < len(FT_BREAKPOINTS) else float("inf")
        if load <= lower:
            break
        segment = min(load, upper) - lower
        cost += slope * segment
        remaining -= segment
    return cost


def link_cost_derivative(load: float, capacity: float) -> float:
    """Marginal Fortz-Thorup cost at ``load`` (the slope of the active segment)."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    utilization = load / capacity
    for i in range(len(FT_SLOPES) - 1, -1, -1):
        if utilization >= FT_BREAKPOINTS[i]:
            return FT_SLOPES[i]
    return FT_SLOPES[0]


def network_cost(flows: FlowAssignment) -> float:
    """Total Fortz-Thorup cost ``sum_a Phi_a(f_a)`` of a traffic distribution."""
    aggregate = flows.aggregate()
    capacities = flows.network.capacities
    return float(
        sum(link_cost(aggregate[i], capacities[i]) for i in range(flows.network.num_links))
    )


def normalized_cost(flows: FlowAssignment, demands: TrafficMatrix) -> float:
    """Fortz-Thorup's normalised cost ``Phi / Phi_uncap``.

    ``Phi_uncap`` is the cost of sending every demand along unit-weight
    shortest hop paths in an uncapacitated network; values near 1 mean the
    network is effectively uncongested, values above ~10 signal overload.
    """
    network = flows.network
    hop_flows = ecmp_assignment(network, demands, np.ones(network.num_links))
    aggregate = hop_flows.aggregate()
    uncap = float(np.sum(aggregate))
    if uncap <= 0:
        return 0.0
    return network_cost(flows) / uncap


@dataclass
class LocalSearchResult:
    """Outcome of the Fortz-Thorup weight search."""

    weights: np.ndarray
    cost: float
    evaluations: int
    history: list[float] = field(default_factory=list)


class FortzThorup(RoutingProtocol):
    """OSPF with Fortz-Thorup optimised integer weights.

    Parameters
    ----------
    max_weight:
        Upper bound of the integer weight range searched (the original paper
        allows 65535 but restricts the search to a small range; 20 is their
        common choice and ours).
    max_evaluations:
        Budget of full routing evaluations for the local search.
    neighbourhood_size:
        How many candidate single-weight moves are sampled per iteration.
    seed:
        Seed of the random sampling, for reproducibility.
    backend:
        Routing backend used for every candidate evaluation of the local
        search (``"sparse"``/``"python"``/``None`` for the library default).
    """

    name = "FortzThorup"

    def __init__(
        self,
        max_weight: int = 20,
        max_evaluations: int = 400,
        neighbourhood_size: int = 24,
        restarts: int = 2,
        seed: int = 0,
        backend: str | None = None,
    ) -> None:
        if max_weight < 1:
            raise ValueError("max_weight must be at least 1")
        self.max_weight = max_weight
        self.max_evaluations = max_evaluations
        self.neighbourhood_size = neighbourhood_size
        self.restarts = restarts
        self.seed = seed
        self.backend = backend
        self._last_result: LocalSearchResult | None = None

    # ------------------------------------------------------------------
    def _evaluate(
        self, network: Network, demands: TrafficMatrix, weights: np.ndarray
    ) -> float:
        flows = ecmp_assignment(network, demands, weights, backend=self.backend)
        return network_cost(flows)

    def _initial_weights(
        self,
        network: Network,
        rng: np.random.Generator,
        attempt: int,
        warm_start: np.ndarray | None = None,
    ) -> np.ndarray:
        if attempt == 0:
            if warm_start is not None:
                rounded = np.rint(np.asarray(warm_start, dtype=float))
                return np.clip(rounded, 1, self.max_weight).astype(float)
            # InvCap-style start, rounded into the weight range.
            capacities = network.capacities
            scaled = np.rint(self.max_weight * np.min(capacities) / capacities)
            return np.clip(scaled, 1, self.max_weight).astype(float)
        return rng.integers(1, self.max_weight + 1, size=network.num_links).astype(float)

    def optimize(
        self,
        network: Network,
        demands: TrafficMatrix,
        warm_start: np.ndarray | None = None,
    ) -> LocalSearchResult:
        """Run the local search and return the best weight setting found.

        ``warm_start`` replaces the InvCap-style start of the first attempt
        with an existing weight setting (rounded and clipped into the integer
        range).  After a small perturbation — a failed trunk, a demand drift
        — the previous optimum is usually near-stationary, so the
        warm-started search converges in a fraction of the evaluations; the
        random restarts (``restarts > 1``) still explore from scratch.
        """
        if warm_start is not None and np.shape(warm_start) != (network.num_links,):
            raise ValueError(
                f"warm start must have length {network.num_links}, "
                f"got shape {np.shape(warm_start)}"
            )
        demands.validate(network)
        rng = np.random.default_rng(self.seed)
        best_weights: np.ndarray | None = None
        best_cost = float("inf")
        evaluations = 0
        first_attempt_evaluations = 0
        history: list[float] = []
        for attempt in range(max(1, self.restarts)):
            weights = self._initial_weights(network, rng, attempt, warm_start)
            cost = self._evaluate(network, demands, weights)
            evaluations += 1
            improved = True
            while improved and evaluations < self.max_evaluations:
                improved = False
                links = rng.choice(
                    network.num_links,
                    size=min(self.neighbourhood_size, network.num_links),
                    replace=False,
                )
                best_move: tuple[int, float] | None = None
                best_move_cost = cost
                for link_index in links:
                    if evaluations >= self.max_evaluations:
                        break
                    candidate_value = float(rng.integers(1, self.max_weight + 1))
                    if candidate_value == weights[link_index]:
                        candidate_value = 1.0 + (candidate_value % self.max_weight)
                    candidate = weights.copy()
                    candidate[link_index] = candidate_value
                    candidate_cost = self._evaluate(network, demands, candidate)
                    evaluations += 1
                    if candidate_cost < best_move_cost - 1e-9:
                        best_move_cost = candidate_cost
                        best_move = (int(link_index), candidate_value)
                if best_move is not None:
                    weights[best_move[0]] = best_move[1]
                    cost = best_move_cost
                    improved = True
                history.append(cost)
            if attempt == 0:
                first_attempt_evaluations = evaluations
            if cost < best_cost:
                best_cost = cost
                best_weights = weights.copy()
        assert best_weights is not None
        if telemetry.enabled():
            telemetry.count("optimizer.evaluations", evaluations, optimizer="fortz-thorup")
            if warm_start is not None:
                # Warm-start hit depth: evaluations the warm-started attempt
                # needed before going stationary (the roadmap's "how much did
                # resuming from the previous optimum save?" signal).
                telemetry.count("optimizer.warm_start", 1, optimizer="fortz-thorup")
                telemetry.observe(
                    "optimizer.warm_start_depth",
                    first_attempt_evaluations,
                    edges=(10, 30, 100, 300, 1000, 3000, 10000),
                )
        result = LocalSearchResult(
            weights=best_weights, cost=best_cost, evaluations=evaluations, history=history
        )
        self._last_result = result
        return result

    # ------------------------------------------------------------------
    def route(self, network: Network, demands: TrafficMatrix) -> FlowAssignment:
        result = self.optimize(network, demands)
        return ecmp_assignment(network, demands, result.weights, backend=self.backend)

    @property
    def last_result(self) -> LocalSearchResult | None:
        """The search result of the most recent :meth:`route`/:meth:`optimize` call."""
        return self._last_result
