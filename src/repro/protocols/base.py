"""Common interface for routing protocols.

Every protocol in the library (OSPF, SPEF, PEFT, Fortz-Thorup, min-max MLU)
implements the same tiny interface: given a network and a traffic matrix it
produces a :class:`~repro.network.flows.FlowAssignment`.  The evaluation
harness, the benchmarks and the flow-level simulator only depend on this
interface, so protocols are interchangeable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..core.objectives import normalized_utility
from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network, Node


class RoutingProtocol(abc.ABC):
    """A routing protocol maps (network, demands) to link flows."""

    #: Human-readable protocol name used in reports and plots.
    name: str = "protocol"

    @abc.abstractmethod
    def route(self, network: Network, demands: TrafficMatrix) -> FlowAssignment:
        """Compute the traffic distribution this protocol induces."""

    def batch_link_loads(
        self, network: Network, matrices: Sequence[TrafficMatrix]
    ) -> np.ndarray | None:
        """Aggregate link loads for a whole demand ensemble, when batchable.

        Protocols whose forwarding state depends only on the network (not on
        the demands -- OSPF with fixed or capacity-derived weights, PEFT with
        explicit weights) can route many traffic matrices against one
        compiled weight setting in a single stacked operation; they return an
        ``(len(matrices), num_links)`` array whose row ``i`` equals
        ``route(network, matrices[i]).aggregate()``.  Protocols that
        re-optimise per demand matrix (SPEF, Fortz-Thorup, PEFT with derived
        weights) return ``None`` and callers fall back to per-matrix
        :meth:`route` calls.  The scenario engine's batch runner uses this to
        amortise DAG compilation across demand-only scenarios; it probes
        support with an empty ensemble, so batchable implementations must
        return an empty ``(0, num_links)`` array for ``matrices=[]`` rather
        than ``None``.
        """
        return None

    def ecmp_forwarding_weights(self, network: Network) -> np.ndarray | None:
        """Link weights fully determining this protocol's forwarding, or ``None``.

        Protocols that forward with even ECMP splitting over shortest paths
        under demand-independent weights (the OSPF family) return the weight
        vector; the online TE controller can then replay pure link-failure
        scenarios against those weights with incremental shortest-path
        updates instead of from-scratch recomputes (the scenario runner's
        incremental fast path).  Everything else — protocols that
        re-optimise per instance, split unevenly, or have a forced
        ``"python"`` backend (an all-oracle run must stay all-oracle) —
        returns ``None``.
        """
        return None

    def capacity_independent_forwarding(self, network: Network) -> bool:
        """True when :meth:`ecmp_forwarding_weights` ignores link capacities.

        Capacity-degradation scenarios can only ride the incremental sweep
        when the weights the sweep holds fixed are the weights the cold path
        would derive on the *perturbed* instance.  Explicit (operator-
        configured) weights and unit weights qualify; capacity-derived
        defaults like Cisco InvCap do not — scaling a capacity rescales the
        cold path's weights, so the two paths legitimately route
        differently.  Meaningless (and ``False``) when
        :meth:`ecmp_forwarding_weights` returns ``None``.
        """
        return False

    def split_ratios(
        self, network: Network, demands: TrafficMatrix
    ) -> dict[Node, dict[Node, dict[Node, float]]] | None:
        """Per-destination next-hop split ratios, when the protocol has them.

        Returns ``destination -> node -> next hop -> ratio``.  Protocols that
        only produce aggregate flows (e.g. LP-based min-max MLU) return
        ``None``; the flow-level simulator then falls back to proportional
        splitting derived from the flow assignment itself.
        """
        return None

    def evaluate(self, network: Network, demands: TrafficMatrix) -> ProtocolEvaluation:
        """Route the demands and compute the headline metrics."""
        flows = self.route(network, demands)
        utilization = flows.utilization()
        return ProtocolEvaluation(
            protocol=self.name,
            network=network.name,
            network_load=demands.network_load(network),
            max_link_utilization=float(np.max(utilization)) if utilization.size else 0.0,
            normalized_utility=normalized_utility(utilization),
            flows=flows,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class ProtocolEvaluation:
    """Headline metrics of one protocol on one instance (a Fig. 10 point)."""

    protocol: str
    network: str
    network_load: float
    max_link_utilization: float
    normalized_utility: float
    flows: FlowAssignment

    def as_row(self) -> dict[str, object]:
        """A flat dict suitable for tabular reporting."""
        return {
            "protocol": self.protocol,
            "network": self.network,
            "network_load": round(self.network_load, 4),
            "mlu": round(self.max_link_utilization, 4),
            "utility": (
                float("-inf")
                if self.normalized_utility == float("-inf")
                else round(self.normalized_utility, 4)
            ),
        }
