"""PEFT baseline (Xu, Chiang, Rexford, INFOCOM 2008).

PEFT ("Penalizing Exponential Flow-splitTing") is the closest prior work to
SPEF: a link-state protocol where every router splits traffic over *all*
downward paths towards the destination, with an exponential penalty on the
extra length of a path beyond the shortest one.  The key difference to SPEF is
that PEFT does not restrict forwarding to shortest paths, which is exactly the
property the paper criticises (and the reason SPEF exists).

We implement *Downward PEFT*, the loop-free variant the PEFT paper actually
deploys: for destination ``t`` a node ``u`` may forward to any neighbour ``v``
that is strictly closer to ``t`` (``d_v < d_u``).  The traffic share of the
link ``(u, v)`` is proportional to

    exp(-(w_uv + d_v - d_u)) * Z_t(v)

where ``Z_t`` ("effective number of downward paths") satisfies the recursion
``Z_t(t) = 1``, ``Z_t(u) = sum_v exp(-(w_uv + d_v - d_u)) * Z_t(v)``.

PEFT's own theory sets the link weights to the Lagrange multipliers of the TE
problem -- the same quantities SPEF uses as first weights -- so by default the
protocol derives its weights from the optimal TE solution for the configured
objective.  Explicit weights can be supplied for ablations.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.objectives import LoadBalanceObjective
from ..core.te_problem import TEProblem, solve_optimal_te
from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network, Node
from ..network.spt import WeightsLike, as_weight_vector, distances_to
from ..routing import resolve_backend
from ..routing.compiled import CompiledDag
from .base import RoutingProtocol


class PEFT(RoutingProtocol):
    """Downward PEFT with exponential penalty on longer paths.

    Parameters
    ----------
    weights:
        Explicit link weights.  When omitted, the weights are derived from the
        optimal TE solution for ``objective`` (the PEFT paper's prescription).
    objective:
        Objective used to derive weights when none are given.
    temperature:
        Scales the exponential penalty: the share of a path decays as
        ``exp(-extra_length / temperature)``.  1.0 reproduces the original
        protocol; larger values spread traffic more aggressively.
    backend:
        ``"sparse"`` routes over the compiled downward DAG (the ``Z``
        recursion and the propagation become vectorised sweeps),
        ``"python"`` keeps the dict-loop reference.  Degenerate corners
        (zero-weight plateaus where a node has no strictly-downward next
        hop) always use the reference path so the fallback semantics stay
        bit-for-bit identical.
    """

    name = "PEFT"

    def __init__(
        self,
        weights: WeightsLike | None = None,
        objective: LoadBalanceObjective | None = None,
        temperature: float = 1.0,
        backend: str | None = None,
    ) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self._weights = weights
        self.objective = objective or LoadBalanceObjective.proportional()
        self.temperature = temperature
        self.backend = backend

    # ------------------------------------------------------------------
    def link_weights(self, network: Network, demands: TrafficMatrix) -> np.ndarray:
        """The PEFT link weights for this instance."""
        if self._weights is not None:
            return as_weight_vector(network, self._weights)
        problem = TEProblem(network=network, demands=demands, objective=self.objective)
        return solve_optimal_te(problem).link_weights

    def _downward_split(
        self,
        network: Network,
        destination: Node,
        weights: np.ndarray,
    ) -> dict[Node, dict[Node, float]]:
        """Per-node split ratios over downward neighbours for one destination."""
        distances = distances_to(network, destination, weights)
        # Effective number of downward paths, computed in increasing-distance
        # order so every downstream Z value is available.
        z_values: dict[Node, float] = {destination: 1.0}
        order = sorted(distances, key=lambda n: distances[n])
        for node in order:
            if node == destination:
                continue
            total = 0.0
            for link in network.out_links(node):
                neighbour = link.target
                if neighbour not in distances or distances[neighbour] >= distances[node]:
                    continue
                extra = weights[link.index] + distances[neighbour] - distances[node]
                total += float(np.exp(-extra / self.temperature)) * z_values.get(neighbour, 0.0)
            z_values[node] = total
        ratios: dict[Node, dict[Node, float]] = {}
        for node in order:
            if node == destination:
                continue
            shares: dict[Node, float] = {}
            for link in network.out_links(node):
                neighbour = link.target
                if neighbour not in distances or distances[neighbour] >= distances[node]:
                    continue
                extra = weights[link.index] + distances[neighbour] - distances[node]
                share = float(np.exp(-extra / self.temperature)) * z_values.get(neighbour, 0.0)
                if share > 0:
                    shares[neighbour] = share
            total = sum(shares.values())
            if total > 0:
                ratios[node] = {hop: share / total for hop, share in shares.items()}
            else:
                # Disconnected downward set (only possible with zero weights
                # everywhere); fall back to any neighbour not farther away.
                fallback = [
                    link.target
                    for link in network.out_links(node)
                    if link.target in distances and distances[link.target] <= distances[node]
                ]
                if fallback:
                    ratios[node] = {hop: 1.0 / len(fallback) for hop in fallback}
        return ratios

    # ------------------------------------------------------------------
    def split_ratios(
        self, network: Network, demands: TrafficMatrix
    ) -> dict[Node, dict[Node, dict[Node, float]]]:
        weights = self.link_weights(network, demands)
        return {
            destination: self._downward_split(network, destination, weights)
            for destination in demands.destinations()
        }

    def _compile_downward(
        self, network: Network, destination: Node, weights: np.ndarray
    ) -> tuple[CompiledDag, np.ndarray] | None:
        """Compile the downward DAG and its exponential ratios for one destination.

        Returns ``None`` when the downward structure is degenerate (some
        reachable node has no strictly-downward next hop, or the exponential
        weights underflow to a zero split) -- those corners keep the
        reference implementation's fallback semantics.
        """
        distances = distances_to(network, destination, weights)
        order = sorted(distances, key=lambda n: distances[n], reverse=True)
        next_hops: dict[Node, list[Node]] = {}
        for node in order:
            if node == destination:
                continue
            downward = [
                link.target
                for link in network.out_links(node)
                if link.target in distances and distances[link.target] < distances[node]
            ]
            if not downward:
                return None
            next_hops[node] = downward
        compiled = CompiledDag.from_next_hops(network, destination, order, next_hops)
        if compiled.num_edges == 0:
            return compiled, np.empty(0)
        # Per-link extra length beyond the shortest path; only the compiled
        # (strictly downward) edges are gathered, so restrict the computation
        # to them instead of building a full link-indexed vector.
        extra = np.fromiter(
            (
                weights[index]
                + distances[network.link_by_index(index).target]
                - distances[network.link_by_index(index).source]
                for index in compiled.links
            ),
            dtype=float,
            count=compiled.num_edges,
        )
        boltzmann = np.exp(-extra / self.temperature)
        z_values = compiled.path_weight_sums(boltzmann)
        shares = boltzmann * z_values[compiled.targets]
        totals = np.zeros(compiled.num_nodes)
        np.add.at(totals, compiled.rows, shares)
        if np.any(totals[compiled.out_degree() > 0] <= 0):
            return None
        ratios = shares / totals[compiled.rows]
        return compiled, ratios

    def _route_python(
        self, network: Network, demands: TrafficMatrix, weights: np.ndarray
    ) -> FlowAssignment:
        """The reference dict-loop implementation (the equivalence oracle)."""
        flows = FlowAssignment(network=network)
        for destination, entering in demands.by_destination().items():
            self._propagate_python(network, destination, entering, weights, flows)
        return flows

    def _propagate_python(
        self,
        network: Network,
        destination: Node,
        entering: dict[Node, float],
        weights: np.ndarray,
        flows: FlowAssignment,
    ) -> None:
        ratios = self._downward_split(network, destination, weights)
        distances = distances_to(network, destination, weights)
        vector = flows.ensure_destination(destination)
        transit: dict[Node, float] = {}
        for node in sorted(distances, key=lambda n: distances[n], reverse=True):
            if node == destination:
                continue
            load = entering.get(node, 0.0) + transit.get(node, 0.0)
            if load <= 0:
                continue
            node_ratios = ratios.get(node)
            if not node_ratios:
                raise RuntimeError(
                    f"PEFT has no downward next hop at {node!r} for {destination!r}"
                )
            for hop, ratio in node_ratios.items():
                share = load * ratio
                if share <= 0:
                    continue
                vector[network.link_index(node, hop)] += share
                transit[hop] = transit.get(hop, 0.0) + share

    def route(self, network: Network, demands: TrafficMatrix) -> FlowAssignment:
        demands.validate(network)
        weights = self.link_weights(network, demands)
        if resolve_backend(self.backend) != "sparse":
            # "auto" picks the oracle for one-shot single-matrix routing (the
            # dict loops beat numpy's per-row overhead at this shape).
            return self._route_python(network, demands, weights)
        flows = FlowAssignment(network=network)
        for destination, entering in demands.by_destination().items():
            compiled_ratios = self._compile_downward(network, destination, weights)
            if compiled_ratios is None:
                self._propagate_python(network, destination, entering, weights, flows)
                continue
            compiled, ratios = compiled_ratios
            vector = flows.ensure_destination(destination)
            demand = compiled.entering_vector(entering, missing="drop")
            compiled.scatter_link_loads(compiled.propagate(demand, ratios), ratios, out=vector)
        return flows

    def batch_link_loads(
        self, network: Network, matrices: Sequence[TrafficMatrix]
    ) -> np.ndarray | None:
        """Batched ensemble evaluation, only when the weights are explicit.

        With derived weights the forwarding state depends on the demands (the
        PEFT prescription solves the TE problem per matrix), so batching
        would change semantics and ``None`` is returned.
        """
        if self._weights is None or resolve_backend(self.backend) == "python":
            return None
        weights = as_weight_vector(network, self._weights)
        matrices = list(matrices)
        for tm in matrices:
            tm.validate(network)
        m = len(matrices)
        loads = np.zeros((network.num_links, m))
        by_destination = [tm.by_destination() for tm in matrices]
        destinations: dict[Node, None] = {}
        for per in by_destination:
            for destination in per:
                destinations.setdefault(destination, None)
        for destination in destinations:
            compiled_ratios = self._compile_downward(network, destination, weights)
            if compiled_ratios is None:
                # Degenerate corner somewhere in the ensemble: let the runner
                # fall back to per-matrix routing for exact semantics.
                return None
            compiled, ratios = compiled_ratios
            entering = np.zeros((compiled.num_nodes, m))
            for column, per in enumerate(by_destination):
                volumes = per.get(destination)
                if volumes:
                    compiled.entering_vector(
                        volumes, column=column, out=entering, missing="drop"
                    )
            compiled.scatter_link_loads(
                compiled.propagate(entering, ratios), ratios, out=loads
            )
        return loads.T
