"""SPEF exposed through the common :class:`RoutingProtocol` interface.

The heavy lifting lives in :mod:`repro.core.spef`; this adapter lets the
evaluation harness, the benchmarks and the flow-level simulator treat SPEF
exactly like any other protocol.
"""

from __future__ import annotations


from ..core.forwarding import split_ratios_from_tables
from ..core.spef import SPEF, SPEFConfig, SPEFSolution
from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network, Node
from .base import RoutingProtocol


class SPEFProtocol(RoutingProtocol):
    """SPEF as a drop-in routing protocol.

    The ``beta`` shorthand mirrors the paper's notation SPEF0 / SPEF1 / SPEF5
    for SPEF run with the (1, beta) load-balance objective.  The routing
    backend of the NEM inner loop is selected through the config:
    ``SPEFProtocol(routing_backend="sparse")`` (see
    :attr:`repro.core.spef.SPEFConfig.routing_backend`).
    """

    name = "SPEF"

    def __init__(self, config: SPEFConfig | None = None, name: str | None = None, **overrides) -> None:
        self._spef = SPEF(config=config, **overrides)
        if name is not None:
            self.name = name
        else:
            beta = self._spef.config.objective.beta
            self.name = f"SPEF(beta={beta:g})"
        self._last_solution: SPEFSolution | None = None

    @classmethod
    def with_beta(cls, beta: float, **overrides) -> SPEFProtocol:
        """SPEF with the (1, beta) objective, e.g. ``with_beta(1)`` for SPEF1."""
        from ..core.objectives import LoadBalanceObjective

        config = SPEFConfig(objective=LoadBalanceObjective(beta=beta), **overrides)
        return cls(config=config, name=f"SPEF{beta:g}")

    @property
    def config(self) -> SPEFConfig:
        return self._spef.config

    @property
    def last_solution(self) -> SPEFSolution | None:
        """The full :class:`SPEFSolution` of the most recent route() call."""
        return self._last_solution

    def fit(self, network: Network, demands: TrafficMatrix) -> SPEFSolution:
        solution = self._spef.fit(network, demands)
        self._last_solution = solution
        return solution

    def route(self, network: Network, demands: TrafficMatrix) -> FlowAssignment:
        return self.fit(network, demands).flows

    def split_ratios(
        self, network: Network, demands: TrafficMatrix
    ) -> dict[Node, dict[Node, dict[Node, float]]]:
        solution = self._last_solution
        if (
            solution is None
            or solution.network is not network
            or solution.demands is not demands
        ):
            solution = self.fit(network, demands)
        return split_ratios_from_tables(solution.forwarding_tables)
