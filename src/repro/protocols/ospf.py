"""OSPF baseline: configurable link weights, Dijkstra and even ECMP splitting.

The paper's comparison baseline is "the current version of OSPF": link weights
set inversely proportional to capacity (Cisco's InvCap recommendation) and
traffic split *evenly* over all equal-cost shortest paths.  This module
implements that baseline, plus the weight-setting variants needed elsewhere
(unit weights for minimum hop, explicit operator weights for the Fortz-Thorup
local search).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network, Node
from ..network.spt import DEFAULT_TOLERANCE, WeightsLike, all_shortest_path_dags, as_weight_vector
from ..routing import resolve_backend
from ..routing.sparse import SparseRouter
from ..solvers.assignment import ecmp_assignment
from .base import RoutingProtocol


def invcap_weights(network: Network, reference_capacity: float | None = None) -> np.ndarray:
    """Cisco InvCap weights: ``w_ij = C_ref / c_ij``.

    ``reference_capacity`` defaults to the largest capacity in the network so
    the largest link gets weight 1, matching the usual router configuration.
    """
    capacities = network.capacities
    if reference_capacity is None:
        reference_capacity = float(np.max(capacities))
    if reference_capacity <= 0:
        raise ValueError("reference capacity must be positive")
    return reference_capacity / capacities


def unit_weights(network: Network) -> np.ndarray:
    """All-ones weights: plain hop-count shortest paths."""
    return np.ones(network.num_links)


class OSPF(RoutingProtocol):
    """OSPF with even splitting over equal-cost shortest paths.

    Parameters
    ----------
    weights:
        Explicit link weights; by default InvCap weights are derived from the
        network capacities at routing time.
    ecmp_tolerance:
        Cost tolerance when declaring paths equal (integer OSPF weights make
        exact ties common, so the default exact comparison is usually right).
    backend:
        Routing backend (``"sparse"``/``"python"``/``None`` for the library
        default) handed to :func:`repro.solvers.assignment.ecmp_assignment`.
    """

    name = "OSPF"

    def __init__(
        self,
        weights: WeightsLike | None = None,
        ecmp_tolerance: float = DEFAULT_TOLERANCE,
        name: str | None = None,
        backend: str | None = None,
    ) -> None:
        self._weights = weights
        self.ecmp_tolerance = ecmp_tolerance
        self.backend = backend
        if name is not None:
            self.name = name

    def link_weights(self, network: Network) -> np.ndarray:
        """The weight vector this OSPF instance uses on ``network``."""
        if self._weights is None:
            return invcap_weights(network)
        return as_weight_vector(network, self._weights)

    def route(self, network: Network, demands: TrafficMatrix) -> FlowAssignment:
        weights = self.link_weights(network)
        return ecmp_assignment(
            network, demands, weights, self.ecmp_tolerance, backend=self.backend
        )

    def batch_link_loads(
        self, network: Network, matrices: Sequence[TrafficMatrix]
    ) -> np.ndarray | None:
        """Stacked ECMP evaluation of a demand ensemble on one weight setting.

        OSPF's forwarding state depends only on the network (explicit weights
        or InvCap derived from capacities), so the shortest-path DAGs are
        compiled once and every matrix rides the same batched propagation.
        With the ``"python"`` backend forced -- on this instance or through
        the process/environment default -- batching is declined so an
        all-oracle comparison really is all-oracle.
        """
        if resolve_backend(self.backend) == "python":
            return None
        router = SparseRouter(
            network,
            weights=self.link_weights(network),
            mode="ecmp",
            tolerance=self.ecmp_tolerance,
        )
        return router.link_loads_many(matrices)

    def ecmp_forwarding_weights(self, network: Network) -> np.ndarray | None:
        """OSPF's forwarding is exactly even-ECMP under its link weights.

        Returns the weight vector the incremental failure sweep should hold
        fixed while links fail and recover.  Declined (``None``) when the
        ``"python"`` backend is forced (for the same reason
        :meth:`batch_link_loads` declines then) and when the instance was
        configured with a raw link-indexed weight *vector*: such a vector
        cannot be applied to a pruned failure instance (its link indexing
        differs), so the cold per-cell path errors where the sweep would
        succeed — the two paths must stay result-equivalent.  Mapping
        weights and capacity-derived defaults carry over edge-by-edge and
        qualify.
        """
        if resolve_backend(self.backend) == "python":
            return None
        if self._weights is not None and not isinstance(self._weights, Mapping):
            return None
        return self.link_weights(network)

    def capacity_independent_forwarding(self, network: Network) -> bool:
        """Explicit mapping weights survive capacity scaling; InvCap does not.

        The InvCap default re-derives weights from the (possibly degraded)
        capacities at routing time, so only instances configured with an
        explicit weight mapping qualify for incremental capacity sweeps.
        """
        return self.ecmp_forwarding_weights(network) is not None and self._weights is not None

    def split_ratios(
        self, network: Network, demands: TrafficMatrix
    ) -> dict[Node, dict[Node, dict[Node, float]]]:
        """Even split ratios over the equal-cost next hops (for the simulator)."""
        weights = self.link_weights(network)
        dags = all_shortest_path_dags(
            network, demands.destinations(), weights, self.ecmp_tolerance
        )
        ratios: dict[Node, dict[Node, dict[Node, float]]] = {}
        for destination, dag in dags.items():
            per_node: dict[Node, dict[Node, float]] = {}
            for node in dag.next_hops:
                hops = dag.next_hops_of(node)
                if hops:
                    per_node[node] = {hop: 1.0 / len(hops) for hop in hops}
            ratios[destination] = per_node
        return ratios


class MinHopOSPF(OSPF):
    """OSPF with unit weights (pure hop count), a common operator default."""

    name = "OSPF-minhop"

    def __init__(
        self, ecmp_tolerance: float = DEFAULT_TOLERANCE, backend: str | None = None
    ) -> None:
        super().__init__(weights=None, ecmp_tolerance=ecmp_tolerance, backend=backend)

    def link_weights(self, network: Network) -> np.ndarray:
        return unit_weights(network)

    def capacity_independent_forwarding(self, network: Network) -> bool:
        """Unit weights never look at capacities."""
        return self.ecmp_forwarding_weights(network) is not None
