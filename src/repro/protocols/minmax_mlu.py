"""Min-max MLU routing (the "optimal MPLS" baseline of Table I).

Routes traffic so that the maximum link utilization is minimised, by solving
the LP of problem (2).  The paper uses this as one of the reference objective
functions in Table I and discusses why minimising MLU alone is not a
well-defined objective (infinitely many optima); we therefore also expose a
lexicographic refinement that, among the MLU-optimal flows, picks the one with
minimum total traffic -- this resolves the ``a in [0.1, 0.9]`` ambiguity of
Table I deterministically.
"""

from __future__ import annotations


import numpy as np

from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network
from ..solvers.mcf import solve_min_cost_mcf, solve_min_mlu
from .base import RoutingProtocol


class MinMaxMLU(RoutingProtocol):
    """LP-based routing that minimises the maximum link utilization.

    Parameters
    ----------
    refine:
        When ``True`` (default) a second LP picks, among all MLU-optimal
        distributions, the one minimising total carried traffic.  This avoids
        gratuitous detours, making the output deterministic and comparable.
    allow_overload:
        Let the LP return solutions with MLU > 1 instead of failing when the
        demands simply do not fit (useful for high-load sweeps).
    """

    name = "MinMaxMLU"

    def __init__(self, refine: bool = True, allow_overload: bool = True) -> None:
        self.refine = refine
        self.allow_overload = allow_overload

    def optimal_mlu(self, network: Network, demands: TrafficMatrix) -> float:
        """The minimum achievable MLU for this instance (no routing returned)."""
        return solve_min_mlu(network, demands, allow_overload=self.allow_overload).objective

    def route(self, network: Network, demands: TrafficMatrix) -> FlowAssignment:
        solution = solve_min_mlu(network, demands, allow_overload=self.allow_overload)
        if not self.refine:
            return solution.flows
        # Lexicographic refinement: cap every link at r* c_ij and minimise the
        # total carried traffic (unit costs).  Scaling capacities by the
        # optimal ratio keeps the first objective optimal.
        ratio = max(solution.objective, 1e-12)
        capped = network.copy(name=f"{network.name}-mlu-capped")
        capped_scaled = Network(name=capped.name)
        for node in network.nodes:
            capped_scaled.add_node(node)
        for link in network.links:
            capped_scaled.add_link(
                link.source,
                link.target,
                capacity=link.capacity * ratio * (1 + 1e-9) + 1e-12,
                delay=link.delay,
            )
        refined = solve_min_cost_mcf(
            capped_scaled, demands, np.ones(network.num_links), capacitated=True
        )
        # Re-home the flows onto the original network object.
        flows = FlowAssignment(network=network)
        for destination, vector in refined.flows.per_destination.items():
            flows.per_destination[destination] = vector.copy()
        return flows

    def weights(self, network: Network, demands: TrafficMatrix) -> np.ndarray | None:
        """Link weights under which the MLU-optimal flows are shortest paths.

        Derived from the LP duals of the min-cost refinement; mirrors the
        "min-max MLU" weight column of Table I where only the bottleneck link
        carries a positive weight.
        """
        solution = solve_min_mlu(network, demands, allow_overload=self.allow_overload)
        ratio = max(solution.objective, 1e-12)
        scaled = Network(name=f"{network.name}-mlu-capped")
        for node in network.nodes:
            scaled.add_node(node)
        for link in network.links:
            scaled.add_link(
                link.source, link.target, link.capacity * ratio * (1 + 1e-9) + 1e-12, link.delay
            )
        refined = solve_min_cost_mcf(scaled, demands, np.ones(network.num_links), capacitated=True)
        if refined.capacity_duals is None:
            return None
        return np.maximum(refined.capacity_duals, 0.0)
