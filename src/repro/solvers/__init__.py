"""Optimization substrate: LP multi-commodity flow, Frank-Wolfe, sub-gradient tools."""

from .assignment import (
    all_or_nothing_assignment,
    ecmp_assignment,
    split_ratio_assignment,
)
from .frank_wolfe import FrankWolfeResult, solve_frank_wolfe
from .mcf import McfSolution, SolverError, solve_min_cost_mcf, solve_min_mlu, solve_route_subproblem
from .subgradient import (
    ConstantStep,
    DiminishingStep,
    SquareSummableStep,
    default_step_for_capacities,
    default_step_for_flows,
    project_nonnegative,
    step_sequence,
)

__all__ = [
    "all_or_nothing_assignment",
    "ecmp_assignment",
    "split_ratio_assignment",
    "FrankWolfeResult",
    "solve_frank_wolfe",
    "McfSolution",
    "SolverError",
    "solve_min_cost_mcf",
    "solve_min_mlu",
    "solve_route_subproblem",
    "ConstantStep",
    "DiminishingStep",
    "SquareSummableStep",
    "default_step_for_capacities",
    "default_step_for_flows",
    "project_nonnegative",
    "step_sequence",
]
