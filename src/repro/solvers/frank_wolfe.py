"""Frank-Wolfe (flow deviation) solver for concave-utility multi-commodity flow.

This is the centralized reference solver for the paper's TE problem (5):

    maximize   sum_ij V_ij(c_ij - f_ij)
    subject to multi-commodity flow constraints.

Maximising a concave utility of spare capacity is equivalent to minimising the
convex congestion cost ``Phi(f) = -sum_ij V_ij(c_ij - f_ij)``.  The classic
flow-deviation method applies directly:

1. linearise the cost at the current aggregate flow, which yields link costs
   ``w_ij = V'_ij(c_ij - f_ij)`` -- exactly the paper's first link weights;
2. solve the linearised subproblem, i.e. route all demands on shortest paths
   under ``w`` (all-or-nothing assignment);
3. move towards that extreme point with an exact line search.

For strictly concave barrier-like utilities (``beta >= 1``) the cost diverges
as any link saturates, so iterates stay strictly feasible as long as the
starting point is.  For ``beta < 1`` the optimum may saturate links, so the
linearised subproblem is solved as a *capacitated* min-cost MCF LP instead.

The solver is deliberately independent from Algorithm 1 (the distributed dual
decomposition); the test-suite cross-checks the two against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network
from .assignment import all_or_nothing_assignment
from .mcf import SolverError, solve_min_cost_mcf, solve_min_mlu

#: Signature of a link congestion-cost oracle: given the aggregate flow vector
#: it returns (total cost, per-link marginal cost).
CostOracle = Callable[[np.ndarray], float]
GradientOracle = Callable[[np.ndarray], np.ndarray]


@dataclass
class FrankWolfeResult:
    """Outcome of the flow-deviation solver."""

    flows: FlowAssignment
    objective: float
    #: Marginal link costs at the optimum, i.e. V'(s*): the first link weights.
    link_weights: np.ndarray
    iterations: int
    relative_gap: float
    converged: bool
    objective_history: list[float] = field(default_factory=list)


def _golden_section(fun: Callable[[float], float], tol: float = 1e-10) -> float:
    """Minimise a 1-D convex function over [0, 1] by golden-section search."""
    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    lo, hi = 0.0, 1.0
    x1 = hi - inv_phi * (hi - lo)
    x2 = lo + inv_phi * (hi - lo)
    f1, f2 = fun(x1), fun(x2)
    while hi - lo > tol:
        if f1 <= f2:
            hi, x2, f2 = x2, x1, f1
            x1 = hi - inv_phi * (hi - lo)
            f1 = fun(x1)
        else:
            lo, x1, f1 = x1, x2, f2
            x2 = lo + inv_phi * (hi - lo)
            f2 = fun(x2)
    return (lo + hi) / 2.0


def solve_frank_wolfe(
    network: Network,
    demands: TrafficMatrix,
    cost: CostOracle,
    gradient: GradientOracle,
    barrier: bool = True,
    max_iterations: int = 300,
    tolerance: float = 1e-6,
    initial_flows: FlowAssignment | None = None,
) -> FrankWolfeResult:
    """Minimise a convex separable link cost over the MCF polytope.

    Parameters
    ----------
    cost, gradient:
        Oracles mapping the aggregate flow vector to the total cost and the
        vector of marginal link costs.  For the TE problem these are
        ``-sum V(c - f)`` and ``V'(c - f)``.
    barrier:
        ``True`` when the cost diverges at saturation (``beta >= 1``): the
        linearised subproblem is then an *uncapacitated* shortest-path
        assignment and the line search keeps iterates interior.  ``False``
        solves a capacitated min-cost MCF LP per iteration instead.
    initial_flows:
        A feasible starting assignment; by default the min-MLU LP solution
        (scaled slightly towards the interior when ``barrier`` is set).

    Raises
    ------
    SolverError
        If no feasible starting point exists (demands exceed capacity when a
        barrier cost is used).
    """
    demands.validate(network)
    if not len(demands):
        empty = FlowAssignment(network=network)
        return FrankWolfeResult(
            flows=empty,
            objective=float(cost(empty.aggregate())),
            link_weights=gradient(empty.aggregate()),
            iterations=0,
            relative_gap=0.0,
            converged=True,
        )

    if initial_flows is None:
        start = solve_min_mlu(network, demands, allow_overload=not barrier)
        if barrier and start.objective >= 1.0 - 1e-9:
            raise SolverError(
                "demands cannot be routed with every link strictly below "
                f"capacity (best MLU = {start.objective:.4f}); a barrier "
                "objective has no feasible point"
            )
        current = start.flows
    else:
        current = initial_flows.copy()

    history: list[float] = []
    relative_gap = np.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):  # noqa: B007
        aggregate = current.aggregate()
        weights = np.maximum(gradient(aggregate), 0.0)
        if barrier:
            target = all_or_nothing_assignment(network, demands, weights)
        else:
            target = solve_min_cost_mcf(network, demands, weights, capacitated=True).flows

        current_cost = float(cost(aggregate))
        history.append(current_cost)
        direction = target.aggregate() - aggregate
        gap = float(-np.dot(weights, direction))
        denom = max(abs(current_cost), 1.0)
        relative_gap = gap / denom
        if relative_gap <= tolerance:
            converged = True
            break

        def line_cost(alpha: float) -> float:
            return float(cost(aggregate + alpha * direction))

        alpha = _golden_section(line_cost)
        if alpha <= 0:
            converged = True
            break
        blended = FlowAssignment(network=network)
        for destination in set(current.destinations) | set(target.destinations):
            a = current.per_destination.get(destination)
            b = target.per_destination.get(destination)
            if a is None:
                a = np.zeros(network.num_links)
            if b is None:
                b = np.zeros(network.num_links)
            blended.per_destination[destination] = (1 - alpha) * a + alpha * b
        current = blended

    aggregate = current.aggregate()
    final_cost = float(cost(aggregate))
    history.append(final_cost)
    return FrankWolfeResult(
        flows=current,
        objective=final_cost,
        link_weights=np.maximum(gradient(aggregate), 0.0),
        iterations=iteration,
        relative_gap=float(relative_gap),
        converged=converged,
        objective_history=history,
    )
