"""Shortest-path traffic assignment (all-or-nothing and even ECMP splitting).

Two routines that every protocol and solver in the library builds on:

* :func:`all_or_nothing_assignment` sends every demand along one shortest
  path.  This is the ``Route_t(w; d^t)`` subproblem of Algorithm 1 (an
  uncapacitated min-cost flow is just shortest-path routing) and the
  linearised subproblem of the Frank-Wolfe solver.

* :func:`ecmp_assignment` splits traffic evenly across all equal-cost next
  hops at every router, which is exactly how OSPF's ECMP behaves and how the
  Fortz-Thorup evaluation routes traffic for a given weight setting.

Both propagate flow per destination over the shortest-path DAG in decreasing
distance order, so a node's whole incoming flow (local demand plus transit) is
known before it is split -- the same bookkeeping Algorithm 3 of the paper uses.

Each routine dispatches between two interchangeable backends (see
:mod:`repro.routing`): ``"sparse"`` compiles the DAGs into CSR split-ratio
matrices and propagates with vectorised forward substitution, ``"python"``
(the default for these one-shot calls) runs the dict-loop implementation
kept here as the reference oracle.  ``tests/test_routing_equivalence.py``
pins their agreement; for many matrices against one weight setting use the
always-sparse batched entry points in :mod:`repro.routing` instead.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network, Node
from ..network.spt import (
    DEFAULT_TOLERANCE,
    ShortestPathDag,
    UnreachableError,
    WeightsLike,
    shortest_path_dag,
)
from ..routing import resolve_backend
from ..routing.compiled import warn_degenerate_split
from ..routing.sparse import (
    sparse_all_or_nothing_assignment,
    sparse_ecmp_assignment,
    sparse_split_ratio_assignment,
)


def _propagate_over_dag(
    network: Network,
    dag: ShortestPathDag,
    entering: Mapping[Node, float],
    split_ratios: Mapping[Node, Mapping[Node, float]] | None,
    flows: FlowAssignment,
) -> None:
    """Push per-destination demand over ``dag`` using ``split_ratios``.

    ``entering[s]`` is the demand entering at node ``s`` destined to the DAG's
    destination.  ``split_ratios[s][v]`` is the fraction of that node's total
    traffic forwarded to next hop ``v``; when ``split_ratios`` is ``None``
    the traffic is split evenly across all next hops.
    """
    destination = dag.destination
    vector = flows.ensure_destination(destination)
    transit: dict[Node, float] = {}
    # A topological order guarantees a node's whole incoming flow (local
    # demand plus transit) is known before the node splits it, even on
    # zero-weight plateaus where distances tie.
    for node in dag.topological_order():
        if node == destination:
            continue
        load = entering.get(node, 0.0) + transit.get(node, 0.0)
        if load <= 0:
            continue
        hops = dag.next_hops_of(node)
        if not hops:
            raise UnreachableError(
                f"node {node!r} has traffic for {destination!r} but no next hop"
            )
        if split_ratios is None:
            ratios = {hop: 1.0 / len(hops) for hop in hops}
        else:
            ratios = dict(split_ratios.get(node, {}))
            total = sum(ratios.get(hop, 0.0) for hop in hops)
            if total <= 0:
                if ratios:
                    # Stored ratios exist but are degenerate over the actual
                    # next hops -- deliver the traffic anyway (even split) but
                    # say so instead of silently ignoring the configuration.
                    warn_degenerate_split(node, destination, total, len(hops))
                ratios = {hop: 1.0 / len(hops) for hop in hops}
            else:
                ratios = {hop: ratios.get(hop, 0.0) / total for hop in hops}
        for hop in hops:
            share = load * ratios.get(hop, 0.0)
            if share <= 0:
                continue
            vector[network.link_index(node, hop)] += share
            transit[hop] = transit.get(hop, 0.0) + share


def ecmp_assignment(
    network: Network,
    demands: TrafficMatrix,
    weights: WeightsLike,
    tolerance: float = DEFAULT_TOLERANCE,
    dags: dict[Node, ShortestPathDag] | None = None,
    backend: str | None = None,
) -> FlowAssignment:
    """Route ``demands`` with even splitting over equal-cost shortest paths.

    This reproduces OSPF's ECMP behaviour for a given weight setting.  The
    precomputed ``dags`` argument lets callers reuse shortest-path DAGs across
    repeated evaluations (the Fortz-Thorup local search does this heavily).
    ``backend`` selects the vectorised (``"sparse"``) or reference
    (``"python"``) implementation; ``None`` uses the library default.
    """
    if resolve_backend(backend) == "sparse":
        return sparse_ecmp_assignment(network, demands, weights, tolerance, dags)
    demands.validate(network)
    flows = FlowAssignment(network=network)
    for destination, entering in demands.by_destination().items():
        dag = (
            dags[destination]
            if dags is not None and destination in dags
            else shortest_path_dag(network, destination, weights, tolerance)
        )
        for source in entering:
            if not dag.reachable(source):
                raise UnreachableError(
                    f"demand source {source!r} cannot reach {destination!r}"
                )
        _propagate_over_dag(network, dag, entering, None, flows)
    return flows


def all_or_nothing_assignment(
    network: Network,
    demands: TrafficMatrix,
    weights: WeightsLike,
    tolerance: float = DEFAULT_TOLERANCE,
    backend: str | None = None,
) -> FlowAssignment:
    """Route every demand along a single shortest path (no splitting).

    Ties are broken deterministically by picking the first next hop of the
    DAG, so repeated calls with the same inputs give the same flows -- a
    property the sub-gradient iterations of Algorithm 1 rely on for
    reproducibility.
    """
    if resolve_backend(backend) == "sparse":
        return sparse_all_or_nothing_assignment(network, demands, weights, tolerance)
    demands.validate(network)
    flows = FlowAssignment(network=network)
    for destination, entering in demands.by_destination().items():
        dag = shortest_path_dag(network, destination, weights, tolerance)
        single_hop: dict[Node, dict[Node, float]] = {}
        for node in dag.next_hops:
            hops = dag.next_hops_of(node)
            if hops:
                single_hop[node] = {hops[0]: 1.0}
        for source in entering:
            if not dag.reachable(source):
                raise UnreachableError(
                    f"demand source {source!r} cannot reach {destination!r}"
                )
        _propagate_over_dag(network, dag, entering, single_hop, flows)
    return flows


def split_ratio_assignment(
    network: Network,
    demands: TrafficMatrix,
    dags: dict[Node, ShortestPathDag],
    split_ratios: dict[Node, dict[Node, dict[Node, float]]],
    backend: str | None = None,
) -> FlowAssignment:
    """Route demands over precomputed DAGs with explicit split ratios.

    ``split_ratios[destination][node][hop]`` gives the fraction of the
    traffic for ``destination`` that ``node`` forwards to ``hop``.  This is the
    building block SPEF uses once the second link weights have produced the
    exponential split ratios of Eq. (22).
    """
    if resolve_backend(backend) == "sparse":
        return sparse_split_ratio_assignment(network, demands, dags, split_ratios)
    demands.validate(network)
    flows = FlowAssignment(network=network)
    for destination, entering in demands.by_destination().items():
        if destination not in dags:
            raise UnreachableError(f"no shortest-path DAG for destination {destination!r}")
        dag = dags[destination]
        ratios = split_ratios.get(destination)
        _propagate_over_dag(network, dag, entering, ratios, flows)
    return flows
