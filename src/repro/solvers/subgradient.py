"""Step-size schedules and projection helpers for sub-gradient methods.

Algorithms 1 and 2 of the paper are projected (sub)gradient ascent/descent on
Lagrangian duals.  Their convergence guarantees depend on the step-size rule:
Theorem 4.1 requires a diminishing, non-summable sequence
(``sum gamma_k = inf`` and ``gamma_k -> 0``), while the evaluation section
uses a constant step equal to the reciprocal of the maximum link capacity
(Algorithm 1) or of the maximum optimal link flow (Algorithm 2).

This module factors those rules out so they can be swapped and ablated.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterator

import numpy as np

StepRule = Callable[[int], float]


@dataclass(frozen=True)
class ConstantStep:
    """Constant step size ``gamma_k = gamma``, the paper's default."""

    gamma: float

    def __call__(self, iteration: int) -> float:
        if self.gamma <= 0:
            raise ValueError("step size must be positive")
        return self.gamma


@dataclass(frozen=True)
class DiminishingStep:
    """Diminishing step ``gamma_k = gamma / (1 + k * decay)``.

    Satisfies the conditions of Theorem 4.1 (non-summable, vanishing).
    """

    gamma: float
    decay: float = 0.01

    def __call__(self, iteration: int) -> float:
        if self.gamma <= 0:
            raise ValueError("step size must be positive")
        if self.decay < 0:
            raise ValueError("decay must be non-negative")
        return self.gamma / (1.0 + self.decay * iteration)


@dataclass(frozen=True)
class SquareSummableStep:
    """Square-summable but not summable step ``gamma_k = gamma / (1 + k)``."""

    gamma: float

    def __call__(self, iteration: int) -> float:
        if self.gamma <= 0:
            raise ValueError("step size must be positive")
        return self.gamma / (1.0 + iteration)


def project_nonnegative(vector: np.ndarray) -> np.ndarray:
    """Euclidean projection onto the non-negative orthant, ``(z)_+``."""
    return np.maximum(vector, 0.0)


def default_step_for_capacities(capacities: np.ndarray, ratio: float = 1.0) -> ConstantStep:
    """The paper's Algorithm 1 default: ``ratio / max c_ij``."""
    max_capacity = float(np.max(capacities))
    if max_capacity <= 0:
        raise ValueError("capacities must be positive")
    return ConstantStep(ratio / max_capacity)


def default_step_for_flows(flows: np.ndarray, ratio: float = 1.0) -> ConstantStep:
    """The paper's Algorithm 2 default: ``ratio / max f*_ij``.

    Falls back to a unit step when the optimal flow is identically zero
    (empty traffic matrix), where any step converges immediately.
    """
    max_flow = float(np.max(flows)) if flows.size else 0.0
    if max_flow <= 0:
        return ConstantStep(ratio if ratio > 0 else 1.0)
    return ConstantStep(ratio / max_flow)


def step_sequence(rule: StepRule, count: int) -> Iterator[float]:
    """The first ``count`` step sizes produced by ``rule``."""
    for k in range(count):
        yield rule(k)
