"""Linear-programming multi-commodity flow solvers.

Two LPs from the paper's formulation are implemented on top of
:func:`scipy.optimize.linprog` (HiGHS backend):

* :func:`solve_min_cost_mcf` -- the minimum-cost multi-commodity flow problem
  (9), i.e. ``Network(G, c, D; w)`` after eliminating the spare capacity.
  With ``capacitated=False`` it reduces to independent shortest-path routing
  problems, which is the ``Route_t`` subproblem of Algorithm 1.

* :func:`solve_min_mlu` -- the min-max link utilization LP (2), the classic
  "optimal TE" baseline used in the Table I comparison.

Commodities are destinations (as in the paper), so the LP has
``|D| * |J|`` flow variables plus, for the MLU problem, one extra scalar.
Constraint matrices are assembled sparsely to keep the Rand100 topology
(392 links) tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network, Node
from ..network.incidence import demand_vector, incidence_matrix
from ..network.spt import WeightsLike, as_weight_vector


class SolverError(RuntimeError):
    """Raised when an optimization problem cannot be solved."""


@dataclass
class McfSolution:
    """Result of a multi-commodity flow LP."""

    flows: FlowAssignment
    objective: float
    #: Dual values of the link capacity constraints (one per link), when the
    #: LP backend exposes them.  For the min-cost MCF these are the shadow
    #: prices the paper interprets as link weights.
    capacity_duals: np.ndarray | None = None


def _stack_conservation(
    network: Network,
    demands: TrafficMatrix,
    destinations: list[Node],
) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Block-diagonal conservation constraints ``B f^t = d^t`` for all commodities.

    One (redundant) row per destination is dropped to keep the system full
    rank.
    """
    incidence = incidence_matrix(network)
    blocks = []
    rhs_parts = []
    for destination in destinations:
        keep = [i for i, node in enumerate(network.nodes) if node != destination]
        blocks.append(sparse.csr_matrix(incidence[keep, :]))
        rhs_parts.append(demand_vector(network, demands, destination)[keep])
    a_eq = sparse.block_diag(blocks, format="csr")
    b_eq = np.concatenate(rhs_parts)
    return a_eq, b_eq


def _capacity_matrix(num_links: int, num_commodities: int) -> sparse.csr_matrix:
    """Matrix summing per-commodity link flows into aggregate link flows."""
    eye = sparse.identity(num_links, format="csr")
    return sparse.hstack([eye] * num_commodities, format="csr")


def _extract_flows(
    network: Network,
    destinations: list[Node],
    solution: np.ndarray,
) -> FlowAssignment:
    flows = FlowAssignment(network=network)
    num_links = network.num_links
    for k, destination in enumerate(destinations):
        flows.per_destination[destination] = np.maximum(
            solution[k * num_links : (k + 1) * num_links], 0.0
        )
    return flows


def solve_min_cost_mcf(
    network: Network,
    demands: TrafficMatrix,
    weights: WeightsLike,
    capacitated: bool = True,
) -> McfSolution:
    """Solve the minimum-cost multi-commodity flow problem (9).

    Parameters
    ----------
    network, demands:
        The TE instance.
    weights:
        Link costs ``w_ij`` (per unit of flow).
    capacitated:
        When ``False`` the link capacity constraints are dropped, which turns
        the problem into independent per-destination shortest-path routing
        (the ``Route_t`` subproblem of Algorithm 1).

    Raises
    ------
    SolverError
        If the LP is infeasible (demands do not fit in the capacities) or the
        backend fails.
    """
    demands.validate(network)
    destinations = demands.destinations()
    if not destinations:
        return McfSolution(flows=FlowAssignment(network=network), objective=0.0)
    cost_vector = as_weight_vector(network, weights)
    num_links = network.num_links
    num_commodities = len(destinations)
    objective = np.tile(cost_vector, num_commodities)
    a_eq, b_eq = _stack_conservation(network, demands, destinations)
    a_ub = b_ub = None
    if capacitated:
        a_ub = _capacity_matrix(num_links, num_commodities)
        b_ub = network.capacities
    result = linprog(
        c=objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, None),
        method="highs",
    )
    if not result.success:
        raise SolverError(f"min-cost MCF LP failed: {result.message}")
    flows = _extract_flows(network, destinations, result.x)
    duals = None
    if capacitated and result.ineqlin is not None:
        # HiGHS reports marginals with a minus sign for <= constraints.
        duals = -np.asarray(result.ineqlin.marginals, dtype=float)
    return McfSolution(flows=flows, objective=float(result.fun), capacity_duals=duals)


def solve_min_mlu(
    network: Network,
    demands: TrafficMatrix,
    allow_overload: bool = False,
) -> McfSolution:
    """Solve the minimum maximum-link-utilization LP.

    Minimises ``r`` subject to ``sum_t f^t_ij <= r * c_ij`` and the flow
    conservation constraints.  The optimal ``r`` is the best achievable MLU
    with unconstrained (MPLS-style) routing.

    With ``allow_overload=False`` an extra constraint ``r <= 1`` makes the LP
    fail loudly when the demands simply do not fit.
    """
    demands.validate(network)
    destinations = demands.destinations()
    if not destinations:
        return McfSolution(flows=FlowAssignment(network=network), objective=0.0)
    num_links = network.num_links
    num_commodities = len(destinations)
    num_flow_vars = num_links * num_commodities
    # Variables: [f^t_ij ... , r]
    objective = np.zeros(num_flow_vars + 1)
    objective[-1] = 1.0

    a_eq, b_eq = _stack_conservation(network, demands, destinations)
    a_eq = sparse.hstack([a_eq, sparse.csr_matrix((a_eq.shape[0], 1))], format="csr")

    capacity = _capacity_matrix(num_links, num_commodities)
    ratio_col = sparse.csr_matrix(-network.capacities.reshape(-1, 1))
    a_ub = sparse.hstack([capacity, ratio_col], format="csr")
    b_ub = np.zeros(num_links)

    upper = None if allow_overload else 1.0
    bounds = [(0, None)] * num_flow_vars + [(0, upper)]
    result = linprog(
        c=objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise SolverError(f"min-MLU LP failed: {result.message}")
    flows = _extract_flows(network, destinations, result.x[:-1])
    return McfSolution(flows=flows, objective=float(result.x[-1]))


def solve_route_subproblem(
    network: Network,
    demands: TrafficMatrix,
    weights: WeightsLike,
    destination: Node,
) -> np.ndarray:
    """Solve ``Route_t(w; d^t)`` (15) for a single destination via LP.

    This is provided mostly for cross-checking: Algorithm 1 uses the much
    faster shortest-path all-or-nothing assignment, which produces an optimal
    basic solution of the same LP.
    """
    toward = demands.toward(destination)
    single = TrafficMatrix({(s, destination): v for s, v in toward.items()})
    solution = solve_min_cost_mcf(network, single, weights, capacitated=False)
    vector = solution.flows.per_destination.get(destination)
    if vector is None:
        return np.zeros(network.num_links)
    return vector
