"""Metrics: utilization, utility, load-balance criteria and path diversity."""

from ..core.objectives import normalized_utility
from .load_balance import (
    alternative_routings,
    is_min_max_balanced,
    is_qbeta_balanced,
    minimizes_mlu,
    perturbed_distributions,
    proportional_balance_score,
    spare_capacity,
)
from .paths import (
    average_path_diversity,
    equal_cost_path_counts,
    equal_cost_path_histogram,
    histogram_from_dags,
    multipath_pairs,
    used_link_count,
)
from .utilization import (
    UtilizationSummary,
    load_imbalance,
    max_link_utilization,
    overloaded_links,
    sorted_link_utilizations,
    underutilized_links,
    utilization_percentiles,
)

__all__ = [
    "normalized_utility",
    "alternative_routings",
    "is_min_max_balanced",
    "is_qbeta_balanced",
    "minimizes_mlu",
    "perturbed_distributions",
    "proportional_balance_score",
    "spare_capacity",
    "average_path_diversity",
    "equal_cost_path_counts",
    "equal_cost_path_histogram",
    "histogram_from_dags",
    "multipath_pairs",
    "used_link_count",
    "UtilizationSummary",
    "load_imbalance",
    "max_link_utilization",
    "overloaded_links",
    "sorted_link_utilizations",
    "underutilized_links",
    "utilization_percentiles",
]
