"""Link-utilization metrics used throughout the evaluation section."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.flows import FlowAssignment
from ..network.graph import Edge


def max_link_utilization(flows: FlowAssignment) -> float:
    """The MLU of a traffic distribution."""
    return flows.max_link_utilization()


def sorted_link_utilizations(flows: FlowAssignment, descending: bool = True) -> np.ndarray:
    """Link utilizations sorted (Fig. 9 plots these for OSPF vs SPEF)."""
    return flows.sorted_utilizations(descending=descending)


def utilization_percentiles(
    flows: FlowAssignment, percentiles: tuple[float, ...] = (50.0, 90.0, 99.0, 100.0)
) -> dict[float, float]:
    """Selected percentiles of the link-utilization distribution."""
    values = flows.utilization()
    if values.size == 0:
        return {p: 0.0 for p in percentiles}
    return {p: float(np.percentile(values, p)) for p in percentiles}


def overloaded_links(flows: FlowAssignment, threshold: float = 1.0) -> list[Edge]:
    """Links whose utilization reaches or exceeds ``threshold`` (default 100%)."""
    utilization = flows.utilization()
    return [
        link.endpoints
        for link in flows.network.links
        if utilization[link.index] >= threshold - 1e-12
    ]


def underutilized_links(flows: FlowAssignment, threshold: float = 0.1) -> list[Edge]:
    """Links carrying less than ``threshold`` of their capacity.

    The Fig. 9 discussion points out that OSPF leaves several links nearly
    idle while overloading others; this helper quantifies that.
    """
    utilization = flows.utilization()
    return [
        link.endpoints
        for link in flows.network.links
        if utilization[link.index] < threshold
    ]


def load_imbalance(flows: FlowAssignment) -> float:
    """Coefficient of variation of link utilization (0 = perfectly balanced)."""
    values = flows.utilization()
    if values.size == 0:
        return 0.0
    mean = float(np.mean(values))
    if mean <= 0:
        return 0.0
    return float(np.std(values) / mean)


@dataclass(frozen=True)
class UtilizationSummary:
    """Compact per-distribution utilization statistics for reports."""

    mlu: float
    mean: float
    median: float
    stddev: float
    overloaded: int
    underutilized: int

    @classmethod
    def of(cls, flows: FlowAssignment, idle_threshold: float = 0.1) -> UtilizationSummary:
        values = flows.utilization()
        if values.size == 0:
            return cls(0.0, 0.0, 0.0, 0.0, 0, 0)
        return cls(
            mlu=float(np.max(values)),
            mean=float(np.mean(values)),
            median=float(np.median(values)),
            stddev=float(np.std(values)),
            overloaded=int(np.sum(values >= 1.0 - 1e-12)),
            underutilized=int(np.sum(values < idle_threshold)),
        )
