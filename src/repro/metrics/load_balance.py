"""Load-balance criteria from Section II-B, as checkable predicates.

The paper defines a hierarchy of load-balance notions on traffic
distributions -- min-max, proportional, weighted proportional and the generic
(q, beta) criterion -- and proves (Theorem 3.3) that (q, beta) balance is
equivalent to optimality of the corresponding utility problem.  These
functions turn the definitions into executable checks used by the tests and
by the Table I benchmark: given a candidate distribution and a set of
alternative feasible distributions, they verify the defining inequalities.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..core.objectives import LoadBalanceObjective
from ..network.flows import FlowAssignment


def spare_capacity(flows: FlowAssignment) -> np.ndarray:
    """Spare capacity vector ``s = c - f`` of a traffic distribution."""
    return flows.spare_capacity()


def proportional_balance_score(
    candidate: FlowAssignment, other: FlowAssignment, q: float = 1.0, beta: float = 1.0
) -> float:
    """Left-hand side of the (q, beta) criterion (Eq. 4) for one alternative.

    Negative or zero means the alternative does not improve on the candidate
    in the (q, beta) sense.
    """
    objective = LoadBalanceObjective(beta=beta, q=q)
    return objective.verify_load_balance(
        candidate.network, candidate.spare_capacity(), other.spare_capacity()
    )


def is_qbeta_balanced(
    candidate: FlowAssignment,
    alternatives: Iterable[FlowAssignment],
    q: float = 1.0,
    beta: float = 1.0,
    tolerance: float = 1e-6,
) -> bool:
    """Check the (q, beta) proportional load-balance condition against alternatives.

    The definition quantifies over *all* feasible distributions; in practice
    we check it against a finite set of alternatives (e.g. perturbations or
    other protocols' outputs), which is what the tests and Table I use.
    """
    return all(
        proportional_balance_score(candidate, other, q=q, beta=beta) <= tolerance
        for other in alternatives
    )


def is_min_max_balanced(
    candidate: FlowAssignment,
    alternatives: Iterable[FlowAssignment],
    tolerance: float = 1e-9,
) -> bool:
    """Check the min-max load-balance definition against a set of alternatives.

    ``candidate`` is min-max balanced w.r.t. an alternative ``f`` when: for
    every link where ``f`` leaves more spare capacity than the candidate,
    there exists another link with utilization at least as high (under the
    candidate) whose spare capacity ``f`` decreases.
    """
    capacities = candidate.network.capacities
    candidate_spare = candidate.spare_capacity()
    candidate_util = 1.0 - candidate_spare / capacities
    for other in alternatives:
        other_spare = other.spare_capacity()
        improved = np.where(other_spare > candidate_spare + tolerance)[0]
        for index in improved:
            # Look for a link (u, v) with utilization >= that of `index` whose
            # spare capacity strictly decreases under the alternative.
            mask = (candidate_util >= candidate_util[index] - tolerance) & (
                other_spare < candidate_spare - tolerance
            )
            if not np.any(mask):
                return False
    return True


def minimizes_mlu(
    candidate: FlowAssignment,
    alternatives: Iterable[FlowAssignment],
    tolerance: float = 1e-9,
) -> bool:
    """True when no alternative achieves a strictly lower MLU."""
    candidate_mlu = candidate.max_link_utilization()
    return all(
        other.max_link_utilization() >= candidate_mlu - tolerance for other in alternatives
    )


def alternative_routings(network, demands, count: int = 3, seed: int = 0) -> list:
    """Feasible alternative traffic distributions for the same demands.

    The load-balance definitions quantify over *feasible* distributions, i.e.
    routings that carry the same demands.  This helper produces a handful of
    them by routing the demands with even ECMP under randomly perturbed link
    weights -- a cheap family of alternatives for exercising the criteria in
    tests.  (Note that scaling an existing distribution up or down does *not*
    yield a valid alternative: it would route different demand volumes.)
    """
    from ..solvers.assignment import ecmp_assignment

    rng = np.random.default_rng(seed)
    alternatives = []
    for _ in range(count):
        weights = 0.5 + rng.random(network.num_links)
        alternatives.append(ecmp_assignment(network, demands, weights))
    return alternatives


def perturbed_distributions(flows: FlowAssignment, magnitudes: Sequence[float] = (0.01, 0.05)) -> list:
    """Deprecated alias kept for backwards compatibility.

    Scaled-down copies of a distribution are *not* feasible alternatives for
    the load-balance criteria (they route less demand); use
    :func:`alternative_routings` instead.  This helper now only returns
    capacity-feasible scaled copies for tests that need them.
    """
    return [flows.scale(1.0 - magnitude) for magnitude in magnitudes if 0 < magnitude < 1]
