"""Path-diversity metrics (Table V of the paper).

Table V reports, for Cernet2 at several load levels, how many ingress-egress
pairs see 1, 2, 3 or 4 equal-cost shortest paths under SPEF's first weights,
compared with OSPF's InvCap weights.  These helpers compute that histogram for
any weight setting, and a few related diversity measures.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..network.graph import Network, Node
from ..network.spt import ShortestPathDag, WeightsLike, all_shortest_path_dags


def equal_cost_path_counts(
    network: Network,
    weights: WeightsLike,
    tolerance: float = 1e-9,
    destinations: list | None = None,
) -> dict[tuple, int]:
    """Number of equal-cost shortest paths for every ordered node pair."""
    if destinations is None:
        destinations = network.nodes
    dags = all_shortest_path_dags(network, destinations, weights, tolerance)
    counts: dict[tuple, int] = {}
    for destination, dag in dags.items():
        per_source = dag.count_paths()
        for source in network.nodes:
            if source == destination:
                continue
            counts[(source, destination)] = per_source.get(source, 0)
    return counts


def equal_cost_path_histogram(
    network: Network,
    weights: WeightsLike,
    tolerance: float = 1e-9,
    max_paths: int = 8,
    destinations: list | None = None,
) -> dict[int, int]:
    """``{i: number of ingress-egress pairs with i equal-cost paths}`` (Table V)."""
    counts = equal_cost_path_counts(network, weights, tolerance, destinations)
    histogram: dict[int, int] = {}
    for value in counts.values():
        bucket = min(value, max_paths)
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return histogram


def histogram_from_dags(dags: Mapping[Node, ShortestPathDag], network: Network, max_paths: int = 8) -> dict[int, int]:
    """Table V histogram computed from already-built DAGs (e.g. a SPEF solution)."""
    histogram: dict[int, int] = {}
    for destination, dag in dags.items():
        per_source = dag.count_paths()
        for source in network.nodes:
            if source == destination:
                continue
            bucket = min(per_source.get(source, 0), max_paths)
            histogram[bucket] = histogram.get(bucket, 0) + 1
    return histogram


def multipath_pairs(histogram: dict[int, int]) -> int:
    """Number of pairs with at least two equal-cost paths."""
    return sum(count for paths, count in histogram.items() if paths >= 2)


def average_path_diversity(
    network: Network, weights: WeightsLike, tolerance: float = 1e-9
) -> float:
    """Mean number of equal-cost paths over all ordered pairs."""
    counts = equal_cost_path_counts(network, weights, tolerance)
    if not counts:
        return 0.0
    return float(np.mean([max(value, 0) for value in counts.values()]))


def used_link_count(mean_link_load: Mapping[tuple, float], threshold: float = 1e-6) -> int:
    """How many links carry load above ``threshold`` (the Fig. 11 comparison)."""
    # repro: allow[REP004] integer count: the accumulation is order-free.
    return sum(1 for load in mean_link_load.values() if load > threshold)
