"""Scenario engine: failure sweeps, demand ensembles and a cached batch runner.

This subsystem generalises the paper's one-topology / one-matrix evaluation
(Section V) into *scenario sets* — families of perturbed ``(Network,
TrafficMatrix)`` instances — and evaluates any registered protocol across
them in parallel with an on-disk result cache:

* :mod:`~repro.scenarios.scenario` — the declarative :class:`Scenario`
  model and fingerprints;
* :mod:`~repro.scenarios.generators` — deterministic failure sweeps and
  demand-uncertainty ensembles;
* :mod:`~repro.scenarios.runner` — :class:`BatchRunner`
  (``ProcessPoolExecutor`` + chunked dispatch + :class:`ResultCache`);
* :mod:`~repro.scenarios.robustness` — distributional metrics (worst case,
  CVaR, regret vs. a re-optimised oracle).
"""

from .generators import (
    baseline_scenario,
    capacity_degradations,
    dual_link_failures,
    gravity_noise_ensemble,
    hotspot_surge_ensemble,
    node_failures,
    single_link_failures,
    standard_scenario_suite,
    uniform_scaling_ensemble,
)
from .robustness import (
    cvar,
    distribution_summary,
    group_by_protocol,
    metric_values,
    regret_rows,
    robustness_summary,
    worst_case,
)
from .runner import (
    PROTOCOL_REGISTRY,
    BatchRunner,
    ProtocolSpec,
    ResultCache,
    RunnerError,
    RunStats,
    ScenarioResult,
    default_cache_dir,
    evaluate_scenario,
    evaluate_scenarios,
    incremental_sweep_weights,
    register_protocol,
)
from .scenario import (
    Scenario,
    ScenarioError,
    ScenarioInstance,
    combine,
    demands_fingerprint,
    network_fingerprint,
)

__all__ = [
    "Scenario",
    "ScenarioError",
    "ScenarioInstance",
    "combine",
    "network_fingerprint",
    "demands_fingerprint",
    "baseline_scenario",
    "single_link_failures",
    "dual_link_failures",
    "node_failures",
    "capacity_degradations",
    "uniform_scaling_ensemble",
    "gravity_noise_ensemble",
    "hotspot_surge_ensemble",
    "standard_scenario_suite",
    "BatchRunner",
    "ProtocolSpec",
    "ResultCache",
    "RunnerError",
    "RunStats",
    "ScenarioResult",
    "PROTOCOL_REGISTRY",
    "register_protocol",
    "default_cache_dir",
    "evaluate_scenario",
    "evaluate_scenarios",
    "incremental_sweep_weights",
    "cvar",
    "distribution_summary",
    "group_by_protocol",
    "metric_values",
    "regret_rows",
    "robustness_summary",
    "worst_case",
]
