"""Robustness metrics over scenario sweep results.

The paper reports point metrics (MLU, normalised utility) on single
instances; across a scenario set the interesting quantities are
*distributional*:

* :func:`distribution_summary` — min / mean / median / tail quantile / max
  of a metric across scenarios;
* :func:`worst_case` and :func:`cvar` — the adversarial view: the single
  worst scenario and the mean of the worst ``alpha``-tail (Conditional
  Value at Risk, the standard risk measure for "how bad are the bad cases");
* :func:`regret_rows` — per-scenario regret of a protocol against an oracle
  re-optimised for that scenario (e.g. the min-max LP, or SPEF refit on the
  perturbed instance).  Regret isolates *routing* robustness from scenario
  difficulty: a failure can raise everyone's MLU, but only regret shows how
  much of the pain was avoidable.
* :func:`robustness_summary` — one row per protocol combining all of the
  above, the table printed by ``examples/failure_sweep.py`` and the
  scenario benchmarks.

All functions accept the flat :class:`~repro.scenarios.runner.ScenarioResult`
lists the batch runner returns and use only finite, feasible entries for
averages while always surfacing infeasible counts — silently averaging away
a scenario a protocol cannot route would be exactly the wrong kind of
optimism.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from .runner import ScenarioResult


def metric_values(results: Iterable[ScenarioResult], metric: str = "mlu") -> np.ndarray:
    """The per-scenario values of ``metric`` (``"mlu"`` or ``"utility"``)."""
    if metric not in ("mlu", "utility"):
        raise ValueError(f"unknown metric {metric!r}; expected 'mlu' or 'utility'")
    return np.array([getattr(r, metric) for r in results], dtype=float)


def distribution_summary(values: Sequence[float], tail: float = 0.9) -> dict[str, float]:
    """Min/mean/median/quantile/max of a metric distribution.

    Non-finite entries (overloaded or unroutable scenarios) are excluded
    from the moments but counted in ``num_infinite``.
    """
    data = np.asarray(list(values), dtype=float)
    finite = data[np.isfinite(data)]
    if finite.size == 0:
        nan = float("nan")
        return {
            "count": float(data.size),
            "num_infinite": float(data.size),
            "min": nan,
            "mean": nan,
            "median": nan,
            f"p{int(round(tail * 100))}": nan,
            "max": nan,
        }
    return {
        "count": float(data.size),
        "num_infinite": float(data.size - finite.size),
        "min": float(np.min(finite)),
        "mean": float(np.mean(finite)),
        "median": float(np.median(finite)),
        f"p{int(round(tail * 100))}": float(np.quantile(finite, tail)),
        "max": float(np.max(finite)),
    }


def worst_case(
    results: Sequence[ScenarioResult], metric: str = "mlu"
) -> ScenarioResult | None:
    """The single worst scenario (highest MLU / lowest utility).

    Infeasible results (infinite metric) dominate: if a protocol fails to
    route some scenario, that *is* its worst case.
    """
    results = list(results)
    if not results:
        return None
    if metric == "utility":
        return min(results, key=lambda r: r.utility)
    return max(results, key=lambda r: r.mlu)


def cvar(values: Sequence[float], alpha: float = 0.1, worst_high: bool = True) -> float:
    """Conditional Value at Risk: the mean of the worst ``alpha`` fraction.

    With ``worst_high`` (the MLU convention) the top ``alpha`` tail is
    averaged; for utilities pass ``worst_high=False`` to average the bottom
    tail.  At least one value is always included, so ``cvar(values, 0)``
    degenerates to the worst case.  Infinite values stay infinite — CVaR is
    the one aggregate that must *not* forget unroutable scenarios.
    """
    if not 0 <= alpha <= 1:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return float("nan")
    k = max(1, int(math.ceil(alpha * data.size)))
    ordered = np.sort(data)
    tail = ordered[-k:] if worst_high else ordered[:k]
    return float(np.mean(tail))


def regret_rows(
    results: Sequence[ScenarioResult],
    oracle: Sequence[ScenarioResult],
    metric: str = "mlu",
) -> list[dict[str, object]]:
    """Per-scenario regret of ``results`` against a re-optimised oracle.

    Results are matched by ``scenario_id``; for MLU the regret is the ratio
    ``mlu / oracle_mlu`` (1.0 = as good as re-optimising for the failure),
    for utility it is the difference ``oracle_utility - utility``.
    Scenarios missing from the oracle are skipped; scenarios where the
    *oracle itself* failed (non-finite reference) get ``regret = nan`` —
    regret against a broken yardstick is undefined, not zero.
    """
    by_id = {r.scenario_id: r for r in oracle}
    rows: list[dict[str, object]] = []
    for result in results:
        reference = by_id.get(result.scenario_id)
        if reference is None:
            continue
        if metric == "utility":
            regret = (
                reference.utility - result.utility
                if math.isfinite(reference.utility)
                else float("nan")
            )
        elif not math.isfinite(reference.mlu):
            regret = float("nan")
        else:
            regret = (
                result.mlu / reference.mlu
                if reference.mlu > 0
                else (1.0 if result.mlu == 0 else float("inf"))
            )
        rows.append(
            {
                "scenario": result.scenario_id,
                "kind": result.kind,
                "protocol": result.protocol,
                "oracle": reference.protocol,
                metric: result.mlu if metric == "mlu" else result.utility,
                f"oracle_{metric}": reference.mlu if metric == "mlu" else reference.utility,
                "regret": regret,
            }
        )
    return rows


def group_by_protocol(
    results: Iterable[ScenarioResult],
) -> dict[str, list[ScenarioResult]]:
    """Bucket a flat result list by protocol display name (order preserved)."""
    groups: dict[str, list[ScenarioResult]] = {}
    for result in results:
        groups.setdefault(result.protocol, []).append(result)
    return groups


def robustness_summary(
    results: Sequence[ScenarioResult],
    metric: str = "mlu",
    cvar_alpha: float = 0.1,
    oracle: Sequence[ScenarioResult] | None = None,
) -> list[dict[str, object]]:
    """One summary row per protocol: distribution, worst case, CVaR, regret.

    This is the headline robustness table.  ``oracle`` (typically a
    re-optimised MinMaxMLU or SPEF sweep from the same runner call) adds a
    mean-regret column when provided.
    """
    worst_high = metric != "utility"
    rows: list[dict[str, object]] = []
    for protocol, group in group_by_protocol(results).items():
        values = metric_values(group, metric)
        summary = distribution_summary(values)
        worst = worst_case(group, metric)
        row: dict[str, object] = {
            "protocol": protocol,
            "scenarios": int(summary["count"]),
            "infeasible": int(summary["num_infinite"]),
            f"mean_{metric}": summary["mean"],
            f"median_{metric}": summary["median"],
            f"worst_{metric}": getattr(worst, metric) if worst else float("nan"),
            "worst_scenario": worst.scenario_id if worst else "",
            f"cvar{int(round(cvar_alpha * 100)):02d}_{metric}": cvar(
                values, cvar_alpha, worst_high=worst_high
            ),
            "dropped_volume": float(sum(r.dropped_volume for r in group)),
        }
        if oracle is not None:
            regrets = [float(r["regret"]) for r in regret_rows(group, oracle, metric)]
            finite = [r for r in regrets if math.isfinite(r)]
            # Unroutable scenarios must not be averaged away: the mean covers
            # the finite cases, the max propagates infinity (a NaN from a
            # broken oracle must not swallow it), and the count makes the
            # infeasible cells explicit.
            row["mean_regret"] = float(np.mean(finite)) if finite else float("nan")
            if any(r == float("inf") for r in regrets):
                row["max_regret"] = float("inf")
            else:
                row["max_regret"] = float(np.max(finite)) if finite else float("nan")
            row["infinite_regret"] = sum(1 for r in regrets if r == float("inf"))
        rows.append(row)
    return rows
