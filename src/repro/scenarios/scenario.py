"""Declarative network/demand perturbations (the *what-if* instances).

The paper evaluates SPEF on a handful of static topologies with one traffic
matrix per figure (Section V).  Real traffic engineering has to survive link
and node failures, maintenance windows and demand uncertainty, so this module
introduces :class:`Scenario`: an immutable, picklable *description* of a
perturbation that can be applied to any ``(Network, TrafficMatrix)`` pair.

Keeping scenarios declarative (rather than storing perturbed networks) has
three payoffs:

* they are tiny, hashable and cheap to ship to worker processes;
* the same scenario set can be replayed against several base instances;
* a stable :meth:`Scenario.fingerprint` makes them usable as cache keys for
  the batch runner (:mod:`repro.scenarios.runner`).

A scenario can fail directed links, fail nodes (all incident links), scale
individual link capacities, and rescale demands globally or per pair.
Applying it yields a :class:`ScenarioInstance` wrapping the perturbed network
and traffic matrix; demands whose endpoints become disconnected are dropped
and accounted for in :attr:`ScenarioInstance.dropped_volume`, mirroring how a
real network simply loses traffic it can no longer deliver.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

import networkx as nx

from ..network.demands import Pair, TrafficMatrix
from ..network.graph import Edge, Network, Node


class ScenarioError(ValueError):
    """Raised for malformed scenarios (unknown links, negative factors, ...)."""


@dataclass(frozen=True)
class Scenario:
    """An immutable description of one what-if perturbation.

    Attributes
    ----------
    scenario_id:
        Stable human-readable identifier, e.g. ``"link:5-6"``.  Scenario ids
        are unique within one generated set and appear in reports.
    kind:
        Scenario family (``"baseline"``, ``"link-failure"``,
        ``"node-failure"``, ``"capacity"``, ``"demand"``, ``"compound"``).
    failed_links:
        Directed links removed from the network.
    failed_nodes:
        Nodes whose incident links (both directions) are all removed.  The
        node itself stays in the graph so node indexing is preserved.
    capacity_factors:
        Per-link capacity multipliers ``((u, v), factor)``.  A factor of 0
        removes the link (equivalent to failing it).
    demand_scale:
        Uniform multiplier applied to every demand.
    demand_factors:
        Per-pair demand multipliers ``((s, t), factor)`` applied on top of
        ``demand_scale``.
    seed:
        The seed of the generator that produced this scenario (metadata used
        for provenance; it does not influence :meth:`apply`).
    """

    scenario_id: str
    kind: str = "baseline"
    failed_links: tuple[Edge, ...] = ()
    failed_nodes: tuple[Node, ...] = ()
    capacity_factors: tuple[tuple[Edge, float], ...] = ()
    demand_scale: float = 1.0
    demand_factors: tuple[tuple[Pair, float], ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.demand_scale < 0:
            raise ScenarioError(f"demand scale must be non-negative, got {self.demand_scale}")
        for _, factor in self.capacity_factors:
            if factor < 0:
                raise ScenarioError(f"capacity factor must be non-negative, got {factor}")
        for _, factor in self.demand_factors:
            if factor < 0:
                raise ScenarioError(f"demand factor must be non-negative, got {factor}")

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """A stable hash of everything that influences :meth:`apply`.

        The fingerprint is what the batch runner's on-disk cache keys on, so
        it covers the perturbation fields (and the id/kind for auditability)
        but deliberately ignores ``seed``, which is provenance metadata.
        """
        payload = {
            "id": self.scenario_id,
            "kind": self.kind,
            "failed_links": sorted(repr(edge) for edge in self.failed_links),
            "failed_nodes": sorted(repr(node) for node in self.failed_nodes),
            "capacity_factors": sorted(
                (repr(edge), round(float(f), 12)) for edge, f in self.capacity_factors
            ),
            "demand_scale": round(float(self.demand_scale), 12),
            "demand_factors": sorted(
                (repr(pair), round(float(f), 12)) for pair, f in self.demand_factors
            ),
        }
        return _sha256(payload)

    def is_baseline(self) -> bool:
        """True when the scenario leaves network and demands untouched."""
        return (
            not self.failed_links
            and not self.failed_nodes
            and not self.capacity_factors
            and not self.demand_factors
            and self.demand_scale == 1.0
        )

    def perturbs_topology(self) -> bool:
        """True when applying the scenario can change the *network*.

        Demand-only scenarios (``perturbs_topology() is False``) reproduce
        the base topology exactly, which lets the batch runner route them
        against one compiled weight setting in a single stacked operation.
        """
        return bool(self.failed_links or self.failed_nodes or self.capacity_factors)

    def with_id(self, scenario_id: str) -> Scenario:
        return replace(self, scenario_id=scenario_id)

    def merged_capacity_factors(self) -> dict[Edge, float]:
        """Per-edge capacity multipliers with duplicates merged multiplicatively.

        The single source of truth for how ``capacity_factors`` listing the
        same edge twice compose (e.g. after :func:`combine`): :meth:`apply`
        and the online controller's event converter
        (:func:`repro.online.events.scenario_events`) both use it, so a
        twice-listed edge degrades by the *product* of its factors on every
        evaluation path.
        """
        factors: dict[Edge, float] = {}
        for edge, factor in self.capacity_factors:
            factors[edge] = factors.get(edge, 1.0) * factor
        return factors

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, network: Network, demands: TrafficMatrix) -> ScenarioInstance:
        """Materialise the perturbed ``(Network, TrafficMatrix)`` pair.

        Demands between pairs that the perturbed network can no longer
        connect are dropped (their volume is reported, not routed); a
        protocol evaluated on the instance therefore always sees a routable
        workload, and robustness metrics can penalise the lost traffic
        separately.
        """
        removed: set[Edge] = set(self.failed_links)
        dead_nodes: set[Node] = set(self.failed_nodes)
        factors: dict[Edge, float] = self.merged_capacity_factors()

        for edge in removed | set(factors):
            if not network.has_link(*edge):
                raise ScenarioError(f"scenario {self.scenario_id!r}: unknown link {edge}")
        for node in dead_nodes:
            if not network.has_node(node):
                raise ScenarioError(f"scenario {self.scenario_id!r}: unknown node {node!r}")

        # A factor whose scaled capacity lands at (or below) zero is an
        # *explicit link failure*, not a silent drop: the online controller
        # applies the identical conversion (CapacityChange with capacity
        # <= 0 -> LinkFailure), so the cold and incremental paths can never
        # disagree about what a dead link means.
        for link in network.links:
            edge = link.endpoints
            if edge in factors and link.capacity * factors[edge] <= 0:
                removed.add(edge)

        perturbed = Network(name=f"{network.name}/{self.scenario_id}")
        for node in network.nodes:
            perturbed.add_node(node)
        for link in network.links:
            edge = link.endpoints
            if edge in removed or link.source in dead_nodes or link.target in dead_nodes:
                continue
            perturbed.add_link(
                link.source, link.target, link.capacity * factors.get(edge, 1.0), link.delay
            )

        factor_map: dict[Pair, float] = {}
        for pair, factor in self.demand_factors:
            factor_map[pair] = factor_map.get(pair, 1.0) * factor

        reachable = _reachability(perturbed, demands)
        kept: dict[Pair, float] = {}
        dropped_volume = 0.0
        dropped_pairs: list[Pair] = []
        for pair, volume in demands.items():
            scaled = volume * self.demand_scale * factor_map.get(pair, 1.0)
            if scaled <= 0:
                continue
            source, target = pair
            if source in dead_nodes or target in dead_nodes or target not in reachable.get(source, ()):
                dropped_volume += scaled
                dropped_pairs.append(pair)
            else:
                kept[pair] = scaled

        return ScenarioInstance(
            scenario=self,
            network=perturbed,
            demands=TrafficMatrix(kept),
            dropped_volume=dropped_volume,
            dropped_pairs=tuple(dropped_pairs),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Scenario({self.scenario_id}, kind={self.kind})"


@dataclass
class ScenarioInstance:
    """A scenario applied to a concrete base instance.

    Attributes
    ----------
    scenario:
        The :class:`Scenario` that produced this instance.
    network, demands:
        The perturbed network and the routable part of the perturbed demands.
    dropped_volume:
        Demand volume lost because the perturbed network disconnects its
        endpoints (0 for pure demand scenarios on connected networks).
    dropped_pairs:
        The disconnected source-destination pairs.
    """

    scenario: Scenario
    network: Network
    demands: TrafficMatrix
    dropped_volume: float = 0.0
    dropped_pairs: tuple[Pair, ...] = field(default_factory=tuple)

    @property
    def fully_connected(self) -> bool:
        """True when no demand had to be dropped."""
        return not self.dropped_pairs


def combine(first: Scenario, second: Scenario, scenario_id: str | None = None) -> Scenario:
    """Compose two scenarios (e.g. a link failure under a demand surge).

    Perturbations are merged field-wise; multiplicative factors compose, and
    the result's kind is ``"compound"`` unless the kinds already match.
    """
    return Scenario(
        scenario_id=scenario_id or f"{first.scenario_id}+{second.scenario_id}",
        kind=first.kind if first.kind == second.kind else "compound",
        failed_links=tuple(dict.fromkeys(first.failed_links + second.failed_links)),
        failed_nodes=tuple(dict.fromkeys(first.failed_nodes + second.failed_nodes)),
        capacity_factors=first.capacity_factors + second.capacity_factors,
        demand_scale=first.demand_scale * second.demand_scale,
        demand_factors=first.demand_factors + second.demand_factors,
        seed=first.seed if first.seed is not None else second.seed,
    )


# ----------------------------------------------------------------------
# fingerprints of the base instance (shared with the runner's cache keys)
# ----------------------------------------------------------------------
def network_fingerprint(network: Network) -> str:
    """A stable hash of a network's topology, capacities and delays."""
    payload = {
        "name": network.name,
        "nodes": [repr(node) for node in network.nodes],
        "links": [
            (repr(link.source), repr(link.target), round(link.capacity, 12), round(link.delay, 12))
            for link in network.links
        ],
    }
    return _sha256(payload)


def demands_fingerprint(demands: TrafficMatrix) -> str:
    """A stable hash of a traffic matrix (order independent)."""
    payload = sorted((repr(pair), round(float(volume), 12)) for pair, volume in demands.items())
    return _sha256(payload)


def _sha256(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _reachability(network: Network, demands: TrafficMatrix) -> dict[Node, set[Node]]:
    """Reachable node sets for every demand source on ``network``."""
    graph = nx.DiGraph()
    graph.add_nodes_from(network.nodes)
    graph.add_edges_from(network.edges)
    reachable: dict[Node, set[Node]] = {}
    for source in demands.sources():
        if graph.has_node(source):
            reachable[source] = nx.descendants(graph, source)
    return reachable
