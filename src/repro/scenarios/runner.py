"""Cached parallel batch evaluation of protocols over scenario sets.

The evaluation loop of the paper — route one matrix on one topology, read off
MLU and utility — becomes, at scenario scale, an embarrassingly parallel
batch job: |scenarios| x |protocols| independent routing problems.  This
module provides the machinery to run that batch fast and repeatably:

* :class:`ProtocolSpec` — a picklable, hashable *description* of a protocol
  (registry name + constructor parameters).  Specs, not protocol instances,
  travel to worker processes and into cache keys.
* :class:`ResultCache` — an on-disk store of :class:`ScenarioResult` records
  keyed by ``sha256(topology, demands, scenario, protocol)``; repeated sweeps
  (the common case while exploring) skip straight to cache hits.
* :class:`BatchRunner` — chunked dispatch over a ``ProcessPoolExecutor``
  with a serial fast path, cache-aware scheduling (hits never reach a
  worker) and per-run statistics.

Worker payloads are ``(network, demands, scenarios, spec)`` tuples; the
scenario is applied *inside* the worker so only the small base instance and
the declarative scenarios cross the process boundary.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from ..core.objectives import normalized_utility
from ..network.demands import TrafficMatrix
from ..network.graph import Network
from ..obs import telemetry
from ..protocols.base import RoutingProtocol
from ..protocols.fortz_thorup import FortzThorup
from ..protocols.minmax_mlu import MinMaxMLU
from ..protocols.ospf import OSPF, MinHopOSPF
from ..protocols.peft import PEFT
from ..protocols.spef_protocol import SPEFProtocol
from .scenario import Scenario, ScenarioInstance, _sha256, demands_fingerprint, network_fingerprint


class RunnerError(ValueError):
    """Raised for malformed runner inputs (unknown protocols, bad specs...)."""


# ----------------------------------------------------------------------
# protocol specs
# ----------------------------------------------------------------------
def _make_spef(beta: float | None = None, **overrides) -> RoutingProtocol:
    if beta is not None:
        return SPEFProtocol.with_beta(beta, **overrides)
    return SPEFProtocol(**overrides)


#: Registry of protocol factories the runner can instantiate by name.
PROTOCOL_REGISTRY: dict[str, Callable[..., RoutingProtocol]] = {
    "OSPF": OSPF,
    "MinHopOSPF": MinHopOSPF,
    "SPEF": _make_spef,
    "PEFT": PEFT,
    "FortzThorup": FortzThorup,
    "MinMaxMLU": MinMaxMLU,
}


def register_protocol(name: str, factory: Callable[..., RoutingProtocol]) -> None:
    """Register a protocol factory for use in :class:`ProtocolSpec`.

    Registration must happen at import time of a module available to worker
    processes, otherwise parallel runs cannot rebuild the protocol.
    """
    PROTOCOL_REGISTRY[name] = factory


@dataclass(frozen=True)
class ProtocolSpec:
    """A declarative, picklable recipe for building a routing protocol.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so specs are
    hashable and fingerprint deterministically.
    """

    protocol: str
    params: tuple[tuple[str, object], ...] = ()
    label: str | None = None

    @classmethod
    def of(
        cls,
        protocol: str | "ProtocolSpec",
        label: str | None = None,
        **params: object,
    ) -> ProtocolSpec:
        """Coerce a name (plus keyword parameters) into a spec."""
        if isinstance(protocol, ProtocolSpec):
            return protocol
        if protocol not in PROTOCOL_REGISTRY:
            raise RunnerError(
                f"unknown protocol {protocol!r}; known: {sorted(PROTOCOL_REGISTRY)}"
            )
        return cls(protocol=protocol, params=tuple(sorted(params.items())), label=label)

    @property
    def display_name(self) -> str:
        """The name used in results and reports."""
        if self.label:
            return self.label
        if self.params:
            rendered = ",".join(f"{k}={v}" for k, v in self.params)
            return f"{self.protocol}({rendered})"
        return self.protocol

    def build(self) -> RoutingProtocol:
        """Instantiate the protocol (called inside worker processes)."""
        try:
            factory = PROTOCOL_REGISTRY[self.protocol]
        except KeyError:
            raise RunnerError(
                f"unknown protocol {self.protocol!r}; known: {sorted(PROTOCOL_REGISTRY)}"
            ) from None
        return factory(**dict(self.params))

    def fingerprint(self) -> str:
        return _sha256(
            {
                "protocol": self.protocol,
                "params": [(k, repr(v)) for k, v in self.params],
            }
        )


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class ScenarioResult:
    """Headline metrics of one protocol on one scenario.

    ``mlu`` is infinite and ``feasible`` False when the protocol could not
    route the scenario at all (e.g. an LP failure); ``error`` then carries
    the exception text.  ``runtime`` and ``cached`` describe how the number
    was obtained, not what it is — they are excluded from equality-relevant
    reporting (:meth:`as_row`).
    """

    scenario_id: str
    kind: str
    protocol: str
    mlu: float
    utility: float
    routed_volume: float
    dropped_volume: float
    feasible: bool
    connected: bool
    runtime: float = 0.0
    #: Amortised share of one-off setup (controller construction) charged to
    #: this cell, reported *separately* from ``runtime`` so incremental and
    #: cold per-cell timings stay comparable in the results store.
    setup_runtime: float = 0.0
    cached: bool = False
    error: str | None = None

    def as_row(self) -> dict[str, object]:
        """The deterministic part of the result (for tables and comparisons)."""
        return {
            "scenario": self.scenario_id,
            "kind": self.kind,
            "protocol": self.protocol,
            "mlu": round(self.mlu, 6) if math.isfinite(self.mlu) else self.mlu,
            "utility": round(self.utility, 6) if math.isfinite(self.utility) else self.utility,
            "routed": round(self.routed_volume, 6),
            "dropped": round(self.dropped_volume, 6),
            "feasible": self.feasible,
            "connected": self.connected,
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "scenario_id": self.scenario_id,
            "kind": self.kind,
            "protocol": self.protocol,
            "mlu": self.mlu,
            "utility": self.utility,
            "routed_volume": self.routed_volume,
            "dropped_volume": self.dropped_volume,
            "feasible": self.feasible,
            "connected": self.connected,
            "runtime": self.runtime,
            "setup_runtime": self.setup_runtime,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> ScenarioResult:
        return cls(
            scenario_id=str(data["scenario_id"]),
            kind=str(data["kind"]),
            protocol=str(data["protocol"]),
            mlu=float(data["mlu"]),
            utility=float(data["utility"]),
            routed_volume=float(data["routed_volume"]),
            dropped_volume=float(data["dropped_volume"]),
            feasible=bool(data["feasible"]),
            connected=bool(data["connected"]),
            runtime=float(data.get("runtime", 0.0)),
            setup_runtime=float(data.get("setup_runtime", 0.0)),
            error=data.get("error"),  # type: ignore[arg-type]
        )


def evaluate_scenario(
    network: Network,
    demands: TrafficMatrix,
    scenario: Scenario,
    spec: ProtocolSpec,
) -> ScenarioResult:
    """Evaluate one (scenario, protocol) cell — the unit of batch work.

    Never raises: a broken cell — an inapplicable scenario (e.g. one built
    for a different topology) just as much as a routing failure — yields an
    infeasible result carrying the error text, so one pathological scenario
    cannot sink a thousand-cell sweep.
    """
    start = time.perf_counter()
    instance = None
    try:
        instance = scenario.apply(network, demands)
        if len(instance.demands) == 0:
            # Nothing left to route (everything dropped or scaled to zero):
            # an empty workload trivially fits, whatever the protocol.
            mlu, utility, feasible, error = 0.0, 0.0, True, None
        else:
            protocol = spec.build()
            flows = protocol.route(instance.network, instance.demands)
            utilization = flows.utilization()
            mlu = float(np.max(utilization)) if utilization.size else 0.0
            utility = normalized_utility(utilization) if utilization.size else 0.0
            feasible = bool(np.all(np.isfinite(utilization)))
            error = None
    except Exception as exc:  # noqa: BLE001 - worker boundary, reported in result
        mlu = float("inf")
        utility = float("-inf")
        feasible = False
        error = f"{type(exc).__name__}: {exc}"
    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        kind=scenario.kind,
        protocol=spec.display_name,
        mlu=mlu,
        utility=utility,
        routed_volume=instance.demands.total_volume() if instance else 0.0,
        dropped_volume=instance.dropped_volume if instance else 0.0,
        feasible=feasible,
        connected=instance.fully_connected if instance else False,
        runtime=time.perf_counter() - start,
        error=error,
    )


def _result_from_loads(
    scenario: Scenario,
    spec: ProtocolSpec,
    instance: ScenarioInstance,
    loads: np.ndarray,
    capacities: np.ndarray,
    runtime: float,
) -> ScenarioResult:
    """Assemble a :class:`ScenarioResult` from batched aggregate link loads."""
    utilization = loads / capacities
    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        kind=scenario.kind,
        protocol=spec.display_name,
        mlu=float(np.max(utilization)) if utilization.size else 0.0,
        utility=normalized_utility(utilization) if utilization.size else 0.0,
        routed_volume=instance.demands.total_volume(),
        dropped_volume=instance.dropped_volume,
        feasible=bool(np.all(np.isfinite(utilization))),
        connected=instance.fully_connected,
        runtime=runtime,
        error=None,
    )


def incremental_sweep_weights(
    protocol: RoutingProtocol | None, network: Network
) -> np.ndarray | None:
    """The weight vector an incremental failure sweep should use, or ``None``.

    Wraps :meth:`RoutingProtocol.ecmp_forwarding_weights` defensively: a
    protocol that cannot (or declines to) expose demand-independent ECMP
    weights simply keeps the cold per-cell path.
    """
    if protocol is None:
        return None
    try:
        return protocol.ecmp_forwarding_weights(network)
    except Exception:  # noqa: BLE001 - a broken hook means "cannot sweep"
        return None


def incremental_sweep_capacity_independent(
    protocol: RoutingProtocol | None, network: Network
) -> bool:
    """True when the protocol's sweep weights ignore link capacities.

    Capacity-degradation scenarios may only ride the incremental sweep for
    such protocols: capacity-derived defaults (Cisco InvCap) re-derive
    different weights on the degraded instance, so the cold and incremental
    paths would legitimately route differently.  Defensive like
    :func:`incremental_sweep_weights`: a broken hook means "not independent".
    """
    if protocol is None:
        return False
    try:
        return bool(protocol.capacity_independent_forwarding(network))
    except Exception:  # noqa: BLE001 - a broken hook means "cannot sweep"
        return False


def _incremental_eligible(scenario: Scenario, capacity_independent: bool = False) -> bool:
    """True for scenarios the online controller can replay as link events.

    Pure link/node failures are always eligible; scenarios carrying capacity
    factors additionally require the protocol's forwarding weights to be
    capacity-independent (see
    :func:`incremental_sweep_capacity_independent`).  A pure function of
    ``(spec, scenario)`` — never of cache state or chunking — so the
    route-flagged cache keys stay stable across runs.
    """
    from ..online.events import is_incremental_sweepable

    if not is_incremental_sweepable(scenario):
        return False
    if scenario.capacity_factors and not capacity_independent:
        return False
    return True


def _result_from_measurement(
    scenario: Scenario,
    spec: ProtocolSpec,
    measurement,
    runtime: float,
    setup_runtime: float = 0.0,
) -> ScenarioResult:
    """A :class:`ScenarioResult` from a controller measurement.

    Field-for-field equivalent to what :func:`evaluate_scenario` computes
    from a cold ``scenario.apply`` + route: the controller's load vector is
    base-indexed with zeros on failed links, and zero-utilization entries
    contribute nothing to MLU or ``sum log(1 - u)``.
    """
    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        kind=scenario.kind,
        protocol=spec.display_name,
        mlu=measurement.mlu,
        utility=measurement.utility,
        routed_volume=measurement.routed_volume,
        dropped_volume=measurement.dropped_volume,
        feasible=measurement.feasible,
        connected=measurement.connected,
        runtime=runtime,
        setup_runtime=setup_runtime,
        error=None,
    )


def evaluate_scenarios(
    network: Network,
    demands: TrafficMatrix,
    scenarios: Sequence[Scenario],
    spec: ProtocolSpec,
    controller_params: dict[str, object] | None = None,
    baseline: object | None = None,
) -> list[ScenarioResult]:
    """Evaluate one protocol across several scenarios, batching where safe.

    Two fast paths run before the per-cell fallback:

    * scenarios that do not perturb the topology (pure demand scenarios)
      share the base network, so protocols whose forwarding state depends
      only on the network (see :meth:`RoutingProtocol.batch_link_loads`)
      route all of them against one compiled weight setting in a single
      stacked operation;
    * topology-perturbing scenarios against an even-ECMP protocol with
      demand-independent weights (:meth:`RoutingProtocol.ecmp_forwarding_weights`)
      are replayed through the online :class:`~repro.online.TEController`
      as incremental apply → measure → revert events, so a failure or
      brown-out sweep pays one delta update per perturbed trunk instead of
      a full recompute per scenario.  Pure link/node failures always
      qualify; scenarios carrying capacity factors additionally need
      capacity-independent weights
      (:meth:`RoutingProtocol.capacity_independent_forwarding`), since
      capacity-derived defaults re-derive differently on the degraded
      instance.

    Everything else -- demand+topology compounds, per-cell errors,
    protocols that re-optimise per matrix -- falls back to
    :func:`evaluate_scenario`, preserving its per-cell error isolation
    exactly.

    ``controller_params`` (``max_affected_fraction``, ``verify``) tune the
    incremental sweep's :class:`~repro.online.TEController`.  They never
    change the *numbers* — every fallback is cold-identical — only how much
    incremental work is attempted, so they stay out of the cache keys.

    ``baseline`` is an optional
    :class:`~repro.online.controller.ControllerBaseline` snapshot (built
    once by the parent :class:`BatchRunner`): the sweep controller then
    adopts the compiled per-destination state instead of re-running a cold
    Dijkstra per destination, and even a lone eligible scenario rides the
    incremental path (without a baseline a lone candidate is cheaper cold).
    Adoption is best-effort — a mismatched or unusable snapshot falls back
    to a locally built controller.
    """
    scenarios = list(scenarios)
    results: list[ScenarioResult | None] = [None] * len(scenarios)

    try:
        probe: RoutingProtocol | None = spec.build()
    except Exception:  # noqa: BLE001 - reported per cell by evaluate_scenario
        probe = None

    batchable: list[int] = []
    instances: dict[int, ScenarioInstance] = {}
    batch_protocol = probe
    if batch_protocol is not None and len(scenarios) > 1:
        # Probe with an empty ensemble: non-batchable protocols return None
        # and we skip the (scenario.apply) scan entirely rather than
        # materialising every demand-only instance twice.
        try:
            if batch_protocol.batch_link_loads(network, []) is None:
                batch_protocol = None
        except Exception:  # noqa: BLE001 - treat a broken probe as non-batchable
            batch_protocol = None
    if batch_protocol is not None and len(scenarios) > 1:
        for index, scenario in enumerate(scenarios):
            if scenario.perturbs_topology():
                continue
            try:
                instance = scenario.apply(network, demands)
            except Exception:  # noqa: BLE001 - re-applied (and reported) per cell
                continue
            if len(instance.demands) == 0:
                continue  # the empty-workload shortcut stays on the per-cell path
            instances[index] = instance
            batchable.append(index)

    if len(batchable) > 1:
        loads: np.ndarray | None = None
        elapsed = 0.0
        try:
            start = time.perf_counter()
            loads = batch_protocol.batch_link_loads(
                network, [instances[index].demands for index in batchable]
            )
            elapsed = time.perf_counter() - start
        except Exception:  # noqa: BLE001 - batch is best-effort, fall back per cell
            loads = None
        if loads is not None and np.shape(loads) != (len(batchable), network.num_links):
            # A wrong-shaped return from a user-registered protocol must not
            # sink the sweep; treat it as "cannot batch" and go per cell.
            loads = None
        if loads is not None:
            capacities = network.capacities
            per_cell = elapsed / len(batchable)
            for row, index in enumerate(batchable):
                results[index] = _result_from_loads(
                    scenarios[index], spec, instances[index], loads[row], capacities, per_cell
                )

    sweep_weights = incremental_sweep_weights(probe, network)
    if sweep_weights is not None and len(demands):
        from ..online.controller import TEController
        from ..online.events import scenario_events

        capacity_independent = incremental_sweep_capacity_independent(probe, network)
        candidates: list[int] = []
        for index, scenario in enumerate(scenarios):
            if results[index] is not None or not _incremental_eligible(
                scenario, capacity_independent
            ):
                continue
            try:
                # Scenarios built for another topology fail loudly here and
                # keep the per-cell path, which reports the error in-result.
                scenario_events(network, scenario)
            except Exception:  # noqa: BLE001
                continue
            candidates.append(index)
        # A lone candidate is cheaper cold only when the controller must be
        # built from scratch: building it costs a full all-destination
        # baseline, which only amortises over several scenarios (mirrors the
        # demand-batch path's > 1 guard).  With a shared baseline snapshot
        # adoption is cheap, so even one candidate rides incrementally.
        if len(candidates) > 1 or (candidates and baseline is not None):
            try:
                start = time.perf_counter()
                controller = None
                if (
                    baseline is not None
                    and getattr(baseline, "demands", None) == dict(demands.items())
                    and np.array_equal(getattr(baseline, "weights", None), sweep_weights)
                ):
                    try:
                        controller = TEController.from_snapshot(
                            network,
                            baseline,
                            verify=bool((controller_params or {}).get("verify", False)),
                        )
                    except Exception:  # noqa: BLE001 - bad snapshot: build locally
                        controller = None
                if controller is None:
                    controller = TEController(
                        network,
                        demands,
                        weights=sweep_weights,
                        tolerance=getattr(probe, "ecmp_tolerance", 1e-9),
                        **(controller_params or {}),
                    )
                construction = time.perf_counter() - start
                start = time.perf_counter()
                measurements = controller.sweep_scenarios(
                    [scenarios[index] for index in candidates]
                )
                elapsed = time.perf_counter() - start
            except Exception:  # noqa: BLE001 - best-effort, fall back per cell
                measurements = None
            if measurements is not None:
                # Construction is the sweep's one-off amortised cost; charge
                # it to `setup_runtime`, not `runtime`, so a cell's runtime
                # measures the same thing on both evaluation paths.
                per_cell = elapsed / len(candidates)
                per_cell_setup = construction / len(candidates)
                for index, measurement in zip(candidates, measurements, strict=True):
                    results[index] = _result_from_measurement(
                        scenarios[index], spec, measurement, per_cell, per_cell_setup
                    )

    for index, scenario in enumerate(scenarios):
        if results[index] is None:
            results[index] = evaluate_scenario(network, demands, scenario, spec)
    return results  # type: ignore[return-value]


def _evaluate_chunk(
    payload: tuple[
        Network,
        TrafficMatrix,
        list[Scenario],
        ProtocolSpec,
        dict[str, object] | None,
        object | None,
    ],
) -> tuple[list[ScenarioResult], dict[str, object] | None]:
    """Worker entry point: evaluate a chunk of scenarios for one protocol.

    Returns ``(results, telemetry_snapshot)``.  When the parent run has
    telemetry active (``options["telemetry"]``), the worker activates a
    fresh registry around its chunk and ships the picklable snapshot back
    for the parent to :meth:`~repro.obs.TelemetryRegistry.merge`; otherwise
    the snapshot slot is ``None``.  ``baseline`` (the last payload slot) is
    the parent's shared :class:`~repro.online.controller.ControllerBaseline`
    for incremental-sweep specs, or ``None``.
    """
    network, demands, scenarios, spec, options, baseline = payload
    options = options or {}
    controller_params = options.get("controller")  # type: ignore[assignment]
    if not options.get("telemetry"):
        return (
            evaluate_scenarios(
                network,
                demands,
                scenarios,
                spec,
                controller_params=controller_params,
                baseline=baseline,
            ),
            None,
        )
    registry = telemetry.activate(
        telemetry.TelemetryRegistry(label=f"worker-{os.getpid()}")
    )
    try:
        with telemetry.span(
            "runner.chunk", protocol=spec.display_name, scenarios=len(scenarios)
        ):
            results = evaluate_scenarios(
                network,
                demands,
                scenarios,
                spec,
                controller_params=controller_params,
                baseline=baseline,
            )
        return results, registry.snapshot()
    finally:
        telemetry.deactivate()


def _telemetry_summary_record(
    topology: str, timings: dict[str, float]
) -> dict[str, object] | None:
    """Distil the active registry into manifest timings + one results record.

    The record rides the run under the reserved identity
    ``scenario="__telemetry__"`` and carries the incremental-vs-fallback
    counts with their per-reason breakdown; ``fallback_rate`` classifies as
    a *metric* in :func:`repro.results.diffing.classify_field`, so
    ``repro results diff`` hard-gates fallback-rate regressions between two
    traced runs, not just runtime drifts.  Returns ``None`` when telemetry
    is off or the run did no dynamic-SPT work (fully cached or cold-path
    runs must not grow a record that untraced runs lack).
    """
    registry = telemetry.get()
    if registry is None:
        return None
    incremental = registry.counter_value("dspt.update", path="incremental")
    fallbacks = registry.counter_breakdown("dspt.fallback")
    fallback_total = sum(fallbacks.values())
    attempts = incremental + fallback_total
    if not attempts:
        return None
    rate = fallback_total / attempts
    # Per-event rate alongside the historical per-update rate: the old
    # denominator counts per-destination update attempts, which understates
    # how many *events* abandoned the incremental path (see
    # :attr:`repro.online.dspt.DsptStats.event_fallback_rate`).
    events = registry.counter_value("dspt.events")
    fallback_events = registry.counter_value("dspt.fallback_events")
    event_rate = fallback_events / events if events else 0.0
    timings["dspt_fallback_rate"] = rate
    timings["dspt_event_fallback_rate"] = event_rate
    timings["dspt_incremental_updates"] = float(incremental)
    record: dict[str, object] = {
        "scenario": "__telemetry__",
        "kind": "telemetry",
        "protocol": "*",
        "topology": topology,
        "fallback_rate": round(rate, 6),
        "event_fallback_rate": round(event_rate, 6),
        "incremental_updates": int(incremental),
        "fallback_total": int(fallback_total),
        "fallback_events": int(fallback_events),
    }
    for tags, value in sorted(fallbacks.items()):
        reason = dict(tags).get("reason", "unknown").replace("-", "_")
        record[f"fallback_{reason}"] = int(value)
    return record


# ----------------------------------------------------------------------
# on-disk result cache
# ----------------------------------------------------------------------
#: Bump when the semantics of cached metrics change (invalidates old caches).
#: 2: routing moved to the vectorized sparse backend (float-round-off shifts).
#: 3: cache keys carry route flags (incremental failure sweeps vs cold), so
#:    results produced by different evaluation paths can never collide.
#: 4: the incremental sweep covers capacity-degradation and mixed scenarios
#:    (route flags now depend on the protocol's capacity independence), and
#:    factor-0 capacities are explicit link failures on both paths.
CACHE_VERSION = 4


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/scenarios``."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path.home() / ".cache" / "repro" / "scenarios"


class ResultCache:
    """A content-addressed store of scenario results (JSON file per key).

    Writes are atomic (tempfile + rename) so concurrent runners sharing a
    cache directory at worst duplicate work, never corrupt entries.  An
    in-memory layer absorbs repeated lookups within one process.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self._memory: dict[str, ScenarioResult] = {}

    @staticmethod
    def key(
        network_fp: str,
        demands_fp: str,
        scenario: Scenario,
        spec: ProtocolSpec,
        flags: dict[str, object] | None = None,
    ) -> str:
        return ResultCache.key_from_fingerprints(
            network_fp, demands_fp, scenario.fingerprint(), spec.fingerprint(), flags
        )

    @staticmethod
    def key_from_fingerprints(
        network_fp: str,
        demands_fp: str,
        scenario_fp: str,
        protocol_fp: str,
        flags: dict[str, object] | None = None,
    ) -> str:
        """Cache key from precomputed fingerprints (the batch fast path).

        ``flags`` partitions cells by their *designated* evaluation path
        (currently ``{"route": "incremental"}`` for cells eligible for the
        online controller's failure sweep) — a pure function of
        ``(spec, scenario)``, never of cache state or chunking, so keys are
        stable across runs.  Incremental-path and cold-path entries thus
        never share a key; the residual overlaps — the best-effort fallback
        (a controller failure mid-sweep re-evaluates the cell cold under
        its incremental key) and lone-candidate chunks (one eligible
        scenario is cheaper cold) — are safe because every configuration
        that flags incremental is result-equivalent on both paths
        (equivalence-tested to 1e-9).
        """
        from .. import __version__

        # The package version is part of the key so cached metrics never
        # survive a release that may have changed protocol implementations;
        # CACHE_VERSION covers semantic changes within a release cycle.
        payload = {
            "version": CACHE_VERSION,
            "package": __version__,
            "network": network_fp,
            "demands": demands_fp,
            "scenario": scenario_fp,
            "protocol": protocol_fp,
        }
        if flags:
            payload["flags"] = sorted((str(k), repr(v)) for k, v in flags.items())
        return _sha256(payload)

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directories small on big sweeps.
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> ScenarioResult | None:
        if key in self._memory:
            result = self._memory[key]
        else:
            path = self._path(key)
            try:
                result = ScenarioResult.from_dict(json.loads(path.read_text()))
            except (OSError, ValueError, KeyError, TypeError):
                # Unreadable, malformed or wrong-shaped entries (e.g. stray
                # files in a shared cache dir) are misses, never fatal.
                return None
            self._memory[key] = result
        hit = ScenarioResult.from_dict(result.to_dict())
        hit.cached = True
        return hit

    def put(self, key: str, result: ScenarioResult) -> None:
        self._memory[key] = result
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(result.to_dict(), sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def clear(self) -> int:
        """Remove every cached entry; returns the number of files deleted."""
        self._memory.clear()
        removed = 0
        if self.directory.exists():
            for path in self.directory.glob("*/*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))


# ----------------------------------------------------------------------
# batch runner
# ----------------------------------------------------------------------
@dataclass
class RunStats:
    """Bookkeeping of one :meth:`BatchRunner.run` call."""

    total: int = 0
    cache_hits: int = 0
    evaluated: int = 0
    chunks: int = 0
    workers: int = 0
    elapsed: float = 0.0
    #: One-off setup wall-clock of this run: shared-baseline builds in the
    #: parent plus controller construction inside chunks.  Equals the sum of
    #: ``setup_runtime`` over the run's evaluated (non-cached) results.
    setup_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0


class BatchRunner:
    """Evaluate protocols across scenario sets, in parallel and cached.

    Parameters
    ----------
    cache_dir:
        Directory of the on-disk result cache; ``None`` uses
        :func:`default_cache_dir`, ``False`` disables caching entirely.
    max_workers:
        Process pool size.  ``0`` or ``1`` evaluates serially in-process
        (no pool overhead — the right choice for small batches and tests);
        ``None`` uses ``os.cpu_count()``.
    chunk_size:
        Scenarios per worker task.  ``None`` auto-sizes to about four
        chunks per worker, which amortises dispatch overhead while keeping
        the pool load-balanced when scenario costs vary.
    results_store:
        A :class:`repro.results.ResultsStore` (or a path to one) to record
        every :meth:`run` into: a manifest (git sha, topology, protocols,
        scenario-set hash, ``CACHE_VERSION``, timings) plus one record per
        cell.  ``None`` (the default) records nothing.  The id of the most
        recent recorded run is available as :attr:`last_run_id`.

    Examples
    --------
    >>> from repro.topology.backbones import abilene_network
    >>> from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix
    >>> from repro.scenarios import single_link_failures
    >>> net = abilene_network()
    >>> tm = abilene_traffic_matrix(net, total_volume=50.0, seed=1)
    >>> runner = BatchRunner(cache_dir=False, max_workers=0)
    >>> results = runner.run(net, tm, single_link_failures(net), ["OSPF"])
    >>> len(results)
    14
    """

    def __init__(
        self,
        cache_dir: str | Path | None | bool = None,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        results_store: str | Path | object | None = None,
    ) -> None:
        if cache_dir is False:
            self.cache: ResultCache | None = None
        else:
            self.cache = ResultCache(None if cache_dir in (None, True) else cache_dir)
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.last_stats = RunStats()
        self.results_store = results_store
        self.last_run_id: str | None = None

    def run(
        self,
        network: Network,
        demands: TrafficMatrix,
        scenarios: Sequence[Scenario],
        protocols: Iterable[str | ProtocolSpec],
        record_config: dict[str, object] | None = None,
        controller_params: dict[str, object] | None = None,
    ) -> list[ScenarioResult]:
        """Evaluate every protocol on every scenario.

        Results are returned in ``(protocol, scenario)`` input order
        regardless of which worker (or cache entry) produced them.  When
        the runner has a :attr:`results_store`, the run is recorded there
        with a full manifest; ``record_config`` adds caller context (CLI
        arguments, workload parameters) to that manifest.
        ``controller_params`` tunes the incremental sweep's controller (see
        :func:`evaluate_scenarios`); with telemetry active
        (:func:`repro.obs.telemetry.session`), worker registries are merged
        back into the active one and a summary lands in the recorded run.
        """
        specs = [ProtocolSpec.of(p) for p in protocols]
        scenarios = list(scenarios)
        start = time.perf_counter()
        stats = RunStats(total=len(specs) * len(scenarios))

        network_fp = network_fingerprint(network)
        demands_fp = demands_fingerprint(demands)
        # Fingerprints are hashed once per scenario/spec, not once per cell.
        scenario_fps = [scenario.fingerprint() for scenario in scenarios]
        spec_fps = [spec.fingerprint() for spec in specs]
        # Which specs can ride the incremental sweep: their eligible cells
        # get a route flag in the cache key, so incremental and cold results
        # never share an entry.  Eligibility is a pure function of
        # (spec, scenario) — never of which other cells hit the cache — so
        # keys are stable across runs and chunkings.  Capacity-bearing
        # scenarios additionally require capacity-independent weights.
        incremental_spec = []
        cap_independent_spec = []
        spec_sweep_weights: list[np.ndarray | None] = []
        spec_tolerance: list[float] = []
        for spec in specs:
            try:
                probe = spec.build()
            except Exception:  # noqa: BLE001 - broken specs error per cell
                probe = None
            sweep_weights = incremental_sweep_weights(probe, network)
            spec_sweep_weights.append(sweep_weights)
            spec_tolerance.append(float(getattr(probe, "ecmp_tolerance", 1e-9)))
            incremental_spec.append(sweep_weights is not None)
            cap_independent_spec.append(
                incremental_sweep_capacity_independent(probe, network)
            )

        def cell_incremental(si: int, ci: int) -> bool:
            return incremental_spec[si] and _incremental_eligible(
                scenarios[ci], cap_independent_spec[si]
            )

        # Resolve cache hits up front so only misses reach the pool.
        results: dict[tuple[int, int], ScenarioResult] = {}
        misses: list[tuple[int, int]] = []
        keys: dict[tuple[int, int], str] = {}
        for si, _spec in enumerate(specs):
            for ci, _scenario in enumerate(scenarios):
                cell = (si, ci)
                if self.cache is not None:
                    flags = (
                        {"route": "incremental"} if cell_incremental(si, ci) else None
                    )
                    key = ResultCache.key_from_fingerprints(
                        network_fp, demands_fp, scenario_fps[ci], spec_fps[si], flags
                    )
                    keys[cell] = key
                    hit = self.cache.get(key)
                    if hit is not None:
                        results[cell] = hit
                        stats.cache_hits += 1
                        continue
                misses.append(cell)

        stats.evaluated = len(misses)
        workers = self._effective_workers(len(misses))
        stats.workers = workers
        #: Cells designated for the incremental sweep, per spec — the
        #: amortisation base for shared-baseline setup.
        designated: dict[int, list[tuple[int, int]]] = {}
        for cell in misses:
            if cell_incremental(*cell):
                designated.setdefault(cell[0], []).append(cell)
        parent_setup: dict[int, float] = {}
        baselines: dict[int, object] = {}
        if telemetry.enabled():
            telemetry.count("runner.cells", stats.cache_hits, outcome="cache-hit")
            telemetry.count("runner.cells", len(misses), outcome="evaluated")
        if misses:
            options: dict[str, object] | None = None
            if controller_params or telemetry.enabled():
                options = {
                    "controller": controller_params,
                    "telemetry": telemetry.enabled(),
                }
            if workers <= 1:
                # Serial path: group by protocol so demand-only scenarios can
                # share one compiled weight setting (see evaluate_scenarios).
                by_spec: dict[int, list[tuple[int, int]]] = {}
                for cell in misses:
                    by_spec.setdefault(cell[0], []).append(cell)
                for si, cells in by_spec.items():
                    with telemetry.span(
                        "runner.chunk",
                        protocol=specs[si].display_name,
                        scenarios=len(cells),
                    ):
                        chunk_results = evaluate_scenarios(
                            network,
                            demands,
                            [scenarios[ci] for _, ci in cells],
                            specs[si],
                            controller_params=controller_params,
                        )
                    for cell, result in zip(cells, chunk_results, strict=True):
                        results[cell] = result
            else:
                # Build the compiled baseline once in the parent for every
                # incremental-sweep spec whose shards would otherwise each
                # pay a cold all-destination controller build; workers adopt
                # the pickled snapshot via TEController.from_snapshot.
                from ..online.controller import TEController

                for si, cells in designated.items():
                    if len(cells) < 2:
                        continue  # a lone cell is cheaper cold (serial parity)
                    start_setup = time.perf_counter()
                    try:
                        with telemetry.span(
                            "runner.baseline", protocol=specs[si].display_name
                        ):
                            controller = TEController(
                                network,
                                demands,
                                weights=spec_sweep_weights[si],
                                tolerance=spec_tolerance[si],
                                **(controller_params or {}),
                            )
                            baselines[si] = controller.snapshot()
                    except Exception:  # noqa: BLE001 - workers then build locally
                        baselines.pop(si, None)
                    parent_setup[si] = time.perf_counter() - start_setup
                chunks = self._chunk(
                    misses,
                    workers,
                    sharded_specs={
                        si for si in range(len(specs)) if incremental_spec[si]
                    },
                )
                stats.chunks = len(chunks)
                payloads = [
                    (
                        network,
                        demands,
                        [scenarios[ci] for _, ci in chunk],
                        specs[chunk[0][0]],
                        options,
                        baselines.get(chunk[0][0]),
                    )
                    for chunk in chunks
                ]
                registry = telemetry.get()
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    for chunk, (chunk_results, snapshot) in zip(
                        chunks, pool.map(_evaluate_chunk, payloads), strict=True
                    ):
                        for cell, result in zip(chunk, chunk_results, strict=True):
                            results[cell] = result
                        if registry is not None and snapshot is not None:
                            registry.merge(snapshot)
            # Fair setup amortisation: chunk-side controller construction is
            # already charged to the cells it served; the parent's
            # shared-baseline build is spread evenly across the spec's
            # designated cells post-hoc.  Invariant (asserted in tests): the
            # sum of setup_runtime over evaluated cells equals
            # ``stats.setup_seconds``, the run's setup wall-clock.
            stats.setup_seconds = sum(results[cell].setup_runtime for cell in misses)
            for si, setup in parent_setup.items():
                cells = designated.get(si, [])
                if cells:
                    share = setup / len(cells)
                    for cell in cells:
                        results[cell].setup_runtime += share
                stats.setup_seconds += setup
            if self.cache is not None:
                for cell in misses:
                    # Error results are never cached: a transient failure
                    # (solver hiccup, memory pressure) must not permanently
                    # poison the cell as infeasible on disk.
                    if results[cell].error is None:
                        self.cache.put(keys[cell], results[cell])

        stats.elapsed = time.perf_counter() - start
        self.last_stats = stats
        ordered = [
            results[(si, ci)]
            for si in range(len(specs))
            for ci in range(len(scenarios))
        ]
        if self.results_store is not None:
            self.last_run_id = self._record(
                network, specs, scenarios, ordered, stats, record_config
            )
        return ordered

    def _record(
        self,
        network: Network,
        specs: Sequence[ProtocolSpec],
        scenarios: Sequence[Scenario],
        results: Sequence[ScenarioResult],
        stats: RunStats,
        record_config: dict[str, object] | None,
    ) -> str:
        """Write this run (manifest + one record per cell) to the store."""
        # Imported lazily: repro.results depends on this module's
        # CACHE_VERSION, and the store is optional machinery.
        from ..results import RunManifest, ResultsStore, scenario_set_fingerprint

        store = self.results_store
        owned = not isinstance(store, ResultsStore)
        if owned:
            store = ResultsStore(store)  # type: ignore[arg-type]
        try:
            config: dict[str, object] = {
                "scenarios": len(scenarios),
                "protocols": len(specs),
                "cache_hits": stats.cache_hits,
                "evaluated": stats.evaluated,
                "workers": stats.workers,
            }
            config.update(record_config or {})
            timings: dict[str, float] = {
                "elapsed": stats.elapsed,
                "setup_seconds": stats.setup_seconds,
            }
            telemetry_record = _telemetry_summary_record(network.name, timings)
            manifest = RunManifest.create(
                kind="sweep",
                topology=network.name,
                protocols=[spec.display_name for spec in specs],
                scenario_set=scenario_set_fingerprint(scenarios),
                config=config,
                timings=timings,
            )
            records = [
                {
                    **result.as_row(),
                    "topology": network.name,
                    "runtime": result.runtime,
                    "setup_runtime": result.setup_runtime,
                    "cached": result.cached,
                }
                for result in results
            ]
            if telemetry_record is not None:
                records.append(telemetry_record)
            # Traced runs additionally persist per-span timing aggregates
            # (scenario="__profile__") — the history `repro results perf`
            # trends and gates on.  Untraced runs add nothing, keeping them
            # record-identical to pre-telemetry behaviour.
            from ..obs.profiling import profile_records

            records.extend(profile_records(telemetry.get(), network.name))
            return store.record_run(manifest, records)
        finally:
            if owned:
                store.close()

    # ------------------------------------------------------------------
    # scheduling helpers
    # ------------------------------------------------------------------
    def _effective_workers(self, num_tasks: int) -> int:
        if self.max_workers is not None:
            workers = self.max_workers
        else:
            workers = os.cpu_count() or 1
        return max(0, min(workers, num_tasks))

    def _chunk(
        self,
        misses: list[tuple[int, int]],
        workers: int,
        sharded_specs: set | None = None,
    ) -> list[list[tuple[int, int]]]:
        """Split misses into per-protocol chunks of roughly equal size.

        Chunks never mix protocols so each worker payload carries exactly
        one spec; within a protocol, chunk size defaults to ~4 chunks per
        worker for load balancing.  Specs in ``sharded_specs`` (those that
        can ride the incremental controller sweep) instead get exactly one
        chunk per worker: every chunk builds its own controller — the
        sweep's amortised one-off cost — so fewer, larger shards beat finer
        load balancing.
        """
        by_spec: dict[int, list[tuple[int, int]]] = {}
        for cell in misses:
            by_spec.setdefault(cell[0], []).append(cell)
        chunks: list[list[tuple[int, int]]] = []
        for si, cells in by_spec.items():
            if self.chunk_size:
                size = self.chunk_size
            elif sharded_specs and si in sharded_specs:
                size = max(1, math.ceil(len(cells) / workers))
            else:
                size = max(1, math.ceil(len(cells) / (workers * 4)))
            for i in range(0, len(cells), size):
                chunks.append(cells[i : i + size])
        return chunks
