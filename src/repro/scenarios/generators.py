"""Deterministic scenario generators: failure sweeps and demand ensembles.

Every generator returns a list of :class:`~repro.scenarios.scenario.Scenario`
objects and is fully determined by its arguments — a fixed seed always yields
the identical scenario set (ids included), which is what makes the batch
runner's on-disk cache and the property-based determinism tests possible.

Failure families (perturb the network):

* :func:`single_link_failures` / :func:`dual_link_failures` — the classic
  TE robustness sweeps (every single / pair of bidirectional trunks down);
* :func:`node_failures` — whole-PoP outages;
* :func:`capacity_degradations` — partial brown-outs (a sampled subset of
  links at a fraction of nominal capacity).

Demand families (perturb the traffic matrix; the paper's single-matrix
evaluation corresponds to the baseline member of each ensemble):

* :func:`uniform_scaling_ensemble` — the paper's Fig. 10 load sweep recast
  as scenarios;
* :func:`gravity_noise_ensemble` — lognormal multiplicative noise on every
  pair, the standard model for traffic-matrix estimation error;
* :func:`hotspot_surge_ensemble` — a few destinations suddenly pull far more
  traffic (flash crowds).
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable, Sequence

import numpy as np

from ..network.demands import Pair, TrafficMatrix
from ..network.graph import Edge, Network, Node
from .scenario import Scenario, ScenarioError


def baseline_scenario() -> Scenario:
    """The identity scenario (unperturbed network and demands)."""
    return Scenario(scenario_id="baseline", kind="baseline")


# ----------------------------------------------------------------------
# failure sweeps
# ----------------------------------------------------------------------
def _trunk_groups(network: Network, duplex: bool) -> list[tuple[str, tuple[Edge, ...]]]:
    """Failure units: bidirectional trunks when ``duplex``, else single links.

    Backbone fibre cuts take out both directions at once, so the default
    sweep granularity is the undirected trunk; ``duplex=False`` enumerates
    directed links individually (e.g. for asymmetric interface failures).
    """
    groups: list[tuple[str, tuple[Edge, ...]]] = []
    seen: set = set()
    for link in network.links:
        u, v = link.endpoints
        if duplex:
            if frozenset((u, v)) in seen:
                continue
            seen.add(frozenset((u, v)))
            edges: tuple[Edge, ...] = (
                ((u, v), (v, u)) if network.has_link(v, u) else ((u, v),)
            )
            groups.append((f"{u}-{v}", edges))
        else:
            groups.append((f"{u}>{v}", ((u, v),)))
    return groups


def single_link_failures(network: Network, duplex: bool = True) -> list[Scenario]:
    """One scenario per failed trunk (both directions) or directed link."""
    return [
        Scenario(scenario_id=f"link:{label}", kind="link-failure", failed_links=edges)
        for label, edges in _trunk_groups(network, duplex)
    ]


def dual_link_failures(
    network: Network,
    duplex: bool = True,
    limit: int | None = None,
    seed: int = 0,
) -> list[Scenario]:
    """Every unordered pair of trunk failures, optionally down-sampled.

    With ``limit`` set, a deterministic sample of ``limit`` pairs is drawn
    with ``seed`` (the full dual sweep grows quadratically in the number of
    trunks, which is the first place a sweep stops fitting in one run).
    """
    groups = _trunk_groups(network, duplex)
    pairs = list(combinations(range(len(groups)), 2))
    if limit is not None and limit < len(pairs):
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(pairs), size=limit, replace=False)
        pairs = [pairs[i] for i in sorted(chosen)]
    scenarios = []
    for i, j in pairs:
        label_i, edges_i = groups[i]
        label_j, edges_j = groups[j]
        scenarios.append(
            Scenario(
                scenario_id=f"link2:{label_i}+{label_j}",
                kind="link-failure",
                failed_links=edges_i + edges_j,
                seed=seed if limit is not None else None,
            )
        )
    return scenarios


def node_failures(network: Network, nodes: Iterable[Node] | None = None) -> list[Scenario]:
    """One scenario per failed node (all incident links removed)."""
    candidates = list(nodes) if nodes is not None else network.nodes
    return [
        Scenario(scenario_id=f"node:{node}", kind="node-failure", failed_nodes=(node,))
        for node in candidates
    ]


def capacity_degradations(
    network: Network,
    count: int = 10,
    factor: float = 0.5,
    links_per_scenario: int = 2,
    duplex: bool = True,
    seed: int = 0,
) -> list[Scenario]:
    """Seeded brown-out scenarios: sampled trunks at ``factor`` of capacity.

    Each of the ``count`` scenarios picks ``links_per_scenario`` distinct
    trunks uniformly at random (deterministic in ``seed``) and multiplies
    their capacities by ``factor`` — modelling LAG member loss or scheduled
    maintenance rather than a full cut.
    """
    if not 0 < factor < 1:
        raise ScenarioError(f"degradation factor must be in (0, 1), got {factor}")
    groups = _trunk_groups(network, duplex)
    if links_per_scenario > len(groups):
        raise ScenarioError(
            f"links_per_scenario={links_per_scenario} exceeds the {len(groups)} available trunks"
        )
    rng = np.random.default_rng(seed)
    scenarios = []
    for index in range(count):
        chosen = sorted(rng.choice(len(groups), size=links_per_scenario, replace=False))
        factors: tuple[tuple[Edge, float], ...] = tuple(
            (edge, factor) for i in chosen for edge in groups[i][1]
        )
        scenarios.append(
            Scenario(
                scenario_id=f"cap:{index:03d}@{factor:g}",
                kind="capacity",
                capacity_factors=factors,
                seed=seed,
            )
        )
    return scenarios


# ----------------------------------------------------------------------
# demand ensembles
# ----------------------------------------------------------------------
def uniform_scaling_ensemble(factors: Sequence[float]) -> list[Scenario]:
    """One scenario per uniform demand scale factor (the Fig. 10 sweep)."""
    scenarios = []
    for factor in factors:
        if factor < 0:
            raise ScenarioError(f"demand scale factor must be non-negative, got {factor}")
        scenarios.append(
            Scenario(
                scenario_id=f"scale:{factor:g}",
                kind="demand",
                demand_scale=float(factor),
            )
        )
    return scenarios


def gravity_noise_ensemble(
    demands: TrafficMatrix,
    size: int = 20,
    sigma: float = 0.25,
    preserve_total: bool = True,
    seed: int = 0,
) -> list[Scenario]:
    """Lognormal multiplicative noise on every demand pair.

    Traffic matrices inferred from link counts (the gravity model of
    :mod:`repro.traffic.gravity`) carry substantial per-pair estimation
    error; the conventional model is i.i.d. lognormal noise of spread
    ``sigma``.  With ``preserve_total`` the factors are renormalised so each
    ensemble member keeps the base matrix's total volume — isolating the
    effect of *shape* uncertainty from load uncertainty.
    """
    if sigma < 0:
        raise ScenarioError(f"noise sigma must be non-negative, got {sigma}")
    pairs = demands.pairs()
    rng = np.random.default_rng(seed)
    scenarios = []
    volumes = np.array([demands[pair] for pair in pairs], dtype=float)
    for index in range(size):
        noise = np.exp(rng.normal(0.0, sigma, size=len(pairs)))
        if preserve_total and volumes.sum() > 0:
            noise *= volumes.sum() / float(np.dot(volumes, noise))
        factors: tuple[tuple[Pair, float], ...] = tuple(
            (pair, round(float(noise[i]), 12)) for i, pair in enumerate(pairs)
        )
        scenarios.append(
            Scenario(
                scenario_id=f"gravity-noise:{index:03d}@{sigma:g}",
                kind="demand",
                demand_factors=factors,
                seed=seed,
            )
        )
    return scenarios


def hotspot_surge_ensemble(
    demands: TrafficMatrix,
    size: int = 10,
    surge: float = 3.0,
    hotspots: int = 1,
    seed: int = 0,
) -> list[Scenario]:
    """Flash-crowd scenarios: all demands into sampled destinations surge.

    Each member picks ``hotspots`` destinations (deterministic in ``seed``)
    and multiplies every demand terminating there by ``surge`` — the
    worst-kind perturbation for protocols tuned to an average matrix.
    """
    if surge < 0:
        raise ScenarioError(f"surge factor must be non-negative, got {surge}")
    destinations = demands.destinations()
    if hotspots > len(destinations):
        raise ScenarioError(
            f"hotspots={hotspots} exceeds the {len(destinations)} demand destinations"
        )
    rng = np.random.default_rng(seed)
    scenarios = []
    for index in range(size):
        chosen_idx = sorted(rng.choice(len(destinations), size=hotspots, replace=False))
        chosen = {destinations[i] for i in chosen_idx}
        factors: tuple[tuple[Pair, float], ...] = tuple(
            (pair, float(surge)) for pair in demands.pairs() if pair[1] in chosen
        )
        label = ",".join(str(destinations[i]) for i in chosen_idx)
        scenarios.append(
            Scenario(
                scenario_id=f"hotspot:{index:03d}@{label}",
                kind="demand",
                demand_factors=factors,
                seed=seed,
            )
        )
    return scenarios


def standard_scenario_suite(
    network: Network,
    demands: TrafficMatrix,
    ensemble_size: int = 10,
    seed: int = 0,
) -> list[Scenario]:
    """A mixed suite: baseline + all single failures + demand ensembles.

    The convenient default for robustness reports — broad enough to exercise
    every scenario family, small enough to run interactively.
    """
    suite: list[Scenario] = [baseline_scenario()]
    suite += single_link_failures(network)
    suite += capacity_degradations(network, count=ensemble_size, seed=seed)
    suite += gravity_noise_ensemble(demands, size=ensemble_size, seed=seed + 1)
    suite += hotspot_surge_ensemble(demands, size=ensemble_size, seed=seed + 2)
    return suite
