"""Synthetic Netflow-style link load samples (Cernet2 data substitute).

The paper derives the Cernet2 traffic matrix from "the link aggregated load
extracted from the sample Netflow data, which was captured during 2010/1/10 to
2010/1/16".  That capture is not public, so this module synthesises per-link
aggregate loads with the statistical features that matter for the gravity fit:

* loads are heavy-tailed across links (a few hot links, many cold ones);
* backbone (higher-capacity) links carry proportionally more traffic;
* a diurnal pattern over the one-week window, sampled at a configurable
  interval, from which the *average* load per link is extracted -- the same
  aggregate the paper feeds to its gravity model.

Everything is seeded, so the Cernet2 experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.graph import Network
from .gravity import gravity_from_link_loads

#: Length of the paper's capture window, in hours (2010-01-10 .. 2010-01-16).
CAPTURE_HOURS = 7 * 24


@dataclass
class NetflowSample:
    """A synthetic link-load time series for one network."""

    network_name: str
    #: Hourly load samples per link, keyed by (source, target), in Gbps.
    series: dict[Tuple, np.ndarray]

    def average_loads(self) -> dict[Tuple, float]:
        """Mean load per link over the capture window (the gravity input)."""
        return {edge: float(np.mean(values)) for edge, values in self.series.items()}

    def peak_loads(self) -> dict[Tuple, float]:
        """Peak hourly load per link."""
        return {edge: float(np.max(values)) for edge, values in self.series.items()}

    def busiest_links(self, count: int = 5) -> list[Tuple]:
        """The ``count`` links with the highest average load."""
        averages = self.average_loads()
        return sorted(averages, key=averages.get, reverse=True)[:count]


def synthesize_netflow(
    network: Network,
    mean_utilization: float = 0.25,
    hours: int = CAPTURE_HOURS,
    seed: int = 2010,
) -> NetflowSample:
    """Generate a synthetic Netflow-style hourly link-load sample.

    Parameters
    ----------
    mean_utilization:
        Network-wide average link utilization of the synthetic sample.
    hours:
        Number of hourly samples (one week by default).
    seed:
        RNG seed (default 2010 as a nod to the capture year).
    """
    if not 0 <= mean_utilization < 1:
        raise ValueError("mean_utilization must be in [0, 1)")
    rng = np.random.default_rng(seed)
    hour_index = np.arange(hours)
    # Diurnal pattern: peak in the evening, trough at night, mild weekday bias.
    diurnal = 1.0 + 0.45 * np.sin(2 * np.pi * (hour_index % 24 - 14) / 24.0)
    weekly = 1.0 + 0.1 * np.sin(2 * np.pi * hour_index / (24.0 * 7))
    series: dict[Tuple, np.ndarray] = {}
    for link in network.links:
        # Heavy-tailed per-link base intensity (lognormal), scaled by capacity.
        base = rng.lognormal(mean=0.0, sigma=0.8)
        level = mean_utilization * link.capacity * base
        noise = rng.normal(loc=1.0, scale=0.08, size=hours)
        values = np.clip(level * diurnal * weekly * noise, 0.0, link.capacity)
        series[link.endpoints] = values
    sample = NetflowSample(network_name=network.name, series=series)
    # Re-normalise so the network-wide mean utilization matches the request.
    averages = sample.average_loads()
    achieved = sum(averages.values()) / max(network.total_capacity(), 1e-12)
    if achieved > 0:
        factor = mean_utilization / achieved
        for edge in sample.series:
            sample.series[edge] = np.clip(
                sample.series[edge] * factor, 0.0, network.capacity_of(*edge)
            )
    return sample


def cernet2_traffic_matrix(
    network: Network,
    mean_utilization: float = 0.25,
    seed: int = 2010,
) -> TrafficMatrix:
    """The Cernet2 workload: gravity model fitted on synthetic Netflow loads.

    This is the substitution documented in DESIGN.md for the paper's private
    Netflow capture; the resulting matrix has the gravity structure and scale
    the paper's procedure would produce.
    """
    sample = synthesize_netflow(network, mean_utilization=mean_utilization, seed=seed)
    return gravity_from_link_loads(network, sample.average_loads())
