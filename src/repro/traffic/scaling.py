"""Demand scaling utilities: congestion-level sweeps.

The paper "create[s] different test cases by uniformly increasing the traffic
demands until the maximal link utilization almost reaches 100% with SPEF".
These helpers implement that procedure: scale a base traffic matrix to hit a
target *network load* (total demand over total capacity, the x-axis of
Fig. 10) or a target *optimal MLU* (found by bisection against the min-MLU
LP), and build whole sweeps of instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..network.demands import TrafficMatrix
from ..network.graph import Network
from ..solvers.mcf import solve_min_mlu


@dataclass(frozen=True)
class LoadPoint:
    """One point of a congestion sweep."""

    network_load: float
    demands: TrafficMatrix


def scale_to_network_load(
    network: Network,
    demands: TrafficMatrix,
    target_load: float,
) -> TrafficMatrix:
    """Uniformly scale ``demands`` so total demand / total capacity == target."""
    if target_load < 0:
        raise ValueError("target network load must be non-negative")
    current = demands.network_load(network)
    if current <= 0:
        raise ValueError("cannot scale an empty traffic matrix to a positive load")
    return demands.scaled(target_load / current)


def scale_to_optimal_mlu(
    network: Network,
    demands: TrafficMatrix,
    target_mlu: float,
    tolerance: float = 1e-3,
    max_iterations: int = 40,
) -> TrafficMatrix:
    """Scale ``demands`` so the *optimal* (min-max) MLU equals ``target_mlu``.

    Because the minimum achievable MLU is linear in a uniform demand scaling,
    a single LP solve suffices: if the base matrix achieves optimal MLU ``m``,
    scaling by ``target_mlu / m`` hits the target exactly.  The bisection
    parameters are kept for API compatibility and only used to refine when
    numerical noise from the LP makes the direct scaling miss the target.
    """
    if target_mlu <= 0:
        raise ValueError("target MLU must be positive")
    base = solve_min_mlu(network, demands, allow_overload=True).objective
    if base <= 0:
        raise ValueError("base traffic matrix routes with zero utilization")
    scaled = demands.scaled(target_mlu / base)
    achieved = solve_min_mlu(network, scaled, allow_overload=True).objective
    iterations = 0
    while abs(achieved - target_mlu) > tolerance and iterations < max_iterations:
        scaled = scaled.scaled(target_mlu / achieved)
        achieved = solve_min_mlu(network, scaled, allow_overload=True).objective
        iterations += 1
    return scaled


def load_sweep(
    network: Network,
    base_demands: TrafficMatrix,
    loads: Sequence[float],
) -> list[LoadPoint]:
    """Instances at each requested network-load level (Fig. 10 x-axis values)."""
    return [
        LoadPoint(network_load=load, demands=scale_to_network_load(network, base_demands, load))
        for load in loads
    ]


def sweep_until_saturation(
    network: Network,
    base_demands: TrafficMatrix,
    start_load: float,
    step: float,
    max_points: int = 12,
    stop_when: Callable[[TrafficMatrix], bool] | None = None,
) -> list[LoadPoint]:
    """Increase the network load until a stopping predicate fires.

    The default predicate reproduces the paper's procedure: stop once the
    *optimal* MLU (min-max LP) reaches 1, i.e. once even SPEF would saturate a
    link.
    """
    if step <= 0:
        raise ValueError("step must be positive")

    def default_stop(demands: TrafficMatrix) -> bool:
        return solve_min_mlu(network, demands, allow_overload=True).objective >= 1.0

    predicate = stop_when or default_stop
    points: list[LoadPoint] = []
    load = start_load
    for _ in range(max_points):
        demands = scale_to_network_load(network, base_demands, load)
        points.append(LoadPoint(network_load=load, demands=demands))
        if predicate(demands):
            break
        load += step
    return points
