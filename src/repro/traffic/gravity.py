"""Gravity-model traffic matrices.

The paper generates the Cernet2 demands "by a gravity model with the link
aggregated load extracted from the sample Netflow data".  The gravity model
says the demand between two nodes is proportional to the product of their
activity levels:

    d(s, t) = total * weight_out(s) * weight_in(t) / normalisation

:func:`gravity_traffic_matrix` implements the general model; node weights can
come from measured per-node byte counts (:mod:`repro.traffic.netflow`
synthesises them when real Netflow data is unavailable), from capacities, or
be supplied explicitly.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.graph import Network, Node


def node_capacity_weights(network: Network) -> dict[Node, float]:
    """Node activity weights proportional to attached (outgoing) capacity.

    A standard proxy when per-node traffic volumes are unknown: big PoPs have
    big links.
    """
    return {
        node: sum(link.capacity for link in network.out_links(node))
        for node in network.nodes
    }


def gravity_traffic_matrix(
    network: Network,
    total_volume: float,
    out_weights: Mapping[Node, float] | None = None,
    in_weights: Mapping[Node, float] | None = None,
    self_demands: bool = False,
) -> TrafficMatrix:
    """A gravity-model traffic matrix with the prescribed total volume.

    Parameters
    ----------
    total_volume:
        Sum of all demands in the returned matrix.
    out_weights, in_weights:
        Node activity levels for origination and termination; both default to
        the node's attached capacity.
    self_demands:
        Ignored pairs ``(s, s)`` are never generated; the flag exists only to
        make the exclusion explicit at call sites.
    """
    if total_volume < 0:
        raise ValueError("total volume must be non-negative")
    out_w = dict(out_weights) if out_weights is not None else node_capacity_weights(network)
    in_w = dict(in_weights) if in_weights is not None else node_capacity_weights(network)
    nodes = network.nodes
    raw: dict[tuple, float] = {}
    for source in nodes:
        for target in nodes:
            if source == target and not self_demands:
                continue
            if source == target:
                continue
            weight = out_w.get(source, 0.0) * in_w.get(target, 0.0)
            if weight > 0:
                raw[(source, target)] = weight
    normalisation = sum(raw.values())
    if normalisation <= 0 or total_volume == 0:
        return TrafficMatrix()
    return TrafficMatrix(
        {pair: total_volume * weight / normalisation for pair, weight in raw.items()}
    )


def gravity_from_link_loads(
    network: Network,
    link_loads: Mapping[tuple, float],
    total_volume: float | None = None,
) -> TrafficMatrix:
    """Gravity matrix whose node weights are derived from per-link loads.

    This mirrors the paper's procedure for Cernet2: the per-link aggregate
    loads (from Netflow) are folded into per-node origination/termination
    weights (traffic leaving/entering the node over its links), and a gravity
    matrix is fitted on top.  ``total_volume`` defaults to half the total link
    load, a rough proxy for the carried end-to-end volume.
    """
    out_weights: dict[Node, float] = {node: 0.0 for node in network.nodes}
    in_weights: dict[Node, float] = {node: 0.0 for node in network.nodes}
    total_load = 0.0
    for (u, v), load in link_loads.items():
        if load < 0:
            raise ValueError(f"link load must be non-negative, got {load} on {(u, v)}")
        if not network.has_link(u, v):
            raise ValueError(f"unknown link {(u, v)} in link loads")
        out_weights[u] += load
        in_weights[v] += load
        total_load += load
    if total_volume is None:
        total_volume = total_load / 2.0
    return gravity_traffic_matrix(network, total_volume, out_weights, in_weights)


def uniform_traffic_matrix(network: Network, per_pair_volume: float) -> TrafficMatrix:
    """Every ordered node pair gets the same demand (a simple stress pattern)."""
    if per_pair_volume < 0:
        raise ValueError("per-pair volume must be non-negative")
    tm = TrafficMatrix()
    for source in network.nodes:
        for target in network.nodes:
            if source != target and per_pair_volume > 0:
                tm.add(source, target, per_pair_volume)
    return tm


def bimodal_traffic_matrix(
    network: Network,
    total_volume: float,
    heavy_fraction: float = 0.2,
    heavy_share: float = 0.8,
    seed: int = 0,
) -> TrafficMatrix:
    """A heavy-hitter matrix: a few pairs carry most of the traffic.

    Useful as an extra stress pattern beyond the paper's workloads: real
    traffic matrices are highly skewed, and protocols that only balance
    average load can behave very differently under skew.
    """
    if not 0 < heavy_fraction < 1:
        raise ValueError("heavy_fraction must be in (0, 1)")
    if not 0 <= heavy_share <= 1:
        raise ValueError("heavy_share must be in [0, 1]")
    rng = np.random.default_rng(seed)
    pairs = [
        (s, t) for s in network.nodes for t in network.nodes if s != t
    ]
    if not pairs:
        return TrafficMatrix()
    rng.shuffle(pairs)
    num_heavy = max(1, int(len(pairs) * heavy_fraction))
    heavy, light = pairs[:num_heavy], pairs[num_heavy:]
    tm = TrafficMatrix()
    heavy_volume = total_volume * heavy_share
    light_volume = total_volume - heavy_volume
    for pair in heavy:
        tm.add(pair[0], pair[1], heavy_volume / num_heavy)
    if light:
        for pair in light:
            tm.add(pair[0], pair[1], light_volume / len(light))
    return tm
