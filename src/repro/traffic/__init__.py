"""Traffic matrix generators and demand scaling."""

from .fortz_thorup_tm import (
    ABILENE_COORDINATES,
    abilene_traffic_matrix,
    euclidean_distances,
    fortz_thorup_traffic_matrix,
    hop_distances,
)
from .gravity import (
    bimodal_traffic_matrix,
    gravity_from_link_loads,
    gravity_traffic_matrix,
    node_capacity_weights,
    uniform_traffic_matrix,
)
from .netflow import (
    CAPTURE_HOURS,
    NetflowSample,
    cernet2_traffic_matrix,
    synthesize_netflow,
)
from .scaling import (
    LoadPoint,
    load_sweep,
    scale_to_network_load,
    scale_to_optimal_mlu,
    sweep_until_saturation,
)

__all__ = [
    "ABILENE_COORDINATES",
    "abilene_traffic_matrix",
    "euclidean_distances",
    "fortz_thorup_traffic_matrix",
    "hop_distances",
    "bimodal_traffic_matrix",
    "gravity_from_link_loads",
    "gravity_traffic_matrix",
    "node_capacity_weights",
    "uniform_traffic_matrix",
    "CAPTURE_HOURS",
    "NetflowSample",
    "cernet2_traffic_matrix",
    "synthesize_netflow",
    "LoadPoint",
    "load_sweep",
    "scale_to_network_load",
    "scale_to_optimal_mlu",
    "sweep_until_saturation",
]
