"""Fortz-Thorup style synthetic traffic matrices.

The Abilene demands in the paper are "generated as those in Fortz and Thorup
[16]".  The FT construction assigns every node ``u`` two random numbers
``o_u, d_u`` in [0, 1] (origination and destination activity), every ordered
pair an additional random number ``c_{u,v}`` in [0, 1], and sets

    demand(u, v) = alpha * o_u * d_v * c_{u,v} * exp(-dist(u, v) / (2 * Delta))

where ``dist`` is the Euclidean distance between the nodes and ``Delta`` the
largest such distance -- traffic decays with distance.  ``alpha`` scales the
matrix to the desired total volume / congestion level.

Real coordinates are optional: when a topology has no embedding we use the
hop-count distance instead, which preserves the "nearby pairs talk more"
structure the construction is after.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.graph import Network, Node
from ..network.spt import distances_to


def hop_distances(network: Network) -> dict[tuple[Node, Node], float]:
    """All-pairs hop-count distances (used when no coordinates are available)."""
    unit = np.ones(network.num_links)
    result: dict[tuple[Node, Node], float] = {}
    for destination in network.nodes:
        dist = distances_to(network, destination, unit)
        for source, value in dist.items():
            if source != destination:
                result[(source, destination)] = value
    return result


def euclidean_distances(
    coordinates: Mapping[Node, tuple[float, float]]
) -> dict[tuple[Node, Node], float]:
    """All-pairs Euclidean distances from a coordinate embedding."""
    nodes = list(coordinates)
    result: dict[tuple[Node, Node], float] = {}
    for source in nodes:
        sx, sy = coordinates[source]
        for target in nodes:
            if source == target:
                continue
            tx, ty = coordinates[target]
            result[(source, target)] = float(np.hypot(sx - tx, sy - ty))
    return result


def fortz_thorup_traffic_matrix(
    network: Network,
    total_volume: float,
    coordinates: Mapping[Node, tuple[float, float]] | None = None,
    seed: int = 0,
) -> TrafficMatrix:
    """A Fortz-Thorup random traffic matrix scaled to ``total_volume``.

    Parameters
    ----------
    total_volume:
        Sum of all generated demands (use
        :func:`repro.traffic.scaling.scale_to_network_load` afterwards to hit
        an exact network-load level).
    coordinates:
        Optional node embedding; hop distances are used when omitted.
    seed:
        RNG seed; the same seed always yields the same matrix.
    """
    if total_volume < 0:
        raise ValueError("total volume must be non-negative")
    rng = np.random.default_rng(seed)
    nodes = network.nodes
    origination = {node: float(rng.random()) for node in nodes}
    destination = {node: float(rng.random()) for node in nodes}
    if coordinates is not None:
        distances = euclidean_distances(coordinates)
    else:
        distances = hop_distances(network)
    if not distances:
        return TrafficMatrix()
    delta = max(distances.values())
    raw: dict[tuple[Node, Node], float] = {}
    for source in nodes:
        for target in nodes:
            if source == target:
                continue
            pair_random = float(rng.random())
            dist = distances.get((source, target))
            if dist is None:
                continue
            decay = float(np.exp(-dist / (2.0 * delta))) if delta > 0 else 1.0
            value = origination[source] * destination[target] * pair_random * decay
            if value > 0:
                raw[(source, target)] = value
    normalisation = sum(raw.values())
    if normalisation <= 0 or total_volume == 0:
        return TrafficMatrix()
    return TrafficMatrix(
        {pair: total_volume * value / normalisation for pair, value in raw.items()}
    )


#: Rough geographic coordinates (longitude, latitude) for the Abilene PoPs,
#: used so the FT distance decay reflects the real continental layout.
ABILENE_COORDINATES: dict[int, tuple[float, float]] = {
    1: (-122.3, 47.6),   # Seattle
    2: (-122.0, 37.4),   # Sunnyvale
    3: (-105.0, 39.7),   # Denver
    4: (-118.2, 34.1),   # Los Angeles
    5: (-95.4, 29.8),    # Houston
    6: (-94.6, 39.1),    # Kansas City
    7: (-86.2, 39.8),    # Indianapolis
    8: (-84.4, 33.7),    # Atlanta
    9: (-87.6, 41.9),    # Chicago
    10: (-77.0, 38.9),   # Washington DC
    11: (-74.0, 40.7),   # New York
}


def abilene_traffic_matrix(network: Network, total_volume: float, seed: int = 0) -> TrafficMatrix:
    """The Abilene workload: FT random demands over the real PoP coordinates."""
    return fortz_thorup_traffic_matrix(
        network, total_volume, coordinates=ABILENE_COORDINATES, seed=seed
    )
