"""Flow-level network simulator (the SSFnet substitute for Fig. 11).

The paper runs SPEF and PEFT inside SSFnet for 400 seconds and reports the
mean traffic load carried by every link.  This module reproduces that
experiment with a flow-level model:

* every source-destination demand ``d_r`` is offered as a Poisson process of
  flows with exponentially distributed sizes, calibrated so the long-run
  offered rate equals ``d_r``;
* when a flow arrives, its path is drawn hop-by-hop from the protocol's
  per-destination split ratios (this mirrors how routers hash flows onto
  next hops -- packets of one flow stay on one path);
* while active, the flow contributes its rate to every link on its path;
  links integrate carried load over time, and the simulation reports the
  time-averaged load per link.

The expectation of the measured mean load per link equals the fluid-level
flow assignment of the protocol, so the simulator validates the protocols'
forwarding tables end-to-end while adding the stochastic variability a packet
simulator would show.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Edge, Network, Node
from ..protocols.base import RoutingProtocol
from .events import Simulator

SplitRatios = dict[Node, dict[Node, dict[Node, float]]]


@dataclass
class SimulatedFlow:
    """One flow in flight."""

    source: Node
    destination: Node
    rate: float
    path: tuple[Node, ...]
    start_time: float
    end_time: float


@dataclass
class SimulationResult:
    """Aggregated outcome of one simulation run."""

    network: Network
    duration: float
    #: Time-averaged carried load per link (same units as demands).
    mean_link_load: dict[Edge, float]
    #: Maximum instantaneous load observed per link.
    peak_link_load: dict[Edge, float]
    flows_started: int
    flows_completed: int
    #: Flows that found no forwarding entry at some hop (should be zero for a
    #: correct protocol configuration).
    dropped_flows: int = 0

    def mean_load_vector(self) -> np.ndarray:
        """Mean loads as a link-indexed vector."""
        vector = np.zeros(self.network.num_links)
        for edge, value in self.mean_link_load.items():
            vector[self.network.link_index(*edge)] = value
        return vector

    def mean_utilization(self) -> dict[Edge, float]:
        return {
            edge: load / self.network.capacity_of(*edge)
            for edge, load in self.mean_link_load.items()
        }

    def used_links(self, threshold: float = 1e-6) -> list[Edge]:
        """Links whose mean load exceeds ``threshold`` (Fig. 11 counts these)."""
        return [edge for edge, load in self.mean_link_load.items() if load > threshold]

    def load_variation(self) -> float:
        """Standard deviation of mean load across used links (Fig. 11 discussion)."""
        used = [load for load in self.mean_link_load.values() if load > 1e-6]
        if not used:
            return 0.0
        return float(np.std(np.asarray(used)))


def proportional_split_ratios(flows: FlowAssignment) -> SplitRatios:
    """Derive per-destination split ratios from a fluid flow assignment.

    For protocols that do not expose explicit forwarding tables (e.g. the LP
    based min-max MLU routing) the simulator splits traffic at each node
    proportionally to the per-destination flow the assignment places on its
    outgoing links.
    """
    network = flows.network
    ratios: SplitRatios = {}
    for destination, vector in flows.per_destination.items():
        if destination is None:
            continue
        per_node: dict[Node, dict[Node, float]] = {}
        for node in network.nodes:
            if node == destination:
                continue
            shares = {}
            for link in network.out_links(node):
                value = float(vector[link.index])
                if value > 1e-12:
                    shares[link.target] = value
            total = sum(shares.values())
            if total > 0:
                per_node[node] = {hop: share / total for hop, share in shares.items()}
        ratios[destination] = per_node
    return ratios


class FlowLevelSimulation:
    """Simulate a protocol's forwarding state under stochastic flow arrivals.

    Parameters
    ----------
    network, demands:
        The instance to simulate.
    split_ratios:
        ``destination -> node -> next hop -> ratio`` forwarding state.
    mean_flow_size:
        Average flow volume (same unit as demand x time).  Smaller flows mean
        more flows in flight and smoother link loads.
    flow_rate_fraction:
        Each flow transmits at ``flow_rate_fraction * demand`` of its pair, so
        roughly ``1 / flow_rate_fraction`` flows of a pair are active at once.
    seed:
        RNG seed for arrivals, sizes and path choices.
    """

    def __init__(
        self,
        network: Network,
        demands: TrafficMatrix,
        split_ratios: SplitRatios,
        mean_flow_size: float = 1.0,
        flow_rate_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        if mean_flow_size <= 0:
            raise ValueError("mean_flow_size must be positive")
        if not 0 < flow_rate_fraction <= 1:
            raise ValueError("flow_rate_fraction must be in (0, 1]")
        demands.validate(network)
        self.network = network
        self.demands = demands
        self.split_ratios = split_ratios
        self.mean_flow_size = mean_flow_size
        self.flow_rate_fraction = flow_rate_fraction
        self.seed = seed

    # ------------------------------------------------------------------
    def _draw_path(
        self, rng: np.random.Generator, source: Node, destination: Node
    ) -> tuple[Node, ...] | None:
        """Sample a loop-free path hop-by-hop from the split ratios."""
        ratios = self.split_ratios.get(destination, {})
        path = [source]
        current = source
        visited = {source}
        for _ in range(self.network.num_nodes + 1):
            if current == destination:
                return tuple(path)
            hops = ratios.get(current)
            if not hops:
                return None
            choices = [hop for hop in hops if hop not in visited or hop == destination]
            if not choices:
                choices = list(hops)
            weights = np.array([hops[hop] for hop in choices], dtype=float)
            total = weights.sum()
            if total <= 0:
                return None
            hop = choices[int(rng.choice(len(choices), p=weights / total))]
            path.append(hop)
            visited.add(hop)
            current = hop
        return None

    # ------------------------------------------------------------------
    def run(self, duration: float = 400.0, warmup: float = 0.0) -> SimulationResult:
        """Run the simulation for ``duration`` time units.

        ``warmup`` time at the start is simulated but excluded from the
        load averages.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if warmup < 0 or warmup >= duration:
            raise ValueError("warmup must be in [0, duration)")
        rng = np.random.default_rng(self.seed)
        sim = Simulator()
        num_links = self.network.num_links
        current_load = np.zeros(num_links)
        accumulated = np.zeros(num_links)
        peak = np.zeros(num_links)
        last_update = [warmup]
        stats = {"started": 0, "completed": 0, "dropped": 0}

        def integrate(now: float) -> None:
            start = max(last_update[0], warmup)
            if now > start:
                accumulated[:] += current_load * (now - start)
            last_update[0] = now

        def end_flow(link_indices: list[int], rate: float):
            def handler(s: Simulator) -> None:
                integrate(s.now)
                for index in link_indices:
                    current_load[index] -= rate
                stats["completed"] += 1

            return handler

        def make_arrival(source: Node, destination: Node, demand_rate: float, interarrival: float):
            def handler(s: Simulator) -> None:
                integrate(s.now)
                path = self._draw_path(rng, source, destination)
                rate = demand_rate * self.flow_rate_fraction
                size = rng.exponential(self.mean_flow_size)
                if path is None:
                    stats["dropped"] += 1
                else:
                    stats["started"] += 1
                    link_indices = [
                        self.network.link_index(u, v) for u, v in zip(path[:-1], path[1:], strict=True)
                    ]
                    for index in link_indices:
                        current_load[index] += rate
                        peak[index] = max(peak[index], current_load[index])
                    holding = size / rate if rate > 0 else 0.0
                    if s.now + holding <= duration:
                        s.schedule(s.now + holding, end_flow(link_indices, rate))
                    else:
                        # Flow outlives the run; it stays active until the end.
                        pass
                next_arrival = s.now + rng.exponential(interarrival)
                if next_arrival < duration:
                    s.schedule(next_arrival, handler)

            return handler

        for (source, destination), volume in self.demands.items():
            if volume <= 0:
                continue
            # Offered load = arrival rate * mean size  =>  lambda = d / S.
            arrival_rate = volume / self.mean_flow_size
            interarrival = 1.0 / arrival_rate
            first = rng.exponential(interarrival)
            if first < duration:
                sim.schedule(first, make_arrival(source, destination, volume, interarrival))

        sim.run(until=duration)
        integrate(duration)
        window = duration - warmup
        mean_load = accumulated / window
        return SimulationResult(
            network=self.network,
            duration=window,
            mean_link_load={
                link.endpoints: float(mean_load[link.index]) for link in self.network.links
            },
            peak_link_load={
                link.endpoints: float(peak[link.index]) for link in self.network.links
            },
            flows_started=stats["started"],
            flows_completed=stats["completed"],
            dropped_flows=stats["dropped"],
        )


def simulate_protocol(
    network: Network,
    demands: TrafficMatrix,
    protocol: RoutingProtocol,
    duration: float = 400.0,
    mean_flow_size: float = 1.0,
    flow_rate_fraction: float = 0.1,
    seed: int = 0,
    warmup: float = 0.0,
) -> SimulationResult:
    """Run the flow-level simulator against a protocol's forwarding state.

    Protocols that expose :meth:`~repro.protocols.base.RoutingProtocol.split_ratios`
    are simulated from their actual forwarding tables; others fall back to
    proportional splitting derived from their fluid flow assignment.
    """
    ratios = protocol.split_ratios(network, demands)
    if ratios is None:
        ratios = proportional_split_ratios(protocol.route(network, demands))
    simulation = FlowLevelSimulation(
        network,
        demands,
        ratios,
        mean_flow_size=mean_flow_size,
        flow_rate_fraction=flow_rate_fraction,
        seed=seed,
    )
    return simulation.run(duration=duration, warmup=warmup)
