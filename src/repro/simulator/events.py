"""A small discrete-event engine used by the flow-level simulator.

The SSFnet experiments of the paper (Fig. 11) run each protocol for 400
simulated seconds and report the mean traffic carried by every link.  Our
substitute is a flow-level simulator: traffic arrives as flows (Poisson
arrivals, random sizes), each active flow contributes its rate to every link
on its (split) forwarding paths, and links integrate the carried load over
time.  The event engine below is a classic calendar queue on top of
``heapq`` -- deliberately tiny but fully featured (cancellation, simultaneous
event ordering, stop conditions) so that other experiments can reuse it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from collections.abc import Callable

EventCallback = Callable[["Simulator"], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """A minimal discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, lambda s: fired.append(s.now))
    >>> sim.run(until=2.0)
    >>> fired
    [1.0]
    """

    def __init__(self) -> None:
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self.now: float = 0.0
        self.processed_events: int = 0

    def schedule(self, time: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Schedule ``callback`` to run at absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        event = _ScheduledEvent(time=time, sequence=next(self._sequence), callback=callback, label=label)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_in(self, delay: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self.now + delay, callback, label)

    def peek(self) -> float | None:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Process a single event; returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(self)
            self.processed_events += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue is empty, ``until`` is reached, or the budget ends."""
        processed = 0
        while True:
            next_time = self.peek()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1

    def pending(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)
