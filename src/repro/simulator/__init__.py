"""Flow-level network simulator (SSFnet substitute for the Fig. 11 experiments)."""

from .events import EventHandle, Simulator
from .simulation import (
    FlowLevelSimulation,
    SimulatedFlow,
    SimulationResult,
    proportional_split_ratios,
    simulate_protocol,
)

__all__ = [
    "EventHandle",
    "Simulator",
    "FlowLevelSimulation",
    "SimulatedFlow",
    "SimulationResult",
    "proportional_split_ratios",
    "simulate_protocol",
]
