"""``repro`` — the console entry point over sweeps, replays and results.

The examples show the library's shape; this CLI makes it scriptable, and
every command that produces numbers writes them into the
:mod:`repro.results` store so they can be listed, diffed and exported
later (by a human or by CI):

* ``repro sweep`` — a cached :class:`~repro.scenarios.BatchRunner` sweep
  of protocols over a scenario set, recorded with a full run manifest;
* ``repro replay`` — the online TE controller's failure/recovery trace
  replay (:func:`repro.online.replay_failure_trace`), one record per
  outage; ``--policy closed-loop|oracle`` runs it closed-loop (thresholded
  or every-event warm-started reoptimization);
* ``repro bench`` — the benchmark harness under ``benchmarks/`` via
  pytest, in smoke/default/full mode, recording into the same store;
* ``repro trace {sweep,replay}`` — the same sweep/replay commands run
  under an active :mod:`repro.obs` telemetry session: spans, counters and
  histograms land in a ``trace.jsonl`` file (``--trace``), with an
  optional compact text summary (``--summary``), a Chrome trace-event
  export (``--chrome-trace``), a collapsed-stack flamegraph
  (``--flamegraph``) and opt-in per-span memory tracking (``--memory``);
  ``trace sweep`` forces the result cache off so every instrumented path
  actually executes; traced runs persist per-span timing aggregates
  (``scenario="__profile__"``) into the store;
* ``repro results perf`` — span self-time trends over those profile
  records, and ``--gate BASE..HEAD``, the statistical (median ± k·MAD)
  regression gate CI runs against ``latest~1``;
* ``repro results {list,show,query,diff,export,import,delete,gc,plot}`` —
  the store's query surface (``gc --keep-last N`` is the retention knob;
  ``list``/``show``/``query`` take ``--format table|csv|json``).  ``diff``
  is what CI gates on: timing fields are always informational, metric
  fields hard-fail (see :mod:`repro.results.diffing`); ``export``
  regenerates the committed ``BENCH_*.json`` views byte-for-byte;
  ``plot`` renders a per-metric trendline over stored runs (terminal
  sparkline always, PNG via ``--png``).

Every subcommand takes ``--store`` (default ``$REPRO_RESULTS_DB`` or
``~/.cache/repro/results.sqlite``).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from collections.abc import Callable, Sequence

from .analysis.reporting import format_robustness_summary, format_table
from .obs import profile_records, telemetry, write_chrome_trace, write_flamegraph
from .online.events import EventError
from .results import (
    AGGREGATIONS,
    FORMATS,
    PNG_BACKENDS,
    PROFILE_SCENARIO,
    VIEW_FILENAMES,
    PerfError,
    PlotError,
    ResultsStore,
    ResultsStoreError,
    RunManifest,
    default_results_path,
    format_output,
    load_bench_view,
    metric_trend,
    profile_rows,
    render_terminal,
    scenario_set_fingerprint,
    write_png,
)
from .results import gate as perf_gate
from .scenarios import (
    BatchRunner,
    ProtocolSpec,
    RunnerError,
    Scenario,
    baseline_scenario,
    capacity_degradations,
    dual_link_failures,
    gravity_noise_ensemble,
    hotspot_surge_ensemble,
    node_failures,
    robustness_summary,
    single_link_failures,
    standard_scenario_suite,
)
from .topology.backbones import abilene_network, cernet2_network
from .topology.generators import hier50a, hier50b, rand50a, rand50b, rand100, rand500
from .topology.rocketfuel import synthetic_rocketfuel
from .traffic.gravity import gravity_traffic_matrix

# ----------------------------------------------------------------------
# workload registries
# ----------------------------------------------------------------------
TOPOLOGIES: dict[str, Callable[[], "object"]] = {
    "abilene": abilene_network,
    "cernet2": cernet2_network,
    "hier50a": hier50a,
    "hier50b": hier50b,
    "rand50a": rand50a,
    "rand50b": rand50b,
    "rand100": rand100,
    "rand500": rand500,
    "rocketfuel": lambda: synthetic_rocketfuel(1239, seed=0),
    "rocketfuel-router": lambda: synthetic_rocketfuel(1239, seed=0, level="router"),
}

#: Scenario-set factories: ``(network, demands, seed) -> [Scenario]``.
SCENARIO_SETS: dict[str, Callable[..., list[Scenario]]] = {
    "baseline": lambda network, demands, seed: [baseline_scenario()],
    "single-link-failures": lambda network, demands, seed: single_link_failures(network),
    "dual-link-failures": lambda network, demands, seed: dual_link_failures(
        network, limit=50, seed=seed
    ),
    "node-failures": lambda network, demands, seed: node_failures(network),
    "capacity-degradations": lambda network, demands, seed: capacity_degradations(
        network, seed=seed
    ),
    "gravity-noise": lambda network, demands, seed: gravity_noise_ensemble(
        demands, seed=seed
    ),
    "hotspot-surge": lambda network, demands, seed: hotspot_surge_ensemble(
        demands, seed=seed
    ),
    "standard-suite": lambda network, demands, seed: standard_scenario_suite(
        network, demands, seed=seed
    ),
}

#: Benchmark modules ``repro bench`` knows how to run (paths are relative
#: to the benchmarks directory of a repository checkout).
BENCH_MODULES = {
    "routing": "test_routing_speed.py",
    "online": "test_online_controller.py",
}


class CLIError(ValueError):
    """Raised for bad CLI inputs not already rejected by argparse choices."""


def _coerce_param(text: str) -> object:
    """``"2"`` -> 2, ``"0.5"`` -> 0.5, ``"true"`` -> True, else the string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def parse_protocols(argument: str) -> list[ProtocolSpec]:
    """Parse ``--protocols`` entries, constructor parameters included.

    Entries are comma-separated; each is ``NAME`` or
    ``NAME:key=value[:key=value...]`` (``:`` separates parameters so the
    comma stays the entry separator), e.g.
    ``OSPF,SPEF:beta=2.0,FortzThorup:seed=1:restarts=2``.  Values are
    coerced to int/float/bool where they parse as one; unknown names and
    malformed parameters raise :class:`CLIError` with the offending entry.
    """
    specs: list[ProtocolSpec] = []
    for entry in argument.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, *param_parts = entry.split(":")
        params: dict[str, object] = {}
        for part in param_parts:
            key, separator, value = part.partition("=")
            if not separator or not key:
                raise CLIError(
                    f"malformed protocol parameter {part!r} in {entry!r} "
                    "(expected NAME:key=value[:key=value...])"
                )
            params[key.strip()] = _coerce_param(value.strip())
        try:
            spec = ProtocolSpec.of(name.strip(), **params)
        except RunnerError as exc:
            raise CLIError(str(exc)) from None
        try:
            # Build once up front: a typo'd parameter (beta vs Beta) must be
            # a usage error here, not a recorded sweep of all-infeasible
            # cells with exit code 0.
            spec.build()
        except Exception as exc:  # noqa: BLE001 - surface constructor errors
            raise CLIError(f"cannot build protocol {entry!r}: {exc}") from None
        specs.append(spec)
    if not specs:
        raise CLIError("no protocols given")
    return specs


def build_workload(
    topology: str, utilization: float, seed: int
) -> tuple["object", "object"]:
    """The CLI's canonical workload: a topology + a gravity traffic matrix."""
    try:
        network = TOPOLOGIES[topology]()
    except KeyError:
        raise CLIError(
            f"unknown topology {topology!r}; known: {', '.join(sorted(TOPOLOGIES))}"
        ) from None
    demands = gravity_traffic_matrix(network, utilization * network.total_capacity())
    return network, demands


def _open_store(args: argparse.Namespace) -> ResultsStore:
    return ResultsStore(args.store)


def _resolve_side(store: ResultsStore, ref: str):
    """A diff side: a run reference, or a path to a ``BENCH_*.json`` view."""
    if ref.endswith(".json"):
        # Run ids never end in .json: treat the ref as a view path, and say
        # so when it is missing rather than reporting an "unknown run".
        if not Path(ref).exists():
            raise ResultsStoreError(f"bench view file {ref} not found")
        return load_bench_view(ref)
    return store.get_run(ref).run_id


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_sweep(args: argparse.Namespace) -> int:
    network, demands = build_workload(args.topology, args.utilization, args.seed)
    try:
        factory = SCENARIO_SETS[args.scenarios]
    except KeyError:
        print(
            f"unknown scenario set {args.scenarios!r}; "
            f"known: {', '.join(sorted(SCENARIO_SETS))}",
            file=sys.stderr,
        )
        return 2
    scenarios = factory(network, demands, args.seed)
    if args.limit is not None:
        scenarios = scenarios[: args.limit]
    protocols = parse_protocols(args.protocols)
    workers = (os.cpu_count() or 1) if args.parallel else args.workers

    with _open_store(args) as store:
        runner = BatchRunner(
            cache_dir=False if args.no_cache else args.cache_dir,
            max_workers=workers,
            results_store=store,
        )
        results = runner.run(
            network,
            demands,
            scenarios,
            protocols,
            record_config={
                "command": "sweep",
                "scenario_set_name": args.scenarios,
                "utilization": args.utilization,
                "seed": args.seed,
                "parallel": bool(args.parallel),
            },
            controller_params={
                "max_affected_fraction": args.max_affected_fraction,
                "verify": args.verify,
            },
        )
        stats = runner.last_stats
        print(
            f"swept {len(scenarios)} scenario(s) x {len(protocols)} protocol(s) "
            f"on {network.name} in {stats.elapsed:.2f}s "
            f"({stats.cache_hits} cache hit(s), {stats.evaluated} evaluated)"
        )
        print()
        print(format_robustness_summary(robustness_summary(results)))
        print()
        print(f"recorded run {runner.last_run_id} in {store.path}")
    return 0


def _build_policy(args: argparse.Namespace):
    """The replay policy requested by ``--policy`` (``None`` for none)."""
    if args.policy == "none":
        return None
    from .online import ClosedLoopPolicy, OraclePolicy
    from .protocols.fortz_thorup import FortzThorup

    def optimizer_factory():
        return FortzThorup(restarts=1, seed=0, max_evaluations=args.reopt_evaluations)

    if args.policy == "oracle":
        return OraclePolicy(optimizer_factory=optimizer_factory)
    return ClosedLoopPolicy(
        target_mlu=args.mlu_target,
        hold=args.hold,
        cooldown=args.cooldown,
        optimizer_factory=optimizer_factory,
    )


def _event_trace_records(session, topology_name: str) -> list[dict[str, object]]:
    """Per-event store records from a session's rows (replay and serve alike).

    Both ``repro replay --trace-file`` and the ``repro serve --replay-trace``
    soak recorder call this on a :class:`~repro.online.ControllerSession`
    after the trace ran, so the two runs' records carry identical identity
    keys and the CI serve-smoke diff pairs them one-to-one per event.
    """
    return [
        {**row, "topology": topology_name, "scenario": f"event-{row['seq']:04d}"}
        for row in session.event_rows()
    ]


def _record_trace_run(
    args: argparse.Namespace,
    *,
    kind: str,
    session,
    network,
    events: int,
    elapsed: float,
    config: dict[str, object],
) -> None:
    """Record a per-event trace run (batch or soak) into the results store."""
    stats = session.controller.spt.stats
    final = session.controller.measure()
    with _open_store(args) as store:
        manifest = RunManifest.create(
            kind=kind,
            topology=network.name,
            protocols=("even-ECMP",),
            scenario_set=f"event-trace-{events}",
            config={
                "utilization": args.utilization,
                "seed": args.seed,
                "events": events,
                "baseline_mlu": round(session.baseline.mlu, 6),
                "final_mlu": round(final.mlu, 6),
                "policy": args.policy,
                "reoptimizations": session.reoptimizations,
                **config,
            },
            timings={
                "elapsed": elapsed,
                "incremental_updates": float(stats.incremental_updates),
                "full_rebuilds": float(stats.full_rebuilds),
                "dspt_event_fallback_rate": stats.event_fallback_rate,
            },
        )
        records = _event_trace_records(session, network.name)
        records.extend(profile_records(telemetry.get(), network.name))
        run_id = store.record_run(manifest, records)
        print(f"recorded run {run_id} in {store.path}")


def cmd_replay(args: argparse.Namespace) -> int:
    from .online import (
        ControllerSession,
        failure_recovery_trace,
        read_event_trace,
        replay_event_trace,
        replay_failure_trace,
        write_event_trace,
    )

    if args.trace_file and args.export_trace:
        raise CLIError("--trace-file and --export-trace are mutually exclusive")
    network, demands = build_workload(args.topology, args.utilization, args.seed)
    policy = _build_policy(args)
    session = ControllerSession(
        network,
        demands,
        policy=policy,
        max_affected_fraction=args.max_affected_fraction,
        verify=args.verify,
    )

    if args.trace_file:
        # Strict wire-schema parsing: a malformed line is a hard error with
        # its line number (the same validator the serve socket runs).
        events = read_event_trace(args.trace_file)
        replay = replay_event_trace(session, events)
        stats = replay.controller.spt.stats
        print(
            f"replayed {replay.processed_events} events from {args.trace_file} on "
            f"{network.name} in {replay.elapsed * 1e3:.0f} ms wall "
            f"({stats.incremental_updates} incremental DAG updates, "
            f"{stats.full_rebuilds} full rebuilds); baseline MLU "
            f"{replay.baseline.mlu:.3f}, final MLU {replay.final.mlu:.3f}"
        )
        if policy is not None:
            print(f"policy {args.policy}: {replay.reoptimizations} reoptimization(s)")
        _record_trace_run(
            args,
            kind="replay",
            session=session,
            network=network,
            events=replay.processed_events,
            elapsed=replay.elapsed,
            config={"command": "replay", "trace_file": str(args.trace_file)},
        )
        return 0

    scenarios = single_link_failures(network)
    if args.limit is not None:
        scenarios = scenarios[: args.limit]
    if args.export_trace:
        trace = failure_recovery_trace(
            network, scenarios, period=args.period, outage=args.outage
        )
        count = write_event_trace(args.export_trace, trace)
        print(f"wrote {count} event(s) to {args.export_trace}")
    replay = replay_failure_trace(
        network,
        demands,
        scenarios,
        period=args.period,
        outage=args.outage,
        session=session,
    )
    stats = replay.controller.spt.stats
    print(
        f"replayed {replay.processed_events} events on {network.name} in "
        f"{replay.elapsed * 1e3:.0f} ms wall "
        f"({stats.incremental_updates} incremental DAG updates, "
        f"{stats.full_rebuilds} full rebuilds); baseline MLU "
        f"{replay.baseline.mlu:.3f}, final MLU {replay.final.mlu:.3f}"
    )
    if policy is not None:
        print(
            f"policy {args.policy}: {replay.reoptimizations} reoptimization(s)"
            + (
                f", target MLU {args.mlu_target:g}, hold {args.hold:g}s"
                if args.policy == "closed-loop"
                else ""
            )
        )
    rows = [row.as_row() for row in replay.outages]
    print()
    print(format_table(rows, title="Per-outage sustained state"))
    if replay.worst is not None:
        print(f"\nworst outage: {replay.worst.scenario_id} (MLU {replay.worst.mlu:.3f})")

    with _open_store(args) as store:
        manifest = RunManifest.create(
            kind="replay",
            topology=network.name,
            protocols=("even-ECMP",),
            scenario_set=scenario_set_fingerprint(scenarios),
            config={
                "command": "replay",
                "utilization": args.utilization,
                "seed": args.seed,
                "period": args.period,
                "outage": args.outage,
                "scenarios": len(scenarios),
                "events": replay.processed_events,
                "baseline_mlu": round(replay.baseline.mlu, 6),
                "final_mlu": round(replay.final.mlu, 6),
                "policy": args.policy,
                "reoptimizations": replay.reoptimizations,
            },
            timings={
                "elapsed": replay.elapsed,
                "incremental_updates": float(stats.incremental_updates),
                "full_rebuilds": float(stats.full_rebuilds),
                "dspt_fallback_rate": stats._per_update_fallback_rate(),
                "dspt_event_fallback_rate": stats.event_fallback_rate,
            },
        )
        records = [{**row, "topology": network.name} for row in rows]
        # Traced replays persist per-span aggregates for `repro results perf`
        # (untraced replays stay record-identical to previous releases).
        records.extend(profile_records(telemetry.get(), network.name))
        run_id = store.record_run(manifest, records)
        print(f"recorded run {run_id} in {store.path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the long-running TE control service.

    Foreground mode binds the JSON-lines socket and serves until a
    ``shutdown`` control frame (or SIGINT/SIGTERM), writing the graceful
    state dump on the way out.  ``--replay-trace FILE`` is soak mode: the
    daemon starts on a background event loop, the trace is fed through a
    real client socket, and the per-event measurements are recorded into
    the results store as a ``kind="serve"`` run — the run CI diffs against
    ``repro replay --trace-file`` on the same trace.
    """
    import asyncio
    import contextlib
    import signal
    import time as time_module

    from .online import ControllerSession, read_event_trace
    from .serve import ServeClient, ServerThread, TEServer

    topologies = args.topology or ["abilene"]
    if len(set(topologies)) != len(topologies):
        raise CLIError(f"duplicate --topology entries: {', '.join(topologies)}")
    sessions = {}
    for name in topologies:
        network, demands = build_workload(name, args.utilization, args.seed)
        session = ControllerSession(
            network,
            demands,
            policy=_build_policy(args),
            max_affected_fraction=args.max_affected_fraction,
            verify=args.verify,
        )
        sessions[session.key] = session
    server = TEServer(
        sessions,
        host=args.host,
        port=args.port,
        state_dump_path=args.state_dump,
    )

    if args.replay_trace:
        if len(sessions) != 1:
            raise CLIError("--replay-trace soaks exactly one session; pass one --topology")
        (key,) = sessions
        session = sessions[key]
        events = read_event_trace(args.replay_trace)
        start = time_module.perf_counter()
        with ServerThread(server) as runner, ServeClient(args.host, runner.port) as client:
            client.feed_trace(events, session=key)
            final_mlu = client.mlu(session=key)
            client.shutdown()
        elapsed = time_module.perf_counter() - start
        print(
            f"soaked {len(events)} events through the serve socket on {key} in "
            f"{elapsed * 1e3:.0f} ms wall; baseline MLU {session.baseline.mlu:.3f}, "
            f"final MLU {final_mlu:.3f}"
        )
        if args.state_dump:
            print(f"state dump written to {args.state_dump}")
        _record_trace_run(
            args,
            kind="serve",
            session=session,
            network=session.network,
            events=len(events),
            elapsed=elapsed,
            config={"command": "serve", "trace_file": str(args.replay_trace)},
        )
        return 0

    async def _run() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, server.request_shutdown)
        print(
            f"serving {len(server.sessions)} session(s) on "
            f"{server.host}:{server.port}: {', '.join(sorted(server.sessions))}"
        )
        print("send {\"type\": \"control\", \"action\": \"shutdown\"} "
              "(or SIGINT/SIGTERM) to stop")
        await server.serve_until_shutdown()

    asyncio.run(_run())
    if args.state_dump:
        print(f"state dump written to {args.state_dump}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace {sweep,replay}``: the wrapped command under telemetry.

    Activates a fresh :class:`~repro.obs.telemetry.TelemetryRegistry` for
    the duration of the wrapped command, then exports everything it
    collected as JSON lines (and, with ``--summary``, a compact text
    digest).  ``trace sweep`` forces ``--no-cache``: a cache hit skips the
    instrumented evaluation path entirely, and a trace of cache lookups
    is not what anyone asked for.
    """
    if args.trace_command == "sweep":
        args.no_cache = True
    wrapped = cmd_sweep if args.trace_command == "sweep" else cmd_replay
    registry = telemetry.TelemetryRegistry(
        label=f"trace-{args.trace_command}", memory=args.memory
    )
    telemetry.activate(registry)
    try:
        status = wrapped(args)
    finally:
        telemetry.deactivate()
    lines = registry.export_jsonl(args.trace)
    print(f"\nwrote {lines} trace line(s) to {args.trace}")
    if args.chrome_trace:
        events = write_chrome_trace(args.chrome_trace, registry)
        print(f"wrote {events} trace event(s) to {args.chrome_trace} "
              "(load in Perfetto / chrome://tracing)")
    if args.flamegraph:
        stacks = write_flamegraph(args.flamegraph, registry)
        print(f"wrote {stacks} collapsed stack(s) to {args.flamegraph} "
              "(render with speedscope / flamegraph.pl)")
    if args.summary:
        print()
        print(registry.summary())
    return status


def cmd_bench(args: argparse.Namespace) -> int:
    bench_dir = Path(args.benchmarks_dir)
    if not bench_dir.is_dir():
        print(
            f"benchmarks directory {bench_dir} not found — run `repro bench` from a "
            "repository checkout (or pass --benchmarks-dir)",
            file=sys.stderr,
        )
        return 2
    modules = sorted(set(args.module or BENCH_MODULES))
    paths = []
    for module in modules:
        if module not in BENCH_MODULES:
            print(
                f"unknown bench module {module!r}; known: {', '.join(sorted(BENCH_MODULES))}",
                file=sys.stderr,
            )
            return 2
        paths.append(str(bench_dir / BENCH_MODULES[module]))
    env = dict(os.environ)
    env["REPRO_RESULTS_DB"] = str(Path(args.store).resolve())
    env["REPRO_BENCH_SMOKE"] = "1" if args.smoke else "0"
    env["REPRO_FULL_BENCH"] = "1" if args.full else "0"
    command = [sys.executable, "-m", "pytest", "-q", *paths]
    print(f"$ {' '.join(command)}  (REPRO_BENCH_SMOKE={env['REPRO_BENCH_SMOKE']}, "
          f"REPRO_FULL_BENCH={env['REPRO_FULL_BENCH']}, store={env['REPRO_RESULTS_DB']})")
    completed = subprocess.run(command, env=env)
    return completed.returncode


def cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: the repo's custom static-analysis pass."""
    from .devtools import CheckError, check_paths, format_json, format_rule_listing, format_table

    if args.list_rules:
        print(format_rule_listing())
        return 0
    paths = args.paths or ["src"]
    try:
        result = check_paths(paths, rule_filter=args.rule)
    except CheckError as exc:
        raise CLIError(str(exc)) from None
    output = format_json(result) if args.format == "json" else format_table(result)
    print(output, end="" if output.endswith("\n") else "\n")
    return 0 if result.ok else 1


def cmd_results_list(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        manifests = store.runs(kind=args.kind, benchmark=args.benchmark, limit=args.limit)
        if not manifests and args.format == "table":
            print(f"no runs recorded in {store.path}")
            return 0
        print(
            format_output(
                [m.summary_row() for m in manifests],
                fmt=args.format,
                title=f"runs in {store.path}",
            )
        )
    return 0


def cmd_results_show(args: argparse.Namespace) -> int:
    fmt = "json" if args.json else args.format
    with _open_store(args) as store:
        manifest = store.get_run(args.run)
        records = store.records(manifest.run_id)
        if fmt == "json":
            payload = {
                "manifest": manifest.to_row(),
                "records": [] if args.no_records else records,
            }
            # to_row packs config/timings/protocols as JSON strings; unpack
            # them again so --json output is plain nested JSON.
            payload["manifest"]["protocols"] = list(manifest.protocols)
            payload["manifest"]["config"] = manifest.config
            payload["manifest"]["timings"] = manifest.timings
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if fmt == "csv":
            # CSV is for machines: records only, no manifest preamble.
            print(format_output(records, fmt="csv"))
            return 0
        for key, value in manifest.to_row().items():
            print(f"{key:>16}: {value}")
        if records and not args.no_records:
            print()
            print(format_output(records, fmt=fmt, title=f"{len(records)} record(s)"))
    return 0


def cmd_results_query(args: argparse.Namespace) -> int:
    fmt = "json" if args.json else args.format
    with _open_store(args) as store:
        rows = store.query(
            kind=args.kind,
            benchmark=args.benchmark,
            run=args.run,
            topology=args.topology,
            workload=args.workload,
            scenario=args.scenario,
            protocol=args.protocol,
            limit=args.limit,
        )
        if not rows and fmt == "table":
            print("no matching records")
        else:
            print(format_output(rows, fmt=fmt))
    return 0


def cmd_results_plot(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        rows = store.query(
            kind=args.kind,
            benchmark=args.benchmark,
            topology=args.topology,
            workload=args.workload,
            scenario=args.scenario,
            protocol=args.protocol,
            limit=args.limit,
        )
    series = metric_trend(rows, args.metric, agg=args.agg, by=args.by)
    print(f"{args.metric} ({args.agg} per run, oldest → newest)")
    print()
    print(render_terminal(series, args.metric))
    if args.png:
        backend = write_png(args.png, series, args.metric, backend=args.png_backend)
        print(f"\nwrote {args.png} ({backend} backend)")
    return 0


def cmd_results_perf(args: argparse.Namespace) -> int:
    """``repro results perf``: span-timing trends and the regression gate.

    Without ``--gate``, renders per-span self-time trends over the stored
    ``__profile__`` records (the same sparkline machinery as ``results
    plot``).  With ``--gate BASE..HEAD``, compares HEAD's spans against the
    run history ending at BASE (median ± k·MAD noise band, absolute and
    relative floors) and exits 1 when any span regressed.
    """
    with _open_store(args) as store:
        if args.gate:
            base_ref, separator, head_ref = args.gate.partition("..")
            if not separator or not base_ref or not head_ref:
                raise CLIError(
                    f"malformed --gate reference {args.gate!r} (expected BASE..HEAD, "
                    "e.g. 'latest~1:sweep..latest:sweep')"
                )
            report = perf_gate(
                store,
                base_ref,
                head_ref,
                metric=args.metric,
                k=args.k,
                min_seconds=args.min_seconds,
                rel_floor=args.rel_floor,
                window=args.window,
            )
            print(report.summary())
            shown = [v for v in report.verdicts if v.regressed or args.all]
            if shown:
                print()
                print(format_table([verdict.as_row() for verdict in shown]))
            if not report.ok:
                print(f"\nFAIL: {len(report.regressions)} span(s) regressed "
                      f"beyond the noise band")
                return 1
            print("\nOK: no span regressed beyond the noise band")
            return 0
        rows = profile_rows(
            store,
            kind=args.kind,
            topology=args.topology,
            span=args.span,
            limit=args.limit,
        )
        if not rows:
            print(f"no {PROFILE_SCENARIO!r} records in {store.path} — profile "
                  "records are written by `repro trace` runs")
            return 0
        series = metric_trend(rows, args.metric, agg="sum", by="span")
        if args.last is not None:
            for s in series:
                del s.points[: max(0, len(s.points) - args.last)]
        print(f"{args.metric} per span (sum per run, oldest → newest)")
        print()
        print(render_terminal(series, args.metric))
    return 0


def cmd_results_diff(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        try:
            side_a = _resolve_side(store, args.run_a)
            side_b = _resolve_side(store, args.run_b)
        except ResultsStoreError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        diff = store.diff(side_a, side_b, rtol=args.rtol, atol=args.atol)
    print(diff.summary())
    shown = diff.entries if args.all else diff.mismatches
    if shown:
        print()
        print(format_table([entry.as_row() for entry in shown]))
        print("\n(* = informational: timing/shape fields never gate;"
              " metric fields gate unless workload flags differ)")
    if not diff.ok:
        missing = len(diff.only_in_a) + len(diff.only_in_b)
        reasons = []
        if diff.hard_mismatches:
            reasons.append(f"{len(diff.hard_mismatches)} hard metric mismatch(es)")
        if missing:
            reasons.append(f"{missing} record(s) present on one side only")
        print(f"\nFAIL: {', '.join(reasons)}")
        return 1 if args.fail_on == "metric" else 0
    print("\nOK: no hard metric mismatches")
    return 0


def cmd_results_export(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        text = store.export_bench_view(args.benchmark, run=args.run)
        if args.output:
            Path(args.output).write_text(text)
            print(f"wrote {args.output}")
        else:
            sys.stdout.write(text)
    return 0


def cmd_results_import(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        for path in args.paths:
            run_id = store.import_bench_view(path)
            print(f"imported {path} as run {run_id}")
    return 0


def cmd_results_delete(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        run_id = store.delete_run(args.run)
        print(f"deleted run {run_id}")
    return 0


def cmd_results_gc(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        deleted = store.gc(args.keep_last, kind=args.kind, benchmark=args.benchmark)
        kept = len(store.runs(kind=args.kind, benchmark=args.benchmark))
        if deleted:
            print(
                f"deleted {len(deleted)} run(s), keeping the newest "
                f"{args.keep_last} per (kind, benchmark); {kept} run(s) remain"
            )
            for run_id in deleted:
                print(f"  {run_id}")
        else:
            print(f"nothing to delete; {kept} run(s) within retention")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def _add_controller_arguments(parser: argparse.ArgumentParser) -> None:
    """DynamicSPT knobs shared by sweep and replay (and their traced twins)."""
    parser.add_argument(
        "--max-affected-fraction",
        type=float,
        default=None,
        help="affected-cone fraction above which an incremental DAG update "
        "falls back to a full Dijkstra rebuild (default: auto-tuned per "
        "topology class — 0.9 on dense graphs, 0.5 otherwise)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="shadow-verify every incremental DAG update against a full "
        "rebuild (slow; mismatches are counted and repaired)",
    )


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", default="abilene", choices=sorted(TOPOLOGIES))
    parser.add_argument(
        "--protocols",
        default="OSPF",
        help="comma-separated protocol entries, parameters passed through as "
        "NAME:key=value[:key=value...] — e.g. OSPF,SPEF:beta=2.0,"
        "FortzThorup:seed=1:restarts=2 (default: OSPF)",
    )
    parser.add_argument(
        "--scenarios",
        default="single-link-failures",
        choices=sorted(SCENARIO_SETS),
        help="scenario-set generator (default: single-link-failures)",
    )
    parser.add_argument("--utilization", type=float, default=0.1,
                        help="gravity demand volume as a fraction of total capacity")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--limit", type=int, default=None,
                        help="evaluate only the first N scenarios")
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool size (0 = serial, the default)")
    parser.add_argument("--parallel", action="store_true",
                        help="shard scenario chunks across all CPUs, one online "
                        "controller per worker (overrides --workers)")
    parser.add_argument("--cache-dir", default=None,
                        help="scenario result-cache directory (default: $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the scenario result cache")
    _add_controller_arguments(parser)
    parser.set_defaults(handler=cmd_sweep)


def _add_policy_arguments(parser: argparse.ArgumentParser) -> None:
    """Closed-loop policy knobs shared by replay and serve."""
    parser.add_argument(
        "--policy",
        choices=("none", "closed-loop", "oracle"),
        default="none",
        help="closed-loop reoptimization: 'closed-loop' reoptimizes after "
        "the MLU stays above --mlu-target for --hold seconds; 'oracle' "
        "reoptimizes after every event (the baseline any threshold policy "
        "is measured against)",
    )
    parser.add_argument("--mlu-target", type=float, default=0.9,
                        help="closed-loop MLU ceiling (default: 0.9)")
    parser.add_argument("--hold", type=float, default=30.0,
                        help="seconds a breach must persist before reoptimizing")
    parser.add_argument("--cooldown", type=float, default=120.0,
                        help="minimum seconds between reoptimizations")
    parser.add_argument("--reopt-evaluations", type=int, default=150,
                        help="Fortz-Thorup evaluation budget per reoptimization")


def _add_replay_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", default="abilene", choices=sorted(TOPOLOGIES))
    parser.add_argument("--utilization", type=float, default=0.12)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--period", type=float, default=600.0,
                        help="seconds between consecutive outages")
    parser.add_argument("--outage", type=float, default=300.0,
                        help="seconds each outage lasts")
    parser.add_argument("--limit", type=int, default=None,
                        help="replay only the first N trunk failures")
    parser.add_argument("--trace-file", default=None, metavar="PATH",
                        help="replay a wire-schema JSONL event trace instead of the "
                        "generated single-link failures; records one row per event "
                        "(malformed lines are hard errors with line numbers)")
    parser.add_argument("--export-trace", default=None, metavar="PATH",
                        help="also write the generated failure/recovery trace as "
                        "wire-schema JSONL (feed it back via --trace-file or "
                        "`repro serve --replay-trace`)")
    _add_policy_arguments(parser)
    _add_controller_arguments(parser)
    parser.set_defaults(handler=cmd_replay)


def _add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", action="append", choices=sorted(TOPOLOGIES),
                        help="topology session(s) to host (repeatable; "
                        "default: abilene)")
    parser.add_argument("--utilization", type=float, default=0.12)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks a free port, printed on start)")
    parser.add_argument("--state-dump", default=None, metavar="PATH",
                        help="write every session's state dump here on graceful "
                        "shutdown (byte-stable JSON)")
    parser.add_argument("--replay-trace", default=None, metavar="PATH",
                        help="soak mode: feed this wire-schema JSONL trace through "
                        "a real client socket, record per-event measurements as a "
                        "kind='serve' run, then shut down")
    _add_policy_arguments(parser)
    _add_controller_arguments(parser)
    parser.set_defaults(handler=cmd_serve)


def build_parser() -> argparse.ArgumentParser:
    store_parent = argparse.ArgumentParser(add_help=False)
    store_parent.add_argument(
        "--store",
        default=str(default_results_path()),
        help="results store SQLite file (default: $REPRO_RESULTS_DB or "
        "~/.cache/repro/results.sqlite)",
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sweeps, replays, benchmarks and the queryable results store "
        "of the SPEF (ICDCS 2011) reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sweep = subparsers.add_parser(
        "sweep",
        parents=[store_parent],
        help="run a protocol x scenario robustness sweep and record it",
    )
    _add_sweep_arguments(sweep)

    replay = subparsers.add_parser(
        "replay",
        parents=[store_parent],
        help="replay a failure/recovery trace through the online TE controller",
    )
    _add_replay_arguments(replay)

    serve = subparsers.add_parser(
        "serve",
        parents=[store_parent],
        help="serve TE controller sessions over a JSON-lines TCP socket",
    )
    _add_serve_arguments(serve)

    trace = subparsers.add_parser(
        "trace",
        help="run a sweep or replay under telemetry and export trace.jsonl",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    for trace_command, add_arguments in (
        ("sweep", _add_sweep_arguments),
        ("replay", _add_replay_arguments),
    ):
        traced = trace_sub.add_parser(
            trace_command,
            parents=[store_parent],
            help=f"`repro {trace_command}` with spans/counters/histograms recorded"
            + (" (forces --no-cache)" if trace_command == "sweep" else ""),
        )
        add_arguments(traced)
        traced.add_argument("--trace", default="trace.jsonl", metavar="PATH",
                            help="JSON-lines trace output path (default: trace.jsonl)")
        traced.add_argument("--chrome-trace", default=None, metavar="PATH",
                            help="also write a Chrome trace-event JSON "
                            "(Perfetto / chrome://tracing)")
        traced.add_argument("--flamegraph", default=None, metavar="PATH",
                            help="also write a collapsed-stack flamegraph file "
                            "(speedscope / flamegraph.pl)")
        traced.add_argument("--memory", action="store_true",
                            help="track per-span allocations via tracemalloc "
                            "(slower; adds alloc/peak bytes to span records)")
        traced.add_argument("--summary", action="store_true",
                            help="also print the compact telemetry summary")
        traced.set_defaults(handler=cmd_trace)

    check = subparsers.add_parser(
        "check",
        help="run the repo's static-analysis pass (determinism/byte-stability "
        "invariants, rules REP001-REP007)",
    )
    check.add_argument("paths", nargs="*", metavar="PATH",
                       help="files or directories to lint (default: src)")
    check.add_argument("--rule", action="append", metavar="REPxxx",
                       help="only report this rule (repeatable; the full rule "
                       "set still runs for suppression accounting)")
    check.add_argument("--format", choices=("table", "json"), default="table",
                       help="report format (default: table)")
    check.add_argument("--list-rules", action="store_true",
                       help="print the rule table and exit")
    check.set_defaults(handler=cmd_check)

    bench = subparsers.add_parser(
        "bench",
        parents=[store_parent],
        help="run the benchmark harness (pytest) and record into the store",
    )
    bench.add_argument("--module", action="append", choices=sorted(BENCH_MODULES),
                       help="bench module(s) to run (default: all)")
    bench_mode = bench.add_mutually_exclusive_group()
    bench_mode.add_argument("--smoke", action="store_true",
                            help="tiny workloads, correctness-only (CI smoke mode)")
    bench_mode.add_argument("--full", action="store_true",
                            help="full (slow) sweep sizes")
    bench.add_argument("--benchmarks-dir", default="benchmarks",
                       help="path to the benchmarks directory (default: ./benchmarks)")
    bench.set_defaults(handler=cmd_bench)

    results = subparsers.add_parser("results", help="query the results store")
    results_sub = results.add_subparsers(dest="results_command", required=True)

    results_list = results_sub.add_parser("list", parents=[store_parent],
                                          help="list recorded runs, newest first")
    results_list.add_argument("--kind", default=None)
    results_list.add_argument("--benchmark", default=None)
    results_list.add_argument("--limit", type=int, default=20)
    results_list.add_argument("--format", choices=FORMATS, default="table",
                              help="output format (default: table)")
    results_list.set_defaults(handler=cmd_results_list)

    results_show = results_sub.add_parser("show", parents=[store_parent],
                                          help="show one run's manifest and records")
    results_show.add_argument("run", help="run id, unique prefix, or latest[:benchmark]")
    results_show.add_argument("--format", choices=FORMATS, default="table",
                              help="output format; csv prints the records only "
                              "(default: table)")
    results_show.add_argument("--json", action="store_true",
                              help="alias for --format json")
    results_show.add_argument("--no-records", action="store_true")
    results_show.set_defaults(handler=cmd_results_show)

    results_query = results_sub.add_parser("query", parents=[store_parent],
                                           help="flat record rows across runs")
    results_query.add_argument("--kind", default=None)
    results_query.add_argument("--benchmark", default=None)
    results_query.add_argument("--run", default=None)
    results_query.add_argument("--topology", default=None)
    results_query.add_argument("--workload", default=None)
    results_query.add_argument("--scenario", default=None)
    results_query.add_argument("--protocol", default=None)
    results_query.add_argument("--limit", type=int, default=None)
    results_query.add_argument("--format", choices=FORMATS, default="table",
                               help="output format (default: table)")
    results_query.add_argument("--json", action="store_true",
                               help="alias for --format json")
    results_query.set_defaults(handler=cmd_results_query)

    results_plot = results_sub.add_parser(
        "plot",
        parents=[store_parent],
        help="per-metric trendline over stored runs (sparkline + optional PNG)",
    )
    results_plot.add_argument("--metric", required=True,
                              help="record field to plot, e.g. max_utilization")
    results_plot.add_argument("--agg", choices=AGGREGATIONS, default="mean",
                              help="how to collapse a run's records to one value "
                              "(default: mean)")
    results_plot.add_argument("--by", default=None, metavar="FIELD",
                              help="split into one series per value of this field, "
                              "e.g. protocol")
    results_plot.add_argument("--png", default=None, metavar="PATH",
                              help="also write a PNG (matplotlib when available, "
                              "builtin raster writer otherwise)")
    results_plot.add_argument("--png-backend", choices=PNG_BACKENDS, default="auto",
                              help="PNG renderer: auto picks matplotlib when "
                              "importable; builtin forces the pure-stdlib "
                              "raster writer (default: auto)")
    results_plot.add_argument("--kind", default=None)
    results_plot.add_argument("--benchmark", default=None)
    results_plot.add_argument("--topology", default=None)
    results_plot.add_argument("--workload", default=None)
    results_plot.add_argument("--scenario", default=None)
    results_plot.add_argument("--protocol", default=None)
    results_plot.add_argument("--limit", type=int, default=None,
                              help="consider only the newest N records")
    results_plot.set_defaults(handler=cmd_results_plot)

    results_perf = results_sub.add_parser(
        "perf",
        parents=[store_parent],
        help="span-timing trends over traced runs, and the --gate regression check",
    )
    results_perf.add_argument("--metric", default="self_seconds",
                              help="profile record field to trend/gate "
                              "(default: self_seconds)")
    results_perf.add_argument("--span", default=None, metavar="NAME",
                              help="restrict to one span name")
    results_perf.add_argument("--kind", default=None,
                              help="restrict to runs of this kind (sweep, replay)")
    results_perf.add_argument("--topology", default=None)
    results_perf.add_argument("--last", type=int, default=None, metavar="N",
                              help="show only the newest N runs per span trend")
    results_perf.add_argument("--limit", type=int, default=None,
                              help="consider only the newest N profile records")
    results_perf.add_argument("--gate", default=None, metavar="BASE..HEAD",
                              help="regression gate: compare HEAD's span timings "
                              "against the run history ending at BASE "
                              "(e.g. 'latest~1:sweep..latest:sweep'); exits 1 "
                              "on regressions")
    results_perf.add_argument("--k", type=float, default=5.0,
                              help="MAD multiplier for the noise band (default: 5)")
    results_perf.add_argument("--min-seconds", type=float, default=0.005,
                              help="absolute floor below which a span never "
                              "regresses (default: 0.005)")
    results_perf.add_argument("--rel-floor", type=float, default=0.5,
                              help="relative floor as a fraction of the baseline "
                              "median (default: 0.5)")
    results_perf.add_argument("--window", type=int, default=10,
                              help="baseline history window in runs, walking back "
                              "from BASE (default: 10)")
    results_perf.add_argument("--all", action="store_true",
                              help="with --gate, show every gated span, not only "
                              "regressions")
    results_perf.set_defaults(handler=cmd_results_perf)

    results_diff = results_sub.add_parser(
        "diff",
        parents=[store_parent],
        help="compare two runs (run refs or BENCH_*.json view files)",
    )
    results_diff.add_argument("run_a")
    results_diff.add_argument("run_b")
    results_diff.add_argument("--rtol", type=float, default=1e-6)
    results_diff.add_argument("--atol", type=float, default=1e-9)
    results_diff.add_argument("--all", action="store_true",
                              help="show every compared field, not only mismatches")
    results_diff.add_argument(
        "--fail-on",
        choices=("metric", "none"),
        default="metric",
        help="exit non-zero on hard metric mismatches (default) or never",
    )
    results_diff.set_defaults(handler=cmd_results_diff)

    results_export = results_sub.add_parser(
        "export",
        parents=[store_parent],
        help="export a bench run as its BENCH_*.json view",
    )
    results_export.add_argument("benchmark",
                                help=f"benchmark name, e.g. {', '.join(sorted(VIEW_FILENAMES))}")
    results_export.add_argument("--run", default=None,
                                help="run reference (default: latest run of the benchmark)")
    results_export.add_argument("-o", "--output", default=None,
                                help="write to this path instead of stdout")
    results_export.set_defaults(handler=cmd_results_export)

    results_import = results_sub.add_parser(
        "import",
        parents=[store_parent],
        help="import BENCH_*.json view files as runs",
    )
    results_import.add_argument("paths", nargs="+")
    results_import.set_defaults(handler=cmd_results_import)

    results_delete = results_sub.add_parser("delete", parents=[store_parent],
                                            help="delete a run and its records")
    results_delete.add_argument("run")
    results_delete.set_defaults(handler=cmd_results_delete)

    results_gc = results_sub.add_parser(
        "gc",
        parents=[store_parent],
        help="retention: delete all but the newest N runs per (kind, benchmark)",
    )
    results_gc.add_argument("--keep-last", type=int, required=True, metavar="N",
                            help="runs to keep in each (kind, benchmark) family")
    results_gc.add_argument("--kind", default=None,
                            help="only trim runs of this kind")
    results_gc.add_argument("--benchmark", default=None,
                            help="only trim runs of this benchmark")
    results_gc.set_defaults(handler=cmd_results_gc)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point (``[project.scripts] repro = repro.cli:main``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (CLIError, EventError, PerfError, PlotError, ResultsStoreError, RunnerError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `repro results query | head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
