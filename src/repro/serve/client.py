"""A small blocking client for the serve protocol.

:class:`ServeClient` speaks the JSON-lines frame protocol of
:mod:`repro.serve.wire` over one TCP connection.  It is deliberately
synchronous — the consumers are tests, the soak recorder and operator
one-liners, none of which want an event loop of their own::

    with ServeClient("127.0.0.1", port) as client:
        row = client.feed_event(LinkFailure(link=(u, v), time=0.0))["row"]
        print(client.mlu(), client.status()["failed_links"])
        client.shutdown()
"""

from __future__ import annotations

import json
import socket
from collections.abc import Iterable

from ..online.events import NetworkEvent, to_dict
from .wire import PROTOCOL_VERSION, desanitize


class ServeClientError(RuntimeError):
    """A transport failure or an ``ok: false`` response from the server."""


class ServeClient:
    """One blocking JSON-lines connection to a :class:`~repro.serve.TEServer`."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def request(self, frame: dict[str, object]) -> dict[str, object]:
        """Send one raw frame and return the raw response (ok or not)."""
        payload = dict(frame)
        payload.setdefault("v", PROTOCOL_VERSION)
        self._file.write(json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeClientError("server closed the connection")
        try:
            response = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeClientError(f"unparseable response: {exc}") from None
        if not isinstance(response, dict):
            raise ServeClientError(f"non-object response: {response!r}")
        return response

    def call(self, frame: dict[str, object]) -> dict[str, object]:
        """Send one frame; return ``result`` or raise on an error response."""
        response = self.request(frame)
        if not response.get("ok"):
            raise ServeClientError(str(response.get("error", "unknown server error")))
        result = desanitize(response.get("result"))
        return result if isinstance(result, dict) else {"result": result}

    def send_line(self, line: bytes) -> dict[str, object]:
        """Send pre-serialised bytes (for malformed-frame tests) and read back."""
        self._file.write(line.rstrip(b"\n") + b"\n")
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ServeClientError("server closed the connection")
        return json.loads(raw.decode("utf-8"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> ServeClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def feed_event(
        self,
        event: NetworkEvent | dict[str, object],
        session: str | None = None,
    ) -> dict[str, object]:
        """Feed one event (a :class:`NetworkEvent` or its wire dict)."""
        payload = to_dict(event) if isinstance(event, NetworkEvent) else dict(event)
        frame: dict[str, object] = {"type": "event", "event": payload}
        if session is not None:
            frame["session"] = session
        return self.call(frame)

    def feed_trace(
        self,
        events: Iterable[NetworkEvent | dict[str, object]],
        session: str | None = None,
    ) -> list[dict[str, object]]:
        """Feed events in order; returns each event's result frame."""
        return [self.feed_event(event, session=session) for event in events]

    # ------------------------------------------------------------------
    # queries and controls
    # ------------------------------------------------------------------
    def query(
        self,
        query: str,
        session: str | None = None,
        destination: str | None = None,
    ) -> dict[str, object]:
        frame: dict[str, object] = {"type": "query", "query": query}
        if session is not None:
            frame["session"] = session
        if destination is not None:
            frame["destination"] = destination
        return self.call(frame)

    def control(self, action: str, session: str | None = None) -> dict[str, object]:
        frame: dict[str, object] = {"type": "control", "action": action}
        if session is not None:
            frame["session"] = session
        return self.call(frame)

    def mlu(self, session: str | None = None) -> float:
        return float(self.query("mlu", session=session)["mlu"])

    def status(self, session: str | None = None) -> dict[str, object]:
        return self.query("status", session=session)

    def counters(self, session: str | None = None) -> dict[str, object]:
        return self.query("counters", session=session)

    def forwarding(
        self, destination: str, session: str | None = None
    ) -> dict[str, object]:
        return self.query("forwarding", session=session, destination=destination)

    def sessions(self) -> list[str]:
        return list(self.query("sessions")["sessions"])

    def dump(self, session: str | None = None) -> dict[str, object]:
        return self.control("dump", session=session)["dumps"]

    def reoptimize(self, session: str | None = None) -> dict[str, object]:
        return self.control("reoptimize", session=session)

    def shutdown(self) -> dict[str, object]:
        return self.control("shutdown")
