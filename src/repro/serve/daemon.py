"""The ``repro serve`` daemon: TE controller sessions behind a TCP socket.

:class:`TEServer` hosts one :class:`~repro.online.session.ControllerSession`
per topology (multi-tenant, keyed the way the results store keys runs) on
an asyncio JSON-lines server.  The asyncio loop only parses frames and
routes them; everything that touches controller state — event application,
measurement, offline reoptimization — runs in a worker thread through a
per-session lock, so a slow reoptimization on one tenant never blocks
another tenant's feed, and the event loop itself never blocks at all.

Shutdown is graceful: the ``shutdown`` control frame is acknowledged,
the listening socket closes, in-flight work drains, and every session's
:meth:`~repro.online.session.ControllerSession.state_dump` is written
byte-stably to ``state_dump_path`` (same state ⇒ same bytes).

:class:`ServerThread` runs a server on a dedicated event loop in a
background thread — the harness behind the end-to-end tests and the
``repro serve --replay-trace`` soak mode, both of which need to drive the
real socket from synchronous code.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from collections.abc import Callable, Mapping, Sequence
from typing import Any

from ..network import NetworkError
from ..online.events import EventError
from ..online.session import ROW_DECIMALS, ControllerSession
from . import wire
from .wire import Frame, WireError


class TEServer:
    """A multi-tenant TE control service over JSON-lines TCP frames.

    Parameters
    ----------
    sessions:
        The hosted sessions, keyed by session key (normally
        ``session.key``, the topology name).
    host, port:
        Bind address; ``port=0`` picks a free port (read :attr:`port`
        after :meth:`start`).
    state_dump_path:
        Where the graceful-shutdown state dump is written (one JSON file
        holding every session's dump, byte-stable).  ``None`` skips it.
    """

    def __init__(
        self,
        sessions: Mapping[str, ControllerSession],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        state_dump_path: str | Path | None = None,
        max_workers: int | None = None,
    ) -> None:
        if not sessions:
            raise ValueError("TEServer needs at least one session")
        self.sessions: dict[str, ControllerSession] = dict(sessions)
        self.host = host
        self.port = port
        self.state_dump_path = Path(state_dump_path) if state_dump_path else None
        self._max_workers = max_workers if max_workers else max(2, len(self.sessions))
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._locks: dict[str, asyncio.Lock] = {}
        self._stopping: asyncio.Event | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        #: Frames answered since start, by outcome (observability only).
        self.frames_ok = 0
        self.frames_error = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (resolves :attr:`port` when it was 0)."""
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="repro-serve"
        )
        self._locks = {key: asyncio.Lock() for key in self.sessions}
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=wire.MAX_FRAME_BYTES + 2
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` control frame (or :meth:`request_shutdown`)."""
        if self._server is None:
            await self.start()
        assert self._stopping is not None
        await self._stopping.wait()
        await self._shutdown()

    async def run(self) -> None:
        """Start and serve until shutdown (the foreground entry point)."""
        await self.start()
        await self.serve_until_shutdown()

    def request_shutdown(self) -> None:
        """Trigger graceful shutdown from the event-loop thread."""
        if self._stopping is not None:
            self._stopping.set()

    async def _shutdown(self) -> None:
        assert self._server is not None
        self._server.close()
        for writer in list(self._writers):
            writer.close()
        with contextlib.suppress(Exception):
            await self._server.wait_closed()
        # Drain: once every per-session lock can be taken, no state-touching
        # work is still in flight.
        for key in sorted(self._locks):
            async with self._locks[key]:
                pass
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self.state_dump_path is not None:
            self.state_dump_path.parent.mkdir(parents=True, exist_ok=True)
            self.state_dump_path.write_text(
                wire.dumps_state_file(self.state_dumps()), encoding="utf-8"
            )

    def state_dumps(self) -> dict[str, dict[str, object]]:
        """Every session's state dump, keyed by session key."""
        return {key: session.state_dump() for key, session in self.sessions.items()}

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        stop = False
        try:
            while not stop:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Oversized frame: report it and drop the connection (the
                    # stream is no longer line-synchronised).
                    writer.write(
                        wire.error_frame(
                            f"frame exceeds {wire.MAX_FRAME_BYTES} bytes"
                        )
                    )
                    self.frames_error += 1
                    await writer.drain()
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response, stop = await self._dispatch(line.strip())
                try:
                    writer.write(response)
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
        except asyncio.CancelledError:
            # Loop teardown at shutdown cancels handlers still waiting on a
            # read; finish the task cleanly so the streams callback does not
            # log the cancellation as an unhandled exception.
            pass
        finally:
            self._writers.discard(writer)
            # Responses were drained before reaching here; a plain close is
            # enough (awaiting wait_closed would race loop teardown on the
            # shutdown path).
            writer.close()
        if stop and self._stopping is not None:
            self._stopping.set()

    async def _dispatch(self, line: bytes) -> tuple[bytes, bool]:
        """Answer one frame; returns ``(response_bytes, shutdown_requested)``."""
        try:
            frame = wire.parse_frame(line)
            result, stop = await self._execute(frame)
        except (WireError, EventError, NetworkError) as exc:
            # NetworkError covers schema-valid frames naming entities the
            # topology doesn't have (unknown link/node); the lookup raises
            # before any state mutation, so the session is untouched.
            self.frames_error += 1
            return wire.error_frame(str(exc)), False
        self.frames_ok += 1
        return wire.ok_frame(result), stop

    def _resolve(self, key: str | None) -> str:
        serving = ", ".join(sorted(self.sessions))
        if key is None:
            if len(self.sessions) == 1:
                return next(iter(self.sessions))
            raise WireError(f"'session' is required (serving: {serving})")
        if key not in self.sessions:
            raise WireError(f"unknown session {key!r} (serving: {serving})")
        return key

    async def _in_worker(
        self, key: str, func: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Any:
        """Run state-touching work off the event loop, one-at-a-time per session."""
        assert self._loop is not None and self._executor is not None
        async with self._locks[key]:
            call = functools.partial(func, *args, **kwargs)
            return await self._loop.run_in_executor(self._executor, call)

    async def _execute(self, frame: Frame) -> tuple[dict[str, object], bool]:
        if frame.type == "event":
            return await self._execute_event(frame), False
        if frame.type == "query":
            return await self._execute_query(frame), False
        if frame.action == "dump":
            return await self._execute_dump(frame), False
        if frame.action == "reoptimize":
            return await self._execute_reoptimize(frame), False
        # shutdown: acknowledge first, then stop (the caller sets the event
        # only after the response reached the socket).
        return {"stopping": True, "sessions": sorted(self.sessions)}, True

    async def _execute_event(self, frame: Frame) -> dict[str, object]:
        key = self._resolve(frame.session)
        session = self.sessions[key]
        before = len(session.rows)
        await self._in_worker(key, session.feed, frame.event)
        added: list[dict[str, object]] = [dict(row) for row in session.rows[before:]]
        # feed() appends the event's own row first; any further rows are
        # policy reoptimizations it triggered.
        return {"session": key, "row": added[0], "policy_rows": added[1:]}

    async def _execute_query(self, frame: Frame) -> dict[str, object]:
        if frame.query == "sessions":
            return {"sessions": sorted(self.sessions)}
        key = self._resolve(frame.session)
        session = self.sessions[key]
        if frame.query == "mlu":
            measurement = await self._in_worker(key, session.measure)
            return {
                "session": key,
                "mlu": round(measurement.mlu, ROW_DECIMALS),
                "connected": measurement.connected,
            }
        if frame.query == "status":
            return await self._in_worker(key, session.status)
        if frame.query == "counters":
            result = await self._in_worker(key, session.counters)
            result["session"] = key
            return result
        # forwarding: destinations arrive as strings on the wire; resolve
        # them against the topology's node names.
        by_name = {str(node): node for node in session.network.nodes}
        destination = by_name.get(frame.destination) if frame.destination else None
        if destination is None:
            raise WireError(
                f"unknown destination {frame.destination!r} in session {key!r}"
            )
        result = await self._in_worker(key, session.forwarding, destination)
        result["session"] = key
        return result

    async def _execute_dump(self, frame: Frame) -> dict[str, object]:
        keys = (
            [self._resolve(frame.session)]
            if frame.session is not None
            else sorted(self.sessions)
        )
        dumps: dict[str, object] = {}
        for key in keys:
            dumps[key] = await self._in_worker(key, self.sessions[key].state_dump)
        return {"dumps": dumps}

    async def _execute_reoptimize(self, frame: Frame) -> dict[str, object]:
        key = self._resolve(frame.session)
        session = self.sessions[key]
        before = len(session.rows)
        await self._in_worker(key, session.reoptimize_offline)
        row = dict(session.rows[-1]) if len(session.rows) > before else None
        return {"session": key, "row": row}


class ServerThread:
    """Run a :class:`TEServer` on a private event loop in a daemon thread.

    The synchronous harness for tests and the ``--replay-trace`` soak mode::

        with ServerThread(TEServer(sessions)) as runner:
            client = ServeClient("127.0.0.1", runner.port)
            ...

    Exiting the context requests a graceful shutdown (state dump included)
    and joins the thread.
    """

    def __init__(self, server: TEServer, *, join_timeout: float = 30.0) -> None:
        self.server = server
        self.join_timeout = join_timeout
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> ServerThread:
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:  # surface bind errors to the caller
            self._error = exc
            self._started.set()
            return
        self._loop = asyncio.get_running_loop()
        self._started.set()
        await self.server.serve_until_shutdown()

    def stop(self) -> None:
        """Request graceful shutdown and wait for the loop thread to exit."""
        if self._thread is None:
            return
        if self._loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(self.join_timeout)
        if self._thread.is_alive():
            raise RuntimeError("serve loop did not shut down in time")
        self._thread = None
        self._loop = None

    def __enter__(self) -> ServerThread:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def build_sessions(
    specs: Sequence[ControllerSession],
) -> dict[str, ControllerSession]:
    """Key a list of sessions by :attr:`ControllerSession.key` (must be unique)."""
    sessions: dict[str, ControllerSession] = {}
    for session in specs:
        if session.key in sessions:
            raise ValueError(f"duplicate session key {session.key!r}")
        sessions[session.key] = session
    return sessions
