"""``repro serve``: a long-running TE control service over a TCP socket.

The serve stack is three thin layers over the one real API,
:class:`~repro.online.session.ControllerSession`:

* :mod:`~repro.serve.wire` — the versioned JSON-lines frame protocol
  (event payloads are exactly the trace-file wire schema of
  :mod:`repro.online.events`, parsed by the same validator);
* :mod:`~repro.serve.daemon` — :class:`TEServer`, the asyncio daemon
  hosting one session per topology with per-session locks, worker-thread
  event application and a graceful shutdown that writes a byte-stable
  state dump; :class:`ServerThread` runs it from synchronous code;
* :mod:`~repro.serve.client` — :class:`ServeClient`, the blocking client
  used by the tests, the soak recorder and operator one-liners.

Because the daemon drives ``ControllerSession.feed`` — the same method
the batch replay drives — a trace fed over the socket reports
measurements bit-for-bit identical to ``repro replay`` on the same
trace; the CI serve-smoke job gates on that diff.
"""

from .client import ServeClient, ServeClientError
from .daemon import ServerThread, TEServer, build_sessions
from .wire import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Frame,
    WireError,
    dumps_state,
    dumps_state_file,
    error_frame,
    ok_frame,
    parse_frame,
)

__all__ = [
    "Frame",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeClientError",
    "ServerThread",
    "TEServer",
    "WireError",
    "build_sessions",
    "dumps_state",
    "dumps_state_file",
    "error_frame",
    "ok_frame",
    "parse_frame",
]
