"""The serve protocol: versioned JSON-lines frames over a TCP socket.

One request frame per line, one response frame per line, both plain JSON
objects.  The *event* vocabulary is not redefined here — event payloads
are exactly the wire-schema dicts of :func:`repro.online.events.to_dict` /
:func:`~repro.online.events.from_dict`, the same objects trace files hold,
so every producer of events (scenario converters, trace exports, live
clients) speaks one language.

Request frames (``"session"`` is optional when the server hosts exactly
one session; its value is the session key — the topology name, the way
the results store keys runs)::

    {"v": 1, "type": "event",   "session": "abilene", "event": {...}}
    {"v": 1, "type": "query",   "query": "mlu" | "status" | "counters"
                                        | "sessions" | "forwarding",
                                "destination": "..."}          # forwarding only
    {"v": 1, "type": "control", "action": "dump" | "reoptimize" | "shutdown"}

Response frames::

    {"v": 1, "ok": true,  "result": {...}}
    {"v": 1, "ok": false, "error": "message"}

A malformed frame (bad JSON, wrong version, unknown type/query/action,
invalid event payload) produces an ``ok: false`` response and leaves the
connection open — one bad client frame must never take down the feed.
"""

from __future__ import annotations

import json
from collections.abc import Mapping

from ..online.events import EventError, NetworkEvent, from_dict

#: Version of the serve frame protocol (bumped independently of the event
#: vocabulary, though both are 1 today).
PROTOCOL_VERSION = 1

QUERIES = ("mlu", "status", "counters", "forwarding", "sessions")
CONTROLS = ("dump", "reoptimize", "shutdown")

#: Upper bound on one frame line; longer lines are rejected, not buffered.
MAX_FRAME_BYTES = 1 << 20


class WireError(ValueError):
    """Raised for malformed frames (reported to the client, never fatal)."""


class Frame:
    """One validated request frame."""

    __slots__ = ("type", "session", "event", "query", "destination", "action")

    def __init__(
        self,
        type: str,
        session: str | None = None,
        event: NetworkEvent | None = None,
        query: str | None = None,
        destination: str | None = None,
        action: str | None = None,
    ) -> None:
        self.type = type
        self.session = session
        self.event = event
        self.query = query
        self.destination = destination
        self.action = action


def parse_frame(line: bytes) -> Frame:
    """Parse and validate one request line into a :class:`Frame`.

    Raises :class:`WireError` with a client-presentable message on any
    malformed input; event payloads are validated by the shared
    :func:`repro.online.events.from_dict` so the socket rejects exactly
    what a trace file read would reject.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise WireError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"invalid JSON frame: {exc}") from None
    if not isinstance(payload, dict):
        raise WireError(f"frame must be a JSON object, got {type(payload).__name__}")
    version = payload.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise WireError(
            f"unsupported protocol version {version!r} (supported: {PROTOCOL_VERSION})"
        )
    kind = payload.get("type")
    session = payload.get("session")
    if session is not None and not isinstance(session, str):
        raise WireError("'session' must be a string")
    if kind == "event":
        if "event" not in payload:
            raise WireError("event frame is missing its 'event' payload")
        try:
            event = from_dict(payload["event"])
        except EventError as exc:
            raise WireError(str(exc)) from None
        return Frame(type="event", session=session, event=event)
    if kind == "query":
        query = payload.get("query")
        if query not in QUERIES:
            raise WireError(
                f"unknown query {query!r} (known: {', '.join(QUERIES)})"
            )
        destination = payload.get("destination")
        if query == "forwarding" and destination is None:
            raise WireError("forwarding query requires a 'destination'")
        return Frame(type="query", session=session, query=query, destination=destination)
    if kind == "control":
        action = payload.get("action")
        if action not in CONTROLS:
            raise WireError(
                f"unknown control action {action!r} (known: {', '.join(CONTROLS)})"
            )
        return Frame(type="control", session=session, action=action)
    raise WireError(f"unknown frame type {kind!r} (known: event, query, control)")


def sanitize(value: object) -> object:
    """Replace non-finite floats with their string names (strict JSON)."""
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "Infinity"
        if value == float("-inf"):
            return "-Infinity"
        return value
    if isinstance(value, Mapping):
        return {key: sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(item) for item in value]
    return value


def desanitize(value: object) -> object:
    """The inverse of :func:`sanitize`: decode non-finite float markers.

    Strict JSON cannot carry ``inf``/``nan``, so the protocol encodes them
    as the strings ``"Infinity"``/``"-Infinity"``/``"NaN"``; clients decode
    them back so numbers round-trip bit-for-bit (no result field ever
    legitimately holds one of these strings).
    """
    if value == "NaN":
        return float("nan")
    if value == "Infinity":
        return float("inf")
    if value == "-Infinity":
        return float("-inf")
    if isinstance(value, Mapping):
        return {key: desanitize(item) for key, item in value.items()}
    if isinstance(value, list):
        return [desanitize(item) for item in value]
    return value


def ok_frame(result: Mapping[str, object]) -> bytes:
    """Serialise a success response (sorted keys: deterministic bytes)."""
    payload = {"v": PROTOCOL_VERSION, "ok": True, "result": sanitize(result)}
    return json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"


def error_frame(message: str) -> bytes:
    """Serialise an error response."""
    payload = {"v": PROTOCOL_VERSION, "ok": False, "error": message}
    return json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"


def dumps_state(dump: Mapping[str, object]) -> str:
    """The byte-stable state-dump serialisation (same state ⇒ same bytes)."""
    return json.dumps(sanitize(dump), indent=2, sort_keys=True) + "\n"


def dumps_state_file(dumps: dict[str, Mapping[str, object]]) -> str:
    """Serialise the shutdown dump of every session, keyed and sorted."""
    return json.dumps(
        {key: sanitize(dump) for key, dump in sorted(dumps.items())},
        indent=2,
        sort_keys=True,
    ) + "\n"
