"""Algorithm 2: Network Entropy Maximization for the second link weights.

The second link weights ``v`` are the Lagrange multipliers of the link-flow
constraints (17b) in the NEM problem: maximise the entropy of the traffic
split across the equal-cost shortest paths subject to the per-link flows not
exceeding the optimal traffic distribution ``f*``.

Algorithm 2 is projected gradient ascent on the dual:

    v <- ( v - gamma * (f* - f(v)) )_+

where ``f(v)`` is the traffic distribution induced by the exponential split
(Algorithm 3).  Iterations stop when every link satisfies
``f_ij(v) <= f*_ij + eps``.

The dual objective

    d(v) = sum_r d_r * log( sum_k exp(-v-length of path k) ) + sum_ij v_ij f*_ij

is recorded per iteration; it is the series plotted in Fig. 12(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network, Node
from ..network.spt import ShortestPathDag
from ..routing import resolve_backend
from ..routing.sparse import CompiledDagSet
from ..solvers.subgradient import StepRule, default_step_for_flows, project_nonnegative
from .traffic_distribution import path_weight_sums, traffic_distribution


@dataclass
class SecondWeightsResult:
    """Outcome of Algorithm 2."""

    weights: np.ndarray
    flows: FlowAssignment
    iterations: int
    converged: bool
    #: Maximum per-link excess ``max_ij (f_ij(v) - f*_ij)`` at the last iterate.
    max_excess: float
    dual_objective_history: list[float] = field(default_factory=list)


def nem_dual_objective(
    network: Network,
    demands: TrafficMatrix,
    dags: Mapping[Node, ShortestPathDag],
    second_weights: np.ndarray,
    target_flows: np.ndarray,
) -> float:
    """The NEM Lagrange dual ``d(v)`` (Fig. 12(b) series).

    Demands are normalised by the total volume so that the reported values
    stay comparable across congestion levels, mirroring the order of
    magnitude (~0.67 for Cernet2) shown in the paper.
    """
    total_volume = demands.total_volume()
    if total_volume <= 0:
        return 0.0
    value = float(np.dot(second_weights, target_flows)) / total_volume
    z_cache: dict[Node, dict[Node, float]] = {}
    for (source, destination), volume in demands.items():
        if destination not in z_cache:
            z_cache[destination] = path_weight_sums(network, dags[destination], second_weights)
        z_value = z_cache[destination].get(source, 0.0)
        if z_value > 0:
            value += (volume / total_volume) * float(np.log(z_value))
    return value


def compute_second_weights(
    network: Network,
    demands: TrafficMatrix,
    dags: Mapping[Node, ShortestPathDag],
    target_flows: np.ndarray,
    max_iterations: int = 1000,
    tolerance: float = 1e-3,
    step_rule: StepRule | None = None,
    step_ratio: float = 1.0,
    initial_weights: np.ndarray | None = None,
    record_history: bool = True,
    backend: str | None = None,
) -> SecondWeightsResult:
    """Run Algorithm 2 and return the second link weights.

    Parameters
    ----------
    dags:
        The equal-cost shortest-path DAGs built from the first link weights.
    target_flows:
        ``f*``: the optimal per-link traffic distribution the split should
        reproduce (link-indexed vector).
    tolerance:
        The paper's ``eps``: stop once ``f_ij(v) <= f*_ij + eps`` everywhere.
        Interpreted in absolute traffic units; it is scaled internally by the
        largest target flow so the criterion is meaningful across instances.
    step_rule, step_ratio:
        Step-size rule; the default is the paper's constant step
        ``step_ratio / max f*_ij``.
    initial_weights:
        Starting second weights, ``v(0) = 0`` by default (the paper notes this
        is already a good approximation).
    backend:
        Routing backend for the inner traffic distributions.  ``"sparse"``
        compiles the DAGs once and re-evaluates only the exponential ratios
        and the propagation each iteration, which is where Algorithm 2 spends
        nearly all of its time; ``"python"`` keeps the reference dict loops.
    """
    demands.validate(network)
    target = np.asarray(target_flows, dtype=float)
    if target.shape != (network.num_links,):
        raise ValueError(
            f"target flows must have length {network.num_links}, got {target.shape}"
        )
    weights = (
        np.asarray(initial_weights, dtype=float).copy()
        if initial_weights is not None
        else np.zeros(network.num_links)
    )
    step_rule = step_rule or default_step_for_flows(target, step_ratio)
    scale = float(np.max(target)) if target.size and np.max(target) > 0 else 1.0
    epsilon = tolerance * scale

    if resolve_backend(backend) == "sparse":
        # Compile every destination DAG once; each iteration then only
        # recomputes the exponential ratios and one vectorised propagation.
        dag_set = CompiledDagSet(network, dags)

        def distribute(second: np.ndarray) -> FlowAssignment:
            return dag_set.traffic_distribution(demands, second)

    else:

        def distribute(second: np.ndarray) -> FlowAssignment:
            return traffic_distribution(network, demands, dags, second, backend="python")

    history: list[float] = []
    flows: FlowAssignment | None = None
    converged = False
    iteration = 0
    max_excess = float("inf")
    for iteration in range(1, max_iterations + 1):
        flows = distribute(weights)
        aggregate = flows.aggregate()
        if record_history:
            history.append(
                nem_dual_objective(network, demands, dags, weights, target)
            )
        excess = aggregate - target
        max_excess = float(np.max(excess)) if excess.size else 0.0
        if max_excess <= epsilon:
            converged = True
            break
        step = step_rule(iteration - 1)
        weights = project_nonnegative(weights - step * (target - aggregate))

    if flows is None:  # max_iterations == 0: report the v(0) distribution
        flows = distribute(weights)

    return SecondWeightsResult(
        weights=weights,
        flows=flows,
        iterations=iteration,
        converged=converged,
        max_excess=max_excess,
        dual_objective_history=history,
    )
