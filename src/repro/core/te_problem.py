"""The TE utility-maximization problem TE(V, G, c, D) and its reference solver.

Section III of the paper models optimal traffic engineering as maximising the
aggregate utility of spare capacity over the multi-commodity flow polytope
(problem (5)).  :class:`TEProblem` bundles an instance (network, demands,
objective) and :func:`solve_optimal_te` produces the optimal traffic
distribution together with the first link weights ``w = V'(s*)`` predicted by
Theorem 3.1.

The solver dispatches on the objective:

* ``beta = 0`` -- the utility is linear, so the problem *is* the minimum-cost
  multi-commodity flow LP (9) with costs ``q`` and is solved exactly.
* ``beta >= 1`` -- the utility is a barrier at saturation; the Frank-Wolfe
  flow-deviation method converges to the unique optimal spare capacity.
* ``0 < beta < 1`` -- strictly concave but finite at saturation; Frank-Wolfe
  with a capacitated LP subproblem.

Algorithm 1 (:mod:`repro.core.first_weights`) solves the same problem in a
distributed fashion; the tests cross-check the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network
from ..solvers.frank_wolfe import solve_frank_wolfe
from ..solvers.mcf import solve_min_cost_mcf
from .objectives import LoadBalanceObjective, normalized_utility


@dataclass
class TEProblem:
    """An optimal traffic-engineering instance TE(V, G, c, D)."""

    network: Network
    demands: TrafficMatrix
    objective: LoadBalanceObjective = field(default_factory=LoadBalanceObjective.proportional)

    def __post_init__(self) -> None:
        self.demands.validate(self.network)

    def network_load(self) -> float:
        """Total demand over total capacity, the x-axis of Fig. 10."""
        return self.demands.network_load(self.network)

    def scaled(self, factor: float) -> TEProblem:
        """The same instance with demands uniformly scaled by ``factor``."""
        return TEProblem(
            network=self.network,
            demands=self.demands.scaled(factor),
            objective=self.objective,
        )


@dataclass
class TESolution:
    """Optimal traffic distribution plus the quantities Theorem 3.1 derives from it."""

    problem: TEProblem
    flows: FlowAssignment
    #: First link weights ``w_ij = V'_ij(s*_ij)`` (Lagrange multipliers of (5b)).
    link_weights: np.ndarray
    #: The achieved aggregate utility ``sum V_ij(s*_ij)``.
    utility: float
    iterations: int = 0
    converged: bool = True
    objective_history: list[float] = field(default_factory=list)

    @property
    def spare_capacity(self) -> np.ndarray:
        return self.flows.spare_capacity()

    @property
    def max_link_utilization(self) -> float:
        return self.flows.max_link_utilization()

    def normalized_utility(self) -> float:
        """``sum log(1 - u_ij)``, the metric plotted in Fig. 10/13."""
        return normalized_utility(self.flows.utilization())

    def weights_dict(self) -> dict:
        return self.problem.network.weight_dict(self.link_weights)


def solve_optimal_te(
    problem: TEProblem,
    max_iterations: int = 400,
    tolerance: float = 1e-7,
    initial_flows: FlowAssignment | None = None,
) -> TESolution:
    """Solve TE(V, G, c, D) centrally and return the optimal distribution.

    Raises
    ------
    SolverError
        When the demands cannot be routed (infeasible LP, or MLU >= 1 with a
        barrier objective).
    """
    network, demands, objective = problem.network, problem.demands, problem.objective
    if not len(demands):
        flows = FlowAssignment(network=network)
        return TESolution(
            problem=problem,
            flows=flows,
            link_weights=objective.derivative(network.capacities),
            utility=objective.total_utility(network.capacities),
        )

    if objective.beta == 0.0:
        # Linear utility: maximizing sum q*(c - f) == minimizing sum q*f.
        q = np.asarray(objective.q, dtype=float)
        costs = np.full(network.num_links, float(q)) if q.ndim == 0 else q
        lp = solve_min_cost_mcf(network, demands, costs, capacitated=True)
        flows = lp.flows
        spare = flows.spare_capacity()
        # The LP duals of the capacity constraints give the weight *increase*
        # on saturated links; the first weights are q on unsaturated links and
        # q + dual on saturated ones (conditions (6b)-(6c)).
        weights = costs.copy()
        if lp.capacity_duals is not None:
            weights = costs + np.maximum(lp.capacity_duals, 0.0)
        return TESolution(
            problem=problem,
            flows=flows,
            link_weights=weights,
            utility=objective.total_utility(spare),
            iterations=1,
            converged=True,
        )

    result = solve_frank_wolfe(
        network,
        demands,
        cost=lambda f: objective.congestion_cost(network, f),
        gradient=lambda f: objective.congestion_gradient(network, f),
        barrier=objective.is_barrier(),
        max_iterations=max_iterations,
        tolerance=tolerance,
        initial_flows=initial_flows,
    )
    spare = result.flows.spare_capacity()
    return TESolution(
        problem=problem,
        flows=result.flows,
        link_weights=result.link_weights,
        utility=objective.total_utility(spare),
        iterations=result.iterations,
        converged=result.converged,
        objective_history=[-value for value in result.objective_history],
    )


def optimality_gap(problem: TEProblem, candidate: FlowAssignment, reference: TESolution | None = None) -> float:
    """Relative utility gap of ``candidate`` against the optimal solution.

    A convenience used by tests and benchmarks to measure how close a
    protocol (OSPF, SPEF, PEFT) gets to the optimum for the problem's own
    objective.  Returns ``inf`` when the candidate saturates a link under a
    barrier objective.
    """
    if reference is None:
        reference = solve_optimal_te(problem)
    candidate_utility = problem.objective.total_utility(candidate.spare_capacity())
    if not np.isfinite(candidate_utility):
        return float("inf")
    denom = max(abs(reference.utility), 1e-12)
    return float((reference.utility - candidate_utility) / denom)
