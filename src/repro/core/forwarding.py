"""SPEF forwarding tables (Table II of the paper).

A SPEF router stores, for every destination ``t`` and every equal-cost next
hop ``v_k``, the lengths (under the *second* link weights) of the equal-cost
shortest paths that go through that next hop.  From those lengths it computes
the exponential split ratio of Eq. (22) locally, without any knowledge of the
rest of the network beyond the two weights per link -- this is what makes SPEF
deployable on an OSPF-like control plane.

:class:`ForwardingTable` materialises this structure.  For compactness the
split ratios are computed exactly with the DAG dynamic program of
:mod:`repro.core.traffic_distribution`; the explicit per-path lengths (the
literal content of Table II) are enumerated lazily and only up to a
configurable cap, since their number can grow exponentially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

import numpy as np

from ..network.graph import Network, Node
from ..network.spt import ShortestPathDag
from .traffic_distribution import exponential_split_ratios


@dataclass(frozen=True)
class ForwardingEntry:
    """One row of Table II: a next hop with its equal-cost path lengths."""

    next_hop: Node
    #: Second-weight lengths of the equal-cost paths through this next hop
    #: (possibly truncated, see ``ForwardingTable.max_paths_per_entry``).
    path_lengths: tuple[float, ...]
    #: Fraction of the node's traffic towards the destination sent to this hop.
    split_ratio: float

    @property
    def num_paths(self) -> int:
        return len(self.path_lengths)


@dataclass
class ForwardingTable:
    """The SPEF forwarding state of a single router (one node).

    Maps each destination to the list of :class:`ForwardingEntry` rows for the
    router's equal-cost next hops.
    """

    node: Node
    entries: dict[Node, list[ForwardingEntry]] = field(default_factory=dict)

    def destinations(self) -> list[Node]:
        return list(self.entries)

    def next_hops(self, destination: Node) -> list[Node]:
        return [entry.next_hop for entry in self.entries.get(destination, [])]

    def split_ratio(self, destination: Node, next_hop: Node) -> float:
        for entry in self.entries.get(destination, []):
            if entry.next_hop == next_hop:
                return entry.split_ratio
        return 0.0

    def split_ratios(self, destination: Node) -> dict[Node, float]:
        return {
            entry.next_hop: entry.split_ratio
            for entry in self.entries.get(destination, [])
        }

    def num_equal_cost_paths(self, destination: Node) -> int:
        """Total number of equal-cost paths this router sees towards ``destination``."""
        return sum(entry.num_paths for entry in self.entries.get(destination, []))

    def as_rows(self, destination: Node) -> list[tuple[Node, tuple[float, ...]]]:
        """The literal Table II rows: (next hop, tuple of path lengths)."""
        return [
            (entry.next_hop, entry.path_lengths)
            for entry in self.entries.get(destination, [])
        ]


def _paths_through_hop(
    dag: ShortestPathDag,
    node: Node,
    hop: Node,
    limit: int,
) -> list[list[Node]]:
    """Equal-cost paths from ``node`` whose first hop is ``hop`` (capped)."""
    suffixes = dag.paths_from(hop, limit=limit)
    return [[node] + suffix for suffix in suffixes]


def build_forwarding_tables(
    network: Network,
    dags: Mapping[Node, ShortestPathDag],
    second_weights: np.ndarray,
    max_paths_per_entry: int = 32,
) -> dict[Node, ForwardingTable]:
    """Build the SPEF forwarding table of every router.

    Parameters
    ----------
    dags:
        Equal-cost shortest-path DAGs per destination (from the first weights).
    second_weights:
        Link-indexed second weight vector ``v``.
    max_paths_per_entry:
        Cap on how many per-path lengths are materialised per (destination,
        next hop) row.  Split ratios are always exact (computed by the DAG
        dynamic program), only the explicit length listing is truncated.
    """
    second = np.asarray(second_weights, dtype=float)
    tables: dict[Node, ForwardingTable] = {
        node: ForwardingTable(node=node) for node in network.nodes
    }
    for destination, dag in dags.items():
        ratios = exponential_split_ratios(network, dag, second)
        for node in dag.distances:
            if node == destination:
                continue
            hops = dag.next_hops_of(node)
            if not hops:
                continue
            node_ratios = ratios.get(node, {})
            entries: list[ForwardingEntry] = []
            for hop in hops:
                lengths = []
                for path in _paths_through_hop(dag, node, hop, max_paths_per_entry):
                    length = sum(
                        second[network.link_index(u, v)]
                        for u, v in zip(path[:-1], path[1:], strict=True)
                    )
                    lengths.append(float(length))
                entries.append(
                    ForwardingEntry(
                        next_hop=hop,
                        path_lengths=tuple(lengths),
                        split_ratio=float(node_ratios.get(hop, 0.0)),
                    )
                )
            tables[node].entries[destination] = entries
    return tables


def split_ratios_from_tables(
    tables: Mapping[Node, ForwardingTable],
) -> dict[Node, dict[Node, dict[Node, float]]]:
    """Re-index forwarding tables as ``destination -> node -> hop -> ratio``.

    This is the format :func:`repro.solvers.assignment.split_ratio_assignment`
    consumes, and it is also what the flow-level simulator installs on its
    routers.
    """
    ratios: dict[Node, dict[Node, dict[Node, float]]] = {}
    for node, table in tables.items():
        for destination in table.destinations():
            ratios.setdefault(destination, {})[node] = table.split_ratios(destination)
    return ratios


def verify_split_consistency(
    network: Network,
    dags: Mapping[Node, ShortestPathDag],
    second_weights: np.ndarray,
    tables: Mapping[Node, ForwardingTable],
    tolerance: float = 1e-9,
) -> bool:
    """Check that table split ratios match Eq. (22) recomputed from scratch.

    Used by tests to guarantee the distributed view (per-router tables) and
    the centralized view (Algorithm 3) agree exactly.
    """
    second = np.asarray(second_weights, dtype=float)
    for destination, dag in dags.items():
        expected = exponential_split_ratios(network, dag, second)
        for node, hop_ratios in expected.items():
            table = tables.get(node)
            if table is None:
                return False
            actual = table.split_ratios(destination)
            for hop, ratio in hop_ratios.items():
                if abs(actual.get(hop, 0.0) - ratio) > tolerance:
                    return False
    return True
