"""SPEF core: objectives, TE problem, Algorithms 1-4 and forwarding tables."""

from .first_weights import FirstWeightsResult, compute_first_weights, round_weights
from .forwarding import (
    ForwardingEntry,
    ForwardingTable,
    build_forwarding_tables,
    split_ratios_from_tables,
    verify_split_consistency,
)
from .nem import SecondWeightsResult, compute_second_weights, nem_dual_objective
from .objectives import LoadBalanceObjective, ObjectiveError, normalized_utility
from .spef import SPEF, SPEFConfig, SPEFSolution
from .te_problem import TEProblem, TESolution, optimality_gap, solve_optimal_te
from .traffic_distribution import (
    exponential_split_ratios,
    path_weight_sums,
    traffic_distribution,
)

__all__ = [
    "FirstWeightsResult",
    "compute_first_weights",
    "round_weights",
    "ForwardingEntry",
    "ForwardingTable",
    "build_forwarding_tables",
    "split_ratios_from_tables",
    "verify_split_consistency",
    "SecondWeightsResult",
    "compute_second_weights",
    "nem_dual_objective",
    "LoadBalanceObjective",
    "ObjectiveError",
    "normalized_utility",
    "SPEF",
    "SPEFConfig",
    "SPEFSolution",
    "TEProblem",
    "TESolution",
    "optimality_gap",
    "solve_optimal_te",
    "exponential_split_ratios",
    "path_weight_sums",
    "traffic_distribution",
]
