"""The (q, beta) proportional load-balance objective family (paper Section II-B).

The paper's generic utility of spare capacity ``s = c - f`` on link ``(i, j)``
is (Eq. 11)

    V_ij(s) = q_ij * log(s)                     if beta == 1
    V_ij(s) = q_ij * s^(1 - beta) / (1 - beta)  if beta != 1

The parameter ``beta`` interpolates between well-known TE objectives:

* ``beta = 0`` with ``q = d`` (link delays): minimise total processing and
  propagation delay; with ``q = 1`` it is minimum-hop routing (Example 3).
* ``beta = 1``: proportional load balance, equivalently M/M/1 average-delay
  routing with weights ``w = 1 / (c - f)`` (Example 1).
* ``beta = 2`` with ``q = c``: minimise total M/M/1 queueing delay, weights
  ``w = c / (c - f)^2`` (Example 2).
* ``beta -> inf``: min-max load balance, i.e. minimum MLU.

The class exposes the three pieces every algorithm needs: the utility, its
derivative ``V'(s)`` (the *first link weight* at optimality, Theorem 3.1) and
the inverse of the derivative (the closed-form solution of the per-link
subproblem ``Link_ij(V_ij; w_ij)`` in Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.graph import Network

ArrayLike = float | np.ndarray


class ObjectiveError(ValueError):
    """Raised for invalid objective parameters."""


@dataclass(frozen=True)
class LoadBalanceObjective:
    """A ``(q, beta)`` proportional load-balance utility.

    Parameters
    ----------
    beta:
        Non-negative load-balance exponent.
    q:
        Per-link positive coefficients, either a scalar (applied to every
        link) or a link-indexed vector.  Defaults to 1.
    """

    beta: float
    q: float | np.ndarray = 1.0

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise ObjectiveError(f"beta must be non-negative, got {self.beta}")
        q = self.q
        if np.any(np.asarray(q) <= 0):
            raise ObjectiveError("q coefficients must be positive")

    # ------------------------------------------------------------------
    # constructors for the paper's named special cases
    # ------------------------------------------------------------------
    @classmethod
    def proportional(cls, q: float | np.ndarray = 1.0) -> LoadBalanceObjective:
        """Proportional load balance (``beta = 1``), Example 1."""
        return cls(beta=1.0, q=q)

    @classmethod
    def minimum_hop(cls) -> LoadBalanceObjective:
        """``(1, 0)`` load balance: minimum-hop routing (Example 3 with d=1)."""
        return cls(beta=0.0, q=1.0)

    @classmethod
    def delay_weighted(cls, network: Network) -> LoadBalanceObjective:
        """``(d, 0)`` load balance: minimise total propagation delay (Example 3)."""
        return cls(beta=0.0, q=network.delays)

    @classmethod
    def mm1_delay(cls, network: Network) -> LoadBalanceObjective:
        """``(c, 2)`` load balance: minimise total M/M/1 queueing delay (Example 2)."""
        return cls(beta=2.0, q=network.capacities)

    # ------------------------------------------------------------------
    # utility, derivative, inverse derivative
    # ------------------------------------------------------------------
    def _coefficients(self, spare: np.ndarray) -> np.ndarray:
        q = np.asarray(self.q, dtype=float)
        if q.ndim == 0:
            return np.full_like(spare, float(q))
        if q.shape != spare.shape:
            raise ObjectiveError(
                f"q has shape {q.shape} but spare capacity has shape {spare.shape}"
            )
        return q

    def utility(self, spare: ArrayLike) -> np.ndarray:
        """Aggregate per-link utility ``V_ij(s_ij)`` (vectorised).

        Returns ``-inf`` entries where a barrier objective (``beta >= 1``)
        sees non-positive spare capacity.
        """
        spare_arr = np.asarray(spare, dtype=float)
        q = self._coefficients(spare_arr)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if self.beta == 1.0:
                values = np.where(spare_arr > 0, q * np.log(np.maximum(spare_arr, 1e-300)), -np.inf)
            else:
                exponent = 1.0 - self.beta
                if self.beta < 1.0:
                    powered = np.where(spare_arr >= 0, np.power(np.maximum(spare_arr, 0.0), exponent), np.nan)
                    values = q * powered / exponent
                else:
                    values = np.where(
                        spare_arr > 0,
                        q * np.power(np.maximum(spare_arr, 1e-300), exponent) / exponent,
                        -np.inf,
                    )
        return values

    def total_utility(self, spare: ArrayLike) -> float:
        """Sum of per-link utilities, the objective (5a)."""
        return float(np.sum(self.utility(spare)))

    def derivative(self, spare: ArrayLike) -> np.ndarray:
        """``V'_ij(s) = q_ij / s^beta`` -- the optimal first link weight."""
        spare_arr = np.asarray(spare, dtype=float)
        q = self._coefficients(spare_arr)
        if self.beta == 0.0:
            return q.copy()
        with np.errstate(divide="ignore"):
            return np.where(
                spare_arr > 0,
                q / np.power(np.maximum(spare_arr, 1e-300), self.beta),
                np.inf,
            )

    def derivative_inverse(self, weights: ArrayLike) -> np.ndarray:
        """Solve ``V'(s) = w`` for ``s``, i.e. ``s = (q / w)^(1/beta)``.

        This is the closed-form solution of the per-link subproblem
        ``Link_ij(V_ij; w_ij)`` used at every iteration of Algorithm 1.  For
        ``beta = 0`` the utility is linear so the subproblem has no interior
        optimum; by convention we return 0 when ``w >= q`` (the link keeps no
        spare capacity valuation) and ``inf`` otherwise -- Algorithm 1 clips
        the latter to the link capacity.
        """
        w = np.asarray(weights, dtype=float)
        q = self._coefficients(np.broadcast_to(np.zeros(1), w.shape) if w.ndim else np.asarray(0.0))
        q = np.asarray(self.q, dtype=float)
        if q.ndim == 0:
            q = np.full_like(w, float(q))
        if self.beta == 0.0:
            return np.where(w >= q, 0.0, np.inf)
        with np.errstate(divide="ignore"):
            ratio = np.where(w > 0, q / np.maximum(w, 1e-300), np.inf)
            return np.power(ratio, 1.0 / self.beta)

    # ------------------------------------------------------------------
    # congestion-cost view (for the Frank-Wolfe reference solver)
    # ------------------------------------------------------------------
    def is_barrier(self) -> bool:
        """True when the utility diverges to -inf at zero spare capacity."""
        return self.beta >= 1.0

    def congestion_cost(self, network: Network, flow: np.ndarray) -> float:
        """``Phi(f) = -sum_ij V_ij(c_ij - f_ij)``, the convex cost to minimise."""
        spare = network.capacities - np.asarray(flow, dtype=float)
        utility = self.utility(spare)
        if np.any(np.isneginf(utility)):
            return np.inf
        return float(-np.sum(utility))

    def congestion_gradient(self, network: Network, flow: np.ndarray) -> np.ndarray:
        """``dPhi/df_ij = V'_ij(c_ij - f_ij)``: marginal congestion cost per link."""
        spare = network.capacities - np.asarray(flow, dtype=float)
        return self.derivative(spare)

    def optimal_weights(self, network: Network, flow: np.ndarray) -> np.ndarray:
        """First link weights implied by an optimal flow, ``w = V'(c - f)``."""
        return self.congestion_gradient(network, flow)

    def verify_load_balance(
        self,
        network: Network,
        candidate_spare: np.ndarray,
        other_spare: np.ndarray,
    ) -> float:
        """The left-hand side of the (q, beta) load-balance test (Eq. 4).

        ``candidate_spare`` plays the role of ``s*``; a non-positive return
        value for *every* feasible ``other_spare`` certifies that the
        candidate is (q, beta) proportionally load balanced (Theorem 3.3).
        """
        candidate = np.asarray(candidate_spare, dtype=float)
        other = np.asarray(other_spare, dtype=float)
        q = self._coefficients(candidate)
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = q * (other - candidate) / np.power(np.maximum(candidate, 1e-300), self.beta)
        return float(np.sum(terms))

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        q = np.asarray(self.q)
        q_label = f"{float(q):g}" if q.ndim == 0 else "per-link"
        return f"(q={q_label}, beta={self.beta:g}) proportional load balance"


def normalized_utility(utilizations: ArrayLike) -> float:
    """The evaluation section's normalised utility: ``sum log(1 - u_ij)``.

    Returns ``-inf`` when the maximum link utilization reaches or exceeds 1,
    matching how Fig. 10 treats overloaded OSPF runs.
    """
    u = np.asarray(utilizations, dtype=float)
    if np.any(u >= 1.0):
        return float("-inf")
    return float(np.sum(np.log(1.0 - u)))
