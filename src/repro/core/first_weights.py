"""Algorithm 1: distributed dual decomposition for the first link weights.

The first link weights are the Lagrange multipliers of the spare-capacity
constraint ``c - sum_t f^t = s`` in TE(V, G, c, D).  Algorithm 1 of the paper
computes them with a projected sub-gradient method on the dual:

1. every link solves its local subproblem ``Link_ij(V_ij; w_ij)`` in closed
   form, ``s_ij = V'^{-1}(w_ij)`` (clipped to the physical capacity);
2. every destination solves the uncapacitated min-cost routing subproblem
   ``Route_t(w; d^t)``, i.e. sends its demand along shortest paths under
   ``w``;
3. every link updates its weight with the sub-gradient of the dual,
   ``w <- (w - gamma * (c - f - s))_+``.

The dual objective value and the duality gap are recorded per iteration --
they are the series plotted in Fig. 12(a).  The primal traffic distribution is
recovered by the standard ergodic (running average) of the per-iteration
routing subproblem solutions, which converges to an optimal multi-commodity
flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network, Node
from ..network.spt import distances_to
from ..solvers.assignment import all_or_nothing_assignment
from ..solvers.subgradient import StepRule, default_step_for_capacities, project_nonnegative
from .objectives import LoadBalanceObjective


@dataclass
class FirstWeightsResult:
    """Outcome of Algorithm 1.

    Attributes
    ----------
    weights:
        The first link weights ``w*`` (link-indexed vector).
    spare_capacity:
        ``s* = V'^{-1}(w*)`` clipped to the capacities.
    flows:
        The recovered optimal traffic distribution (ergodic average of the
        routing subproblem solutions).
    dual_objective_history, dual_gap_history:
        Per-iteration dual value and duality gap (Fig. 12(a)).
    """

    weights: np.ndarray
    spare_capacity: np.ndarray
    flows: FlowAssignment
    iterations: int
    converged: bool
    dual_objective_history: list[float] = field(default_factory=list)
    dual_gap_history: list[float] = field(default_factory=list)

    @property
    def target_flows(self) -> np.ndarray:
        """``f* = c - s*``, the per-link flow targets handed to Algorithm 2."""
        return self.flows.network.capacities - self.spare_capacity


def _dual_value(
    network: Network,
    demands: TrafficMatrix,
    objective: LoadBalanceObjective,
    weights: np.ndarray,
    spare: np.ndarray,
) -> float:
    """The Lagrange dual function of TE(V, G, c, D) evaluated at ``weights``.

    ``g(w) = sum_ij [V_ij(s_ij(w)) - w_ij s_ij(w) + w_ij c_ij]
             + sum_t min_{B f^t = d^t} (-w)^T ... ``  -- the routing part is
    ``- sum_t`` (shortest-path cost of d^t under ``w``), computed with
    Dijkstra instead of an LP.
    """
    utilities = objective.utility(spare)
    finite = np.where(np.isfinite(utilities), utilities, 0.0)
    value = float(np.sum(finite - weights * spare + weights * network.capacities))
    for destination, entering in demands.by_destination().items():
        distances = distances_to(network, destination, weights)
        for source, volume in entering.items():
            value -= distances.get(source, 0.0) * volume
    # g(w) upper-bounds the optimal aggregate utility and is *minimised* by
    # the sub-gradient iterations, so the recorded series decreases towards
    # the optimum -- the behaviour plotted in Fig. 12(a).  (Absolute values
    # differ from the paper's because the utility is not normalised here.)
    return value


def compute_first_weights(
    network: Network,
    demands: TrafficMatrix,
    objective: LoadBalanceObjective | None = None,
    max_iterations: int = 2000,
    tolerance: float = 1e-3,
    step_rule: StepRule | None = None,
    step_ratio: float = 1.0,
    initial_weights: np.ndarray | None = None,
    record_history: bool = True,
) -> FirstWeightsResult:
    """Run Algorithm 1 and return the first link weights.

    Parameters
    ----------
    objective:
        The (q, beta) utility; defaults to proportional load balance
        (beta = 1), the setting used throughout the paper's evaluation.
    max_iterations, tolerance:
        Stop when the (absolute) duality gap drops below ``tolerance`` or the
        iteration budget is exhausted.
    step_rule:
        A callable ``iteration -> step size``; the default is the paper's
        constant step ``step_ratio / max c_ij``.
    step_ratio:
        Multiplier on the default constant step (the legend values of
        Fig. 12(a): 2, 1, 0.5, 0.1).
    initial_weights:
        Starting weights; the paper's default is ``w(0)_ij = 1 / c_ij``.
    record_history:
        Disable to skip the per-iteration dual-value computation (which costs
        one Dijkstra per destination per iteration).
    """
    demands.validate(network)
    objective = objective or LoadBalanceObjective.proportional()
    capacities = network.capacities
    weights = (
        np.asarray(initial_weights, dtype=float).copy()
        if initial_weights is not None
        else 1.0 / capacities
    )
    if weights.shape != (network.num_links,):
        raise ValueError(
            f"initial weights must have length {network.num_links}, got {weights.shape}"
        )
    step_rule = step_rule or default_step_for_capacities(capacities, step_ratio)

    destinations = demands.destinations()
    flow_average: dict[Node, np.ndarray] = {
        destination: np.zeros(network.num_links) for destination in destinations
    }
    spare = np.minimum(objective.derivative_inverse(weights), capacities)
    dual_history: list[float] = []
    gap_history: list[float] = []
    converged = False
    iteration = 0
    samples = 0
    for iteration in range(1, max_iterations + 1):
        # Per-link subproblem: closed-form spare capacity.
        spare = np.minimum(objective.derivative_inverse(weights), capacities)
        spare = np.maximum(spare, 0.0)
        # Per-destination routing subproblem: shortest-path all-or-nothing.
        routing = all_or_nothing_assignment(network, demands, weights)
        aggregate = routing.aggregate()
        # Primal recovery: running average of routing solutions.
        samples += 1
        for destination in destinations:
            vector = routing.per_destination.get(destination)
            if vector is None:
                vector = np.zeros(network.num_links)
            flow_average[destination] += (vector - flow_average[destination]) / samples

        gap = float(np.dot(weights, aggregate + spare - capacities))
        if record_history:
            dual_history.append(_dual_value(network, demands, objective, weights, spare))
            gap_history.append(gap)
        if abs(gap) < tolerance:
            converged = True
            break
        # Sub-gradient step on the dual, projected onto w >= 0.
        step = step_rule(iteration - 1)
        weights = project_nonnegative(weights - step * (capacities - aggregate - spare))

    flows = FlowAssignment(network=network, per_destination=dict(flow_average))
    return FirstWeightsResult(
        weights=weights,
        spare_capacity=np.minimum(objective.derivative_inverse(weights), capacities),
        flows=flows,
        iterations=iteration,
        converged=converged,
        dual_objective_history=dual_history,
        dual_gap_history=gap_history,
    )


def round_weights(
    weights: np.ndarray,
    spare_capacity: np.ndarray,
    max_weight: int | None = None,
) -> np.ndarray:
    """Round first link weights to integers as in Section V-G.

    The scaling guarantees the link with the maximum spare capacity gets
    weight 1: ``w'_ij = round(w_ij * max_ij s_ij)``.  ``max_weight`` optionally
    caps the result to a protocol field width (OSPF weights are 16 bit).
    Weights that would round to zero are bumped to 1 so that shortest paths
    stay well defined.
    """
    scale = float(np.max(spare_capacity)) if spare_capacity.size else 1.0
    if scale <= 0:
        scale = 1.0
    rounded = np.rint(np.asarray(weights, dtype=float) * scale)
    rounded = np.maximum(rounded, 1.0)
    if max_weight is not None:
        rounded = np.minimum(rounded, float(max_weight))
    return rounded
