"""Algorithm 4: the SPEF routing protocol (Shortest paths Penalizing Exponential Flow-splitting).

SPEF achieves optimal traffic engineering with an OSPF-compatible data plane
by configuring *two* weights per link:

1. the **first link weights** define the shortest paths (Theorem 3.1
   guarantees that an optimal routing exists that only uses those paths);
2. the **second link weights** let every router split traffic across its
   equal-cost next hops with the exponential ratios of Eq. (22), so that the
   resulting distribution matches the optimal one (Theorem 4.2).

:class:`SPEF` runs the full pipeline (Algorithm 4):

* solve TE(V, G, c, D) for the optimal distribution ``f*`` and the first
  weights (either centrally via Frank-Wolfe or distributedly via
  Algorithm 1);
* optionally round the first weights to integers (Section V-G);
* build the per-destination equal-cost shortest-path DAGs with Dijkstra;
* run Algorithm 2 to obtain the second weights;
* install the Table II forwarding tables and compute the realised flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network, Node
from ..network.spt import ShortestPathDag, all_shortest_path_dags
from ..obs import telemetry
from .first_weights import FirstWeightsResult, compute_first_weights, round_weights
from .forwarding import ForwardingTable, build_forwarding_tables
from .nem import SecondWeightsResult, compute_second_weights
from .objectives import LoadBalanceObjective, normalized_utility
from .te_problem import TEProblem, TESolution, solve_optimal_te


@dataclass
class SPEFConfig:
    """Tunable knobs of the SPEF pipeline.

    Attributes
    ----------
    objective:
        The (q, beta) utility used for the optimal TE problem.  The paper's
        evaluation uses beta = 1 (proportional load balance).
    te_solver:
        ``"frank_wolfe"`` solves TE(V, G, c, D) centrally (fast, accurate);
        ``"dual"`` uses the distributed Algorithm 1, which is what a real
        deployment would run.
    ecmp_tolerance:
        Cost tolerance for declaring two paths equal in Dijkstra.  ``None``
        picks ``ecmp_tolerance_factor * mean(positive first weights)``, which
        mirrors the paper's use of a tolerance matched to the weight scale
        (0.3 for fractional weights, 1 for integer weights).
    integer_weights:
        Round the first weights to integers before building shortest paths
        (Section V-G / Fig. 13).
    augment_dags_with_optimum:
        Add optimal-flow-carrying downhill links to the equal-cost DAGs (see
        :meth:`SPEF._augment_dags`).  With exact optimal weights this is a
        no-op; with approximate weights it keeps the NEM target attainable.
    routing_backend:
        Backend for the NEM inner loop's traffic distributions
        (``"sparse"``/``"python"``/``None`` for the library default; see
        :mod:`repro.routing`).  The sparse backend compiles the DAGs once per
        fit, which is where Algorithm 2 spends nearly all of its time.
    dag_flow_threshold:
        Per-destination optimal flow (as a fraction of the total demand
        volume) below which a link is not considered "carrying" flow for the
        DAG augmentation.
    """

    objective: LoadBalanceObjective = field(default_factory=LoadBalanceObjective.proportional)
    te_solver: str = "frank_wolfe"
    ecmp_tolerance: float | None = None
    ecmp_tolerance_factor: float = 0.05
    integer_weights: bool = False
    max_integer_weight: int | None = 65535
    augment_dags_with_optimum: bool = True
    dag_flow_threshold: float = 1e-4
    routing_backend: str | None = None
    te_max_iterations: int = 400
    te_tolerance: float = 1e-7
    alg1_max_iterations: int = 2000
    alg1_tolerance: float = 1e-3
    alg1_step_ratio: float = 1.0
    alg2_max_iterations: int = 500
    alg2_tolerance: float = 1e-3
    alg2_step_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.te_solver not in ("frank_wolfe", "dual"):
            raise ValueError(
                f"te_solver must be 'frank_wolfe' or 'dual', got {self.te_solver!r}"
            )


@dataclass
class SPEFSolution:
    """Everything SPEF computes for one (network, demands) instance."""

    network: Network
    demands: TrafficMatrix
    config: SPEFConfig
    #: First link weights actually installed (possibly integer-rounded).
    first_weights: np.ndarray
    #: The raw (un-rounded) first weights from the TE solution.
    raw_first_weights: np.ndarray
    second_weights: np.ndarray
    dags: dict[Node, ShortestPathDag]
    forwarding_tables: dict[Node, ForwardingTable]
    #: Flows realised by the SPEF forwarding tables.
    flows: FlowAssignment
    #: The optimal traffic distribution ``f*`` SPEF aims to reproduce.
    target_flows: np.ndarray
    te_solution: TESolution | None = None
    first_result: FirstWeightsResult | None = None
    second_result: SecondWeightsResult | None = None

    # ------------------------------------------------------------------
    # headline metrics
    # ------------------------------------------------------------------
    def max_link_utilization(self) -> float:
        return self.flows.max_link_utilization()

    def utilization(self) -> np.ndarray:
        return self.flows.utilization()

    def normalized_utility(self) -> float:
        """``sum log(1 - u_ij)`` of the realised flows (Fig. 10 metric)."""
        return normalized_utility(self.flows.utilization())

    def utility(self) -> float:
        """Aggregate (q, beta) utility of the realised flows."""
        return self.config.objective.total_utility(self.flows.spare_capacity())

    def target_utility(self) -> float:
        """Aggregate utility of the optimal distribution ``f*`` (upper bound)."""
        spare = self.network.capacities - self.target_flows
        return self.config.objective.total_utility(spare)

    def optimality_gap(self) -> float:
        """Relative gap between realised and optimal utility (0 means optimal TE)."""
        realised = self.utility()
        optimal = self.target_utility()
        if not np.isfinite(realised):
            return float("inf")
        return float((optimal - realised) / max(abs(optimal), 1e-12))

    # ------------------------------------------------------------------
    # path-diversity views (Table V)
    # ------------------------------------------------------------------
    def equal_cost_paths(self, source: Node, destination: Node) -> int:
        """Number of equal-cost shortest paths SPEF uses for one pair."""
        dag = self.dags.get(destination)
        if dag is None or not dag.reachable(source):
            return 0
        return dag.count_paths().get(source, 0)

    def equal_cost_path_histogram(self, max_paths: int = 8) -> dict[int, int]:
        """``{i: number of ingress-egress pairs with i equal-cost paths}``.

        Counts every ordered pair of distinct nodes (as Table V does), not
        only the pairs with demand.
        """
        histogram: dict[int, int] = {}
        counts_cache: dict[Node, dict[Node, int]] = {}
        for destination in self.network.nodes:
            dag = self.dags.get(destination)
            if dag is None:
                continue
            counts_cache[destination] = dag.count_paths()
        for destination, counts in counts_cache.items():
            for source in self.network.nodes:
                if source == destination:
                    continue
                n_paths = min(counts.get(source, 0), max_paths)
                histogram[n_paths] = histogram.get(n_paths, 0) + 1
        return histogram


class SPEF:
    """The SPEF protocol: compute both link weights and the forwarding state.

    Examples
    --------
    >>> from repro.topology import fig4_network, fig4_demands
    >>> spef = SPEF()
    >>> solution = spef.fit(fig4_network(), fig4_demands())
    >>> solution.max_link_utilization() <= 1.0
    True
    """

    def __init__(self, config: SPEFConfig | None = None, **overrides) -> None:
        if config is None:
            config = SPEFConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config

    # ------------------------------------------------------------------
    def _solve_te(
        self,
        network: Network,
        demands: TrafficMatrix,
        initial_flows: FlowAssignment | None = None,
    ) -> tuple[
        np.ndarray, FlowAssignment, TESolution | None, FirstWeightsResult | None
    ]:
        """Step 1 of Algorithm 4: optimal flows ``f*`` and first weights."""
        cfg = self.config
        if cfg.te_solver == "dual":
            result = compute_first_weights(
                network,
                demands,
                objective=cfg.objective,
                max_iterations=cfg.alg1_max_iterations,
                tolerance=cfg.alg1_tolerance,
                step_ratio=cfg.alg1_step_ratio,
                record_history=False,
            )
            return result.weights, result.flows, None, result
        problem = TEProblem(network=network, demands=demands, objective=cfg.objective)
        te_solution = solve_optimal_te(
            problem,
            max_iterations=cfg.te_max_iterations,
            tolerance=cfg.te_tolerance,
            initial_flows=initial_flows,
        )
        return (
            te_solution.link_weights,
            te_solution.flows,
            te_solution,
            None,
        )

    def _augment_dags(
        self,
        network: Network,
        dags: dict[Node, ShortestPathDag],
        optimal_flows: FlowAssignment,
        flow_threshold: float,
    ) -> None:
        """Add optimal-flow-carrying downhill links to the shortest-path DAGs.

        At the exact TE optimum every link carrying flow towards a destination
        lies on a shortest path under the first weights (complementary
        slackness, conditions (6d)-(6e)).  With numerically approximate
        weights, Dijkstra's cost tolerance can still miss some of those links,
        which would make the NEM target unattainable and let the realised
        flows exceed ``f*``.  This step restores the theoretically-correct
        path set: any link with per-destination optimal flow above
        ``flow_threshold`` whose head is strictly closer to the destination is
        added as an extra next hop (strict downhill keeps the DAG acyclic).
        """
        for destination, dag in dags.items():
            vector = optimal_flows.per_destination.get(destination)
            if vector is None:
                continue
            for link in network.links:
                if vector[link.index] <= flow_threshold:
                    continue
                dist_u = dag.distances.get(link.source)
                dist_v = dag.distances.get(link.target)
                if dist_u is None or dist_v is None:
                    continue
                if dist_v >= dist_u:
                    continue
                hops = dag.next_hops.setdefault(link.source, [])
                if link.target not in hops:
                    hops.append(link.target)

    def _ecmp_tolerance(self, weights: np.ndarray) -> float:
        cfg = self.config
        if cfg.ecmp_tolerance is not None:
            return cfg.ecmp_tolerance
        if cfg.integer_weights:
            return 1.0
        positive = weights[weights > 0]
        if positive.size == 0:
            return 1e-9
        return cfg.ecmp_tolerance_factor * float(np.mean(positive))

    def _warm_initial_flows(
        self,
        network: Network,
        demands: TrafficMatrix,
        warm_start: SPEFSolution,
    ) -> FlowAssignment | None:
        """A feasible Frank-Wolfe starting point derived from a previous fit.

        Flow assignments live in the polytope of the *current* demands, so a
        previous solution is only reusable when the new matrix is a uniform
        rescaling of the old one (the demand-drift events the online
        controller emits); the flows then rescale with it.  Anything else —
        different pairs, per-pair drift, a different topology (checked by
        the full edge list, not just the link count: flows are link-indexed
        and mean nothing on a differently wired network) — returns ``None``
        and the solver starts cold.
        """
        if warm_start.network.edges != network.edges:
            return None
        old = warm_start.demands
        if set(old.pairs()) != set(demands.pairs()) or not len(old):
            return None
        old_total = old.total_volume()
        new_total = demands.total_volume()
        if old_total <= 0 or new_total <= 0:
            return None
        factor = new_total / old_total
        for pair, volume in old.items():
            if abs(demands[pair] - factor * volume) > 1e-9 * max(1.0, factor * volume):
                return None
        scaled = warm_start.flows.copy()
        for destination in scaled.per_destination:
            scaled.per_destination[destination] = (
                factor * scaled.per_destination[destination]
            )
        if self.config.objective.is_barrier():
            utilization = scaled.aggregate() / network.capacities
            if utilization.size and float(np.max(utilization)) >= 0.98:
                return None  # too close to saturation for a barrier start
        return scaled

    # ------------------------------------------------------------------
    def fit(
        self,
        network: Network,
        demands: TrafficMatrix,
        warm_start: SPEFSolution | None = None,
    ) -> SPEFSolution:
        """Run the whole SPEF pipeline (Algorithm 4) on one instance.

        ``warm_start`` resumes from a previous solution: the Frank-Wolfe TE
        solve starts from the (rescaled) previous flows when the demands are
        a uniform rescaling of the warm start's, and Algorithm 2 starts from
        the previous second weights instead of ``v = 0`` — after a small
        perturbation both converge in a fraction of the cold iterations.
        Incompatible warm starts (different topology, reshaped demands) are
        silently ignored, never wrong.  With ``te_solver="dual"`` the flow
        warm start does not apply (Algorithm 1 runs its own distributed
        initialisation); only the second weights resume.
        """
        demands.validate(network)
        cfg = self.config

        initial_flows = None
        initial_second = None
        if warm_start is not None:
            initial_flows = self._warm_initial_flows(network, demands, warm_start)
            # Second weights are link-indexed too: only meaningful when the
            # wiring matches, not merely the link count.
            if warm_start.network.edges == network.edges:
                initial_second = warm_start.second_weights.copy()
        if telemetry.enabled() and warm_start is not None:
            telemetry.count(
                "optimizer.warm_start",
                1,
                optimizer="spef",
                flows=initial_flows is not None,
                second=initial_second is not None,
            )

        with telemetry.span("optimizer.spef_te", solver=cfg.te_solver):
            raw_weights, optimal_flows, te_solution, first_result = self._solve_te(
                network, demands, initial_flows
            )
        target_flows = np.minimum(np.maximum(optimal_flows.aggregate(), 0.0), network.capacities)

        installed = raw_weights
        if cfg.integer_weights:
            spare = network.capacities - target_flows
            installed = round_weights(raw_weights, spare, cfg.max_integer_weight)

        tolerance = self._ecmp_tolerance(installed)
        destinations = demands.destinations()
        dags = all_shortest_path_dags(network, destinations, installed, tolerance)
        if cfg.augment_dags_with_optimum:
            total_volume = demands.total_volume()
            flow_threshold = cfg.dag_flow_threshold * max(total_volume, 1e-12)
            self._augment_dags(network, dags, optimal_flows, flow_threshold)

        with telemetry.span("optimizer.spef_second_weights"):
            second = compute_second_weights(
                network,
                demands,
                dags,
                target_flows,
                max_iterations=cfg.alg2_max_iterations,
                tolerance=cfg.alg2_tolerance,
                step_ratio=cfg.alg2_step_ratio,
                initial_weights=initial_second,
                record_history=False,
                backend=cfg.routing_backend,
            )
        if telemetry.enabled():
            telemetry.count(
                "optimizer.iterations",
                second.iterations,
                optimizer="spef",
                phase="second-weights",
            )

        tables = build_forwarding_tables(network, dags, second.weights)
        return SPEFSolution(
            network=network,
            demands=demands,
            config=cfg,
            first_weights=installed,
            raw_first_weights=raw_weights,
            second_weights=second.weights,
            dags=dags,
            forwarding_tables=tables,
            flows=second.flows,
            target_flows=target_flows,
            te_solution=te_solution,
            first_result=first_result,
            second_result=second,
        )

    def route(self, network: Network, demands: TrafficMatrix) -> FlowAssignment:
        """Convenience wrapper returning only the realised flows."""
        return self.fit(network, demands).flows
