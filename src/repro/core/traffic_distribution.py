"""Algorithm 3: TrafficDistribution(v) -- exponential splitting over ECMP DAGs.

Given the shortest-path DAGs built from the *first* link weights and a vector
of *second* link weights ``v``, every router splits the traffic towards a
destination across its equal-cost next hops proportionally to

    Gamma_t(s, k) = sum_j exp(-v^(s,t)_kj) / sum_i sum_j exp(-v^(s,t)_ij)

(Eq. 22), where ``v^(s,t)_kj`` are the second-weight lengths of the equal-cost
paths from ``s`` through next hop ``k``.  Rather than enumerating paths, the
sums of ``exp(-length)`` are computed by dynamic programming over the DAG:

    Z_t(t) = 1,   Z_t(s) = sum_{k in nexthops(s)} exp(-v_sk) * Z_t(k)

so that ``Gamma_t(s, k) = exp(-v_sk) * Z_t(k) / Z_t(s)``.  This is exact and
keeps the computation polynomial even when the number of equal-cost paths is
exponential.

Traffic is then propagated in decreasing first-weight distance order exactly
as the paper's Algorithm 3 prescribes.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.flows import FlowAssignment
from ..network.graph import Network, Node
from ..network.spt import ShortestPathDag
from ..routing import resolve_backend
from ..routing.sparse import sparse_traffic_distribution
from ..solvers.assignment import split_ratio_assignment


def path_weight_sums(
    network: Network,
    dag: ShortestPathDag,
    second_weights: np.ndarray,
) -> dict[Node, float]:
    """``Z_t(s) = sum over equal-cost paths p from s of exp(-v-length(p))``.

    Computed bottom-up over the DAG (nodes in increasing distance order).
    Nodes that cannot reach the destination are absent.
    """
    z_values: dict[Node, float] = {dag.destination: 1.0}
    for node in reversed(dag.topological_order()):
        if node == dag.destination:
            continue
        total = 0.0
        for hop in dag.next_hops_of(node):
            z_hop = z_values.get(hop)
            if z_hop is None:
                continue
            index = network.link_index(node, hop)
            total += float(np.exp(-second_weights[index])) * z_hop
        z_values[node] = total
    return z_values


def exponential_split_ratios(
    network: Network,
    dag: ShortestPathDag,
    second_weights: np.ndarray,
) -> dict[Node, dict[Node, float]]:
    """Per-node next-hop split ratios ``Gamma_t(s, k)`` of Eq. (22).

    Nodes with a single next hop get ratio 1 for it.  Nodes whose ``Z`` value
    is zero (numerically impossible unless the DAG is broken) fall back to an
    even split.
    """
    z_values = path_weight_sums(network, dag, second_weights)
    ratios: dict[Node, dict[Node, float]] = {}
    for node, hops in dag.next_hops.items():
        if node == dag.destination or not hops:
            continue
        weights = {}
        for hop in hops:
            z_hop = z_values.get(hop, 0.0)
            index = network.link_index(node, hop)
            weights[hop] = float(np.exp(-second_weights[index])) * z_hop
        total = sum(weights.values())
        if total <= 0:
            ratios[node] = {hop: 1.0 / len(hops) for hop in hops}
        else:
            ratios[node] = {hop: value / total for hop, value in weights.items()}
    return ratios


def traffic_distribution(
    network: Network,
    demands: TrafficMatrix,
    dags: Mapping[Node, ShortestPathDag],
    second_weights: np.ndarray,
    backend: str | None = None,
) -> FlowAssignment:
    """Algorithm 3: the traffic distribution induced by second weights ``v``.

    Parameters
    ----------
    dags:
        Shortest-path DAGs per destination, built from the *first* weights
        (the set ``ON`` of the paper).
    second_weights:
        Link-indexed vector ``v``; ``v = 0`` gives plain even-ish splitting
        weighted by the number of downstream equal-cost paths.
    backend:
        ``"sparse"`` computes the exponential ratios and the propagation with
        the compiled vectorised backend, ``"python"`` runs the dict-loop
        reference above; ``None`` uses the library default.  Callers that
        re-evaluate many ``v`` against fixed DAGs (Algorithm 2) should use
        :class:`repro.routing.CompiledDagSet` directly to amortise the DAG
        compilation as well.
    """
    if resolve_backend(backend) == "sparse":
        return sparse_traffic_distribution(network, demands, dags, second_weights)
    second = np.asarray(second_weights, dtype=float)
    if second.shape != (network.num_links,):
        raise ValueError(
            f"second weights must have length {network.num_links}, got {second.shape}"
        )
    split_ratios: dict[Node, dict[Node, dict[Node, float]]] = {}
    for destination, dag in dags.items():
        split_ratios[destination] = exponential_split_ratios(network, dag, second)
    return split_ratio_assignment(
        network, demands, dict(dags), split_ratios, backend="python"
    )
