"""Dynamic shortest-path trees/DAGs under single-link events.

Every protocol evaluation so far rebuilds its per-destination shortest-path
DAGs from scratch with Dijkstra (:func:`repro.network.spt.shortest_path_dag`),
even when only one link changed.  :class:`DynamicSPT` maintains the same
state — distances and equal-cost next hops towards each destination —
under a stream of single-edge events with bounded, incremental work, in the
style of Ramalingam–Reps delta propagation:

* **weight decrease / link recovery**: if the changed edge improves its
  tail's distance, the improvement is pushed through the reverse graph with
  a Dijkstra-ordered heap; only nodes whose distance actually drops are
  touched.
* **weight increase / link failure**: if the edge was *tight* (on a
  shortest-path tree), the affected cone — every node with a chain of tight
  edges through the changed edge's tail — is collected by a reverse BFS,
  its distances are discarded, and a restricted Dijkstra re-settles the cone
  from its (still valid) boundary.  Edges that were only tolerance-equal
  ECMP members (not tight) need no distance work at all.
* next-hop sets are then refreshed *only* for nodes whose distance changed,
  their in-neighbours, and the changed edge's tail — with exactly the cost
  test :func:`~repro.network.spt.shortest_path_dag` uses, so the maintained
  DAG matches a cold rebuild.

**Equivalence guarantees and the fallback.**  Distances are accumulated
destination-outward exactly as Dijkstra accumulates them, so incremental
distances are bit-identical to a cold run.  Next-hop sets are recomputed
with the same tolerance test and the same link iteration order, so they too
match a cold :func:`shortest_path_dag` — *except* on zero-weight plateaus,
where the cold path orients ties with its Dijkstra tree and incremental
maintenance cannot reproduce that tree cheaply.  :class:`DynamicSPT`
therefore falls back to a full (cold-identical) per-destination rebuild
whenever

1. a plateau link (active weight at or below ``max(tolerance, 1e-12)``)
   is *near the update*: an endpoint sits in the hop-refresh region, or
   the plateau sits at a distance where the cold Dijkstra's tie order
   could have shifted (at or above the update's minimum touched distance
   minus the tolerance).  Plateaus strictly below that bound are settled
   by an identical Dijkstra prefix in both cold builds, so their
   orientation cannot change and the update stays incremental,
2. the affected cone of an increase exceeds ``max_affected_fraction`` of
   the reachable nodes (a full Dijkstra is as cheap and simpler;
   ``None`` picks a per-topology-class default — see
   :func:`tuned_max_affected_fraction`), or
3. ``verify=True`` and the incremental result disagrees with a shadow cold
   rebuild (the *verified fallback*; counted in :attr:`DsptStats`).

The golden-equivalence suite (``tests/test_online_dspt.py``) drives random
event sequences through both paths and asserts identical DAGs and link
loads to 1e-9.
"""

from __future__ import annotations

import heapq
import logging
import warnings
from dataclasses import dataclass, field, replace
from collections.abc import Iterable, Sequence

import numpy as np

from ..network.graph import Edge, Network, NetworkError, Node
from ..network.spt import (
    DEFAULT_TOLERANCE,
    ShortestPathDag,
    WeightsLike,
    as_weight_vector,
    validate_weights,
)
from ..obs import telemetry

logger = logging.getLogger(__name__)

#: Strict-improvement margin used by the cold Dijkstra (`spt._dijkstra_to`);
#: the incremental relaxations use the same margin so both paths settle the
#: same distances.
_MARGIN = 1e-15

#: Active weights at or below this floor can create zero-weight plateaus,
#: where the cold DAG is oriented by its Dijkstra tree; incremental
#: maintenance then falls back to full rebuilds for updates near the
#: plateau (far-away updates stay incremental — see ``_plateau_safe``).
_PLATEAU_FLOOR = 1e-12

#: Shared empty refresh set for the no-op safety checks.
_NO_REFRESH: frozenset = frozenset()

#: ``max_affected_fraction`` defaults per topology class (see
#: :func:`tuned_max_affected_fraction`).
DENSE_CONE_FRACTION = 0.9
SPARSE_CONE_FRACTION = 0.5


def tuned_max_affected_fraction(network: Network) -> float:
    """Cone-threshold default tuned from the ``dspt.cone_fraction`` histogram.

    On dense random graphs (rand100/rand500 class: 64+ nodes, mean directed
    degree >= 3) the histogram is bimodal: nearly every increase touches a
    few percent of the nodes, and the rare large cones still re-settle
    faster than a cold Dijkstra because the restricted heap skips the
    untouched prefix — so the threshold only costs exactness-preserving
    work.  0.9 eliminates the cone fallbacks on rand100 with bit-identical
    loads.  Small or sparse backbones (Abilene, hier50) keep the
    conservative 0.5: their cones are the whole graph and the cold rebuild
    really is as cheap.
    """
    nodes = max(network.num_nodes, 1)
    mean_degree = network.num_links / nodes
    if nodes >= 64 and mean_degree >= 3.0:
        return DENSE_CONE_FRACTION
    return SPARSE_CONE_FRACTION


@dataclass
class DsptStats:
    """Counters describing how much work the engine actually did.

    ``full_rebuilds`` is the aggregate; the *why* is broken down so tuning
    decisions (raise ``max_affected_fraction``? fix a plateau?) can be made
    from the stats alone: ``full_rebuilds == fallback_cone +
    fallback_plateau + initial_builds + bulk_rebuilds`` (verified fallbacks
    restore the shadow rebuild's state without recounting it).
    """

    events: int = 0
    #: Destinations whose DAG changed structurally, summed over events.
    destinations_changed: int = 0
    incremental_updates: int = 0
    full_rebuilds: int = 0
    #: Nodes re-settled by incremental distance work (cone + decrease sets).
    nodes_recomputed: int = 0
    #: Incremental results that disagreed with the shadow rebuild (verify mode).
    verify_mismatches: int = 0
    #: Rebuilds because the affected cone exceeded ``max_affected_fraction``.
    fallback_cone: int = 0
    #: Rebuilds because an active weight sat at/below the plateau floor.
    fallback_plateau: int = 0
    #: Cold builds of newly added destinations (not event work).
    initial_builds: int = 0
    #: Rebuilds from whole-vector :meth:`DynamicSPT.set_weights` installs.
    bulk_rebuilds: int = 0
    #: Events during which at least one destination fell back (per-event
    #: numerator for :attr:`event_fallback_rate`).
    events_with_fallback: int = 0

    @property
    def event_fallbacks(self) -> int:
        """Per-destination event updates that abandoned the incremental path."""
        return self.fallback_cone + self.fallback_plateau + self.verify_mismatches

    def _per_update_fallback_rate(self) -> float:
        """The per-update rate without the deprecation warning (internal use)."""
        attempts = self.incremental_updates + self.event_fallbacks
        return self.event_fallbacks / attempts if attempts else 0.0

    @property
    def fallback_rate(self) -> float:
        """Fraction of per-destination *updates* that fell back (0.0 when idle).

        .. deprecated:: 1.7
            This is a per-update rate: both numerator and denominator count
            (event, destination) update attempts, so on a sweep with D
            destinations a single all-destination fallback event drowns in
            ``D`` incremental updates from every other event.  Kept (same
            units as always, now with a :class:`DeprecationWarning` on
            access) so ``repro results diff`` gates against stored runs
            don't silently loosen; new code should read
            :attr:`event_fallback_rate`.
        """
        warnings.warn(
            "DsptStats.fallback_rate is deprecated since 1.7 (per-update "
            "denominator understates event-level fallbacks); use "
            "DsptStats.event_fallback_rate",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._per_update_fallback_rate()

    @property
    def event_fallback_rate(self) -> float:
        """Fraction of *events* where any destination fell back (0.0 when idle)."""
        return self.events_with_fallback / self.events if self.events else 0.0

    def __repr__(self) -> str:  # noqa: D105 - breakdown-bearing repr
        return (
            f"DsptStats(events={self.events}, "
            f"destinations_changed={self.destinations_changed}, "
            f"incremental_updates={self.incremental_updates}, "
            f"full_rebuilds={self.full_rebuilds} "
            f"[cone={self.fallback_cone}, plateau={self.fallback_plateau}, "
            f"verify={self.verify_mismatches}, initial={self.initial_builds}, "
            f"bulk={self.bulk_rebuilds}], "
            f"nodes_recomputed={self.nodes_recomputed}, "
            f"fallback_rate={self._per_update_fallback_rate():.3f}, "
            f"event_fallback_rate={self.event_fallback_rate:.3f})"
        )


def publish_dspt_counters(before: DsptStats, after: DsptStats) -> None:
    """Publish the delta between two stats snapshots as telemetry counters.

    Called once per sweep/replay (never per event), so hot-loop overhead
    stays at plain integer increments; the counters land as
    ``dspt.update[path=incremental]``, ``dspt.fallback[reason=...]`` and
    ``dspt.rebuild[reason=...]``.  No-op when telemetry is disabled.
    """
    if not telemetry.enabled():
        return
    deltas = (
        ("dspt.events", {}, after.events - before.events),
        ("dspt.update", {"path": "incremental"},
         after.incremental_updates - before.incremental_updates),
        ("dspt.fallback", {"reason": "cone-threshold"},
         after.fallback_cone - before.fallback_cone),
        ("dspt.fallback", {"reason": "plateau"},
         after.fallback_plateau - before.fallback_plateau),
        ("dspt.fallback", {"reason": "verify-mismatch"},
         after.verify_mismatches - before.verify_mismatches),
        ("dspt.rebuild", {"reason": "initial"},
         after.initial_builds - before.initial_builds),
        ("dspt.rebuild", {"reason": "bulk"},
         after.bulk_rebuilds - before.bulk_rebuilds),
        ("dspt.fallback_events", {},
         after.events_with_fallback - before.events_with_fallback),
        ("dspt.nodes_recomputed", {},
         after.nodes_recomputed - before.nodes_recomputed),
    )
    for name, tags, value in deltas:
        if value:
            telemetry.count(name, value, **tags)


def snapshot_stats(stats: DsptStats) -> DsptStats:
    """A frozen copy of the counters, for before/after delta publishing."""
    return replace(stats)


@dataclass
class _DestinationState:
    """Live SPT/DAG state towards one destination (mutated in place)."""

    destination: Node
    dist: dict[Node, float] = field(default_factory=dict)
    next_hops: dict[Node, list[Node]] = field(default_factory=dict)


class DynamicSPT:
    """Maintain per-destination shortest-path DAGs under link events.

    Parameters
    ----------
    network:
        The base topology.  Failed links stay in the network but are masked
        out of every computation, so link indices (and therefore load
        vectors) keep the base indexing.
    weights:
        Initial link weights (mapping or link-indexed vector).
    destinations:
        Destinations to maintain state for; more can be added later with
        :meth:`add_destination`.
    tolerance:
        ECMP cost tolerance, as in :func:`~repro.network.spt.shortest_path_dag`.
    max_affected_fraction:
        When an increase's affected cone exceeds this fraction of the
        reachable nodes, the destination is fully rebuilt instead.
        ``None`` (the default) picks a per-topology-class value via
        :func:`tuned_max_affected_fraction`.
    verify:
        Cross-check every incremental update against a cold rebuild and fall
        back to it on any mismatch (slow; meant for debugging and tests).

    Examples
    --------
    >>> from repro.topology.backbones import abilene_network
    >>> net = abilene_network()
    >>> spt = DynamicSPT(net, [1.0] * net.num_links, destinations=net.nodes)
    >>> edge = net.links[0].endpoints
    >>> changed = spt.fail_link(*edge)
    >>> spt.recover_link(*edge) == changed  # reverting touches the same DAGs
    True
    """

    def __init__(
        self,
        network: Network,
        weights: WeightsLike,
        destinations: Iterable[Node] = (),
        tolerance: float = DEFAULT_TOLERANCE,
        max_affected_fraction: float | None = None,
        verify: bool = False,
    ) -> None:
        if max_affected_fraction is None:
            max_affected_fraction = tuned_max_affected_fraction(network)
        if not 0 < max_affected_fraction <= 1:
            raise ValueError("max_affected_fraction must be in (0, 1]")
        self.network = network
        self.tolerance = float(tolerance)
        self.max_affected_fraction = float(max_affected_fraction)
        self.verify = verify
        self._weights = as_weight_vector(network, weights)
        validate_weights(self._weights)
        self._active = np.ones(network.num_links, dtype=bool)
        # List mirrors of the weight/active vectors: the incremental loops
        # index single elements millions of times per sweep, and plain-list
        # access is several times cheaper than ndarray scalar access.  Kept
        # in sync at every mutation point.
        self._weights_list: list[float] = self._weights.tolist()
        self._active_list: list[bool] = self._active.tolist()
        self._states: dict[Node, _DestinationState] = {}
        self._plateau_links: set[int] = set()
        self._refresh_plateau_links()
        #: Per-destination changed-node regions of the last event: the nodes
        #: whose next-hop sets (or reachability) changed, or ``None`` for a
        #: full rebuild.  Consumed by the controller's delta load kernel.
        self.last_event_regions: dict[Node, set[Node] | None] = {}
        self.stats = DsptStats()
        for destination in destinations:
            self.add_destination(destination)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def destinations(self) -> list[Node]:
        return list(self._states)

    @property
    def weights(self) -> np.ndarray:
        """The current weight vector (failed links keep their last weight)."""
        return self._weights.copy()

    def is_active(self, source: Node, target: Node) -> bool:
        return bool(self._active[self.network.link_index(source, target)])

    def failed_links(self) -> list[Edge]:
        """Currently failed directed links, in link-index order."""
        return [
            link.endpoints
            for link in self.network.links
            if not self._active[link.index]
        ]

    def dag(self, destination: Node) -> ShortestPathDag:
        """A live :class:`ShortestPathDag` view of one destination's state.

        The returned object shares the engine's dictionaries: it reflects —
        and is invalidated by — subsequent events.  Compile it (e.g. with
        :meth:`CompiledDag.from_dag`) to snapshot it.
        """
        state = self._state(destination)
        return ShortestPathDag(
            destination=destination,
            distances=state.dist,
            next_hops=state.next_hops,
            tolerance=self.tolerance,
        )

    def distances(self, destination: Node) -> dict[Node, float]:
        return dict(self._state(destination).dist)

    def reachable(self, source: Node, destination: Node) -> bool:
        """True when ``source`` currently reaches ``destination``."""
        return source in self._state(destination).dist

    # ------------------------------------------------------------------
    # snapshot support (shared baselines for parallel sweep workers)
    # ------------------------------------------------------------------
    @property
    def active_mask(self) -> np.ndarray:
        """Copy of the per-link active mask (False = failed)."""
        return self._active.copy()

    def export_states(self) -> dict[Node, tuple[dict[Node, float], dict[Node, list[Node]]]]:
        """Picklable per-destination ``(dist, next_hops)`` state copies."""
        return {
            destination: (
                dict(state.dist),
                {node: list(hops) for node, hops in state.next_hops.items()},
            )
            for destination, state in self._states.items()
        }

    def install_states(
        self,
        active: np.ndarray,
        states: dict[Node, tuple[dict[Node, float], dict[Node, list[Node]]]],
    ) -> None:
        """Adopt an :meth:`export_states` snapshot without any cold builds.

        Replaces every maintained destination; the caller owns consistency
        between ``active``, the current weights and the snapshotted state
        (i.e. the snapshot must come from an engine over the same network
        with the same weights).  Stats are *not* carried over: the adopting
        engine's counters describe only its own work.
        """
        self._active = np.asarray(active, dtype=bool).copy()
        self._active_list = self._active.tolist()
        self._refresh_plateau_links()
        self._states = {
            destination: _DestinationState(
                destination=destination,
                dist=dict(dist),
                next_hops={node: list(hops) for node, hops in next_hops.items()},
            )
            for destination, (dist, next_hops) in states.items()
        }

    def ecmp_link_loads(
        self,
        destination: Node,
        entering: dict[Node, float],
        with_through: bool = False,
    ):
        """Even-ECMP link loads towards one destination, in a single pass.

        Routes ``{source: volume}`` directly over the live DAG state: one
        sweep over the nodes in decreasing-distance order, splitting each
        node's throughflow evenly over its next hops.  Equivalent (to float
        round-off) to compiling the DAG and propagating — but an
        event-dirtied DAG is typically routed exactly once before the next
        event invalidates it, and at that amortisation level the fused dict
        pass beats compile-then-propagate severalfold.  Amortised consumers
        (route many matrices against one state) should compile instead; see
        :meth:`repro.routing.SparseRouter.refresh_destination`.

        Returns ``(loads, dropped)``: base-indexed per-link loads (failed
        links carry 0) and the entering volumes whose source cannot reach
        the destination.  With ``with_through`` the per-node throughflow
        dict rides along as a third element — the seed state for the
        controller's delta load kernel.
        """
        state = self._state(destination)
        dist = state.dist
        next_hops = state.next_hops
        # Accumulate in a plain list: the += below runs once per (node, hop)
        # pair and list element access is far cheaper than ndarray scalars.
        loads = [0.0] * self.network.num_links
        through = dict.fromkeys(dist, 0.0)
        dropped: dict[Node, float] = {}
        for source, volume in entering.items():
            if source in through:
                through[source] += volume
            else:
                dropped[source] = volume
        link_index = self.network._link_index
        if self.plateau_free:
            # Plateau-free edges strictly decrease the distance, so the
            # decreasing-distance sort is a valid processing order.
            order = sorted(dist, key=dist.__getitem__, reverse=True)
        else:
            # Zero-weight plateaus need a true topological order.
            order = self.dag(destination).topological_order()
        for node in order:
            flow = through[node]
            if flow == 0.0 or node == destination:
                continue
            hops = next_hops[node]
            if not hops:
                raise NetworkError(
                    f"node {node!r} has traffic for {destination!r} but no next hop"
                )
            share = flow / len(hops)
            for hop in hops:
                through[hop] += share
                loads[link_index[(node, hop)]] += share
        vector = np.asarray(loads)
        if with_through:
            return vector, dropped, through
        return vector, dropped

    def _state(self, destination: Node) -> _DestinationState:
        try:
            return self._states[destination]
        except KeyError:
            raise NetworkError(
                f"no dynamic SPT state for destination {destination!r}"
            ) from None

    # ------------------------------------------------------------------
    # event entry points (each returns the destinations whose DAG changed)
    # ------------------------------------------------------------------
    def add_destination(self, destination: Node) -> None:
        """Start maintaining (and fully build) state for one more destination."""
        if not self.network.has_node(destination):
            raise NetworkError(f"unknown node {destination!r}")
        if destination not in self._states:
            state = _DestinationState(destination=destination)
            self._states[destination] = state
            self.stats.initial_builds += 1
            self._rebuild(state)

    def fail_link(self, source: Node, target: Node) -> set[Node]:
        """Mask one directed link out; returns the destinations affected."""
        index = self.network.link_index(source, target)
        if not self._active[index]:
            return set()
        self._active[index] = False
        self._active_list[index] = False
        # The safety check must see the link's plateau status under both the
        # old and the new classification, so pass the union of the two sets.
        plateau = self._plateau_links
        if index in plateau:
            self._plateau_links = plateau - {index}
        return self._propagate(
            index, old_eff=self._weights[index], new_eff=np.inf, plateau=plateau
        )

    def recover_link(self, source: Node, target: Node) -> set[Node]:
        """Re-activate a failed link at its configured weight."""
        index = self.network.link_index(source, target)
        if self._active[index]:
            return set()
        self._active[index] = True
        self._active_list[index] = True
        if self._weights[index] <= self._plateau_floor():
            self._plateau_links = self._plateau_links | {index}
        return self._propagate(
            index, old_eff=np.inf, new_eff=self._weights[index],
            plateau=self._plateau_links,
        )

    def set_weight(self, source: Node, target: Node, weight: float) -> set[Node]:
        """Change one link's weight (no-op for equal weight)."""
        if not np.isfinite(weight) or weight < 0:
            raise NetworkError(f"link weight must be finite and non-negative, got {weight}")
        index = self.network.link_index(source, target)
        old = float(self._weights[index])
        if old == weight:
            return set()
        self._weights[index] = float(weight)
        self._weights_list[index] = float(weight)
        if not self._active[index]:
            return set()  # takes effect on recovery
        was_plateau = index in self._plateau_links
        now_plateau = weight <= self._plateau_floor()
        plateau = self._plateau_links
        if now_plateau and not was_plateau:
            self._plateau_links = plateau = plateau | {index}
        elif was_plateau and not now_plateau:
            self._plateau_links = plateau - {index}
        return self._propagate(
            index, old_eff=old, new_eff=float(weight), plateau=plateau
        )

    def set_weights(self, weights: WeightsLike) -> set[Node]:
        """Install a whole new weight vector (full rebuild of every DAG)."""
        vector = as_weight_vector(self.network, weights)
        validate_weights(vector)
        self._weights = vector
        self._weights_list = vector.tolist()
        self._refresh_plateau_links()
        self.stats.events += 1
        changed: set[Node] = set()
        for state in self._states.values():
            self.stats.bulk_rebuilds += 1
            self._rebuild(state)
            changed.add(state.destination)
        self.stats.destinations_changed += len(changed)
        self.last_event_regions = dict.fromkeys(changed)
        return changed

    # ------------------------------------------------------------------
    # single-edge propagation
    # ------------------------------------------------------------------
    @property
    def plateau_free(self) -> bool:
        """True when every active weight is safely above the plateau floor.

        Plateau-free states have two useful properties: incremental updates
        are exact without any locality check (see the module docstring), and
        every DAG edge strictly decreases the distance, so sorting nodes by
        decreasing distance is a valid — and much cheaper — topological
        order for compilation.
        """
        return not self._plateau_links

    def _plateau_floor(self) -> float:
        return max(self.tolerance, _PLATEAU_FLOOR)

    def _refresh_plateau_links(self) -> None:
        """Recompute the set of active links at/below the plateau floor."""
        mask = self._active & (self._weights <= self._plateau_floor())
        self._plateau_links = {int(i) for i in np.nonzero(mask)[0]}

    def _plateau_safe(
        self,
        state: _DestinationState,
        moved_min: float,
        refresh: set[Node],
        plateau: set[int],
    ) -> bool:
        """Is this incremental update provably cold-exact despite plateaus?

        Plateau links orient the cold DAG through the Dijkstra parent tree,
        which incremental hop refresh cannot reproduce.  The update is still
        exact when every plateau stays *out of reach* of the change:

        * no plateau endpoint is in the hop-refresh region (refreshing a
          plateau-incident node would drop its cold tree augmentation), and
        * every usable plateau sits strictly below ``moved_min`` minus the
          tolerance — the cold Dijkstra settles that prefix identically
          before and after the event, so tie orientation there is stable.

        ``plateau`` is the union of the pre- and post-event plateau-link
        sets, so links entering or leaving plateau status are checked too.
        """
        if not plateau:
            return True
        dist = state.dist
        bound = moved_min - self.tolerance
        for index in plateau:
            plink = self.network.link_by_index(index)
            if dist.get(plink.target) is None:
                continue  # unusable towards this destination in either build
            if plink.source in refresh or plink.target in refresh:
                return False
            if dist[plink.target] >= bound:
                return False
            if dist.get(plink.source, np.inf) >= bound:
                return False
        return True

    def _propagate(
        self, index: int, old_eff: float, new_eff: float, plateau: set[int]
    ) -> set[Node]:
        link = self.network.link_by_index(index)
        self.stats.events += 1
        fallbacks_before = self.stats.event_fallbacks
        changed: set[Node] = set()
        regions: dict[Node, set[Node] | None] = {}
        for state in self._states.values():
            if link.source == state.destination:
                continue  # a destination's out-edges never carry its traffic
            if self.verify:
                region = self._update_verified(state, link, old_eff, new_eff, plateau)
            else:
                region = self._update_destination(state, link, old_eff, new_eff, plateau)
            if region is None or region:
                changed.add(state.destination)
                regions[state.destination] = region
        if self.stats.event_fallbacks > fallbacks_before:
            self.stats.events_with_fallback += 1
        self.stats.destinations_changed += len(changed)
        self.last_event_regions = regions
        return changed

    def _update_verified(
        self,
        state: _DestinationState,
        link,
        old_eff: float,
        new_eff: float,
        plateau: set[int],
    ) -> set[Node] | None:
        """Incremental update cross-checked against a shadow cold rebuild."""
        shadow = _DestinationState(destination=state.destination)
        before = (dict(state.dist), {n: list(h) for n, h in state.next_hops.items()})
        region = self._update_destination(state, link, old_eff, new_eff, plateau)
        self._rebuild(shadow, count=False)
        if not _states_equal(state, shadow):
            self.stats.verify_mismatches += 1
            logger.warning(
                "incremental SPT update towards %r diverged from the cold rebuild "
                "after %s -> %s on %s; falling back",
                state.destination,
                old_eff,
                new_eff,
                link.endpoints,
            )
            state.dist = shadow.dist
            state.next_hops = shadow.next_hops
            return None
        if region is None or region:
            return region
        # Equal states but report a (full) change when the cold rebuild
        # differs from the pre-event state (paranoia: should imply `region`).
        return None if before != (state.dist, state.next_hops) else set()

    def _update_destination(
        self,
        state: _DestinationState,
        link,
        old_eff: float,
        new_eff: float,
        plateau: set[int],
    ) -> set[Node] | None:
        """Apply one effective-weight change towards one destination.

        Returns the set of nodes whose next-hop sets (or reachability)
        changed — empty when the DAG is untouched — or ``None`` when the
        destination was fully rebuilt.
        """
        if new_eff < old_eff:
            return self._edge_decrease(state, link, new_eff, plateau)
        return self._edge_increase(state, link, old_eff, plateau)

    def _edge_decrease(
        self, state: _DestinationState, link, new_eff: float, plateau: set[int]
    ) -> set[Node] | None:
        dist = state.dist
        head = dist.get(link.target)
        if head is None:
            return set()  # the head cannot reach the destination; edge is inert
        candidate = new_eff + head
        tail_dist = dist.get(link.source, np.inf)
        changed: list[Node] = []
        if candidate < tail_dist - _MARGIN:
            # Push the improvement through the reverse graph, Dijkstra-ordered.
            dist[link.source] = candidate
            active, weights = self._active_list, self._weights_list
            in_links = self.network.in_links
            counter = 0
            heap: list[tuple[float, int, Node]] = [(candidate, counter, link.source)]
            while heap:
                d, _, node = heapq.heappop(heap)
                if d > dist.get(node, np.inf):
                    continue  # stale entry
                changed.append(node)
                for in_link in in_links(node):
                    if not active[in_link.index]:
                        continue
                    tail = in_link.source
                    if tail == state.destination:
                        continue
                    relaxed = d + weights[in_link.index]
                    if relaxed < dist.get(tail, np.inf) - _MARGIN:
                        dist[tail] = relaxed
                        counter += 1
                        heapq.heappush(heap, (relaxed, counter, tail))
            self.stats.nodes_recomputed += len(changed)
        # Beyond the ECMP tolerance band the edge is not (and was not) a DAG
        # member for this destination, so no hop set can change.
        elif candidate > tail_dist + self.tolerance and self._plateau_safe(
            state, tail_dist, _NO_REFRESH, plateau
        ):
            self.stats.incremental_updates += 1
            return set()
        moved_min = min((dist[node] for node in changed), default=tail_dist)
        refresh = self._refresh_set(state, changed, extra=(link.source,))
        if not self._plateau_safe(state, moved_min, refresh, plateau):
            self.stats.fallback_plateau += 1
            self._rebuild(state)
            return None
        self.stats.incremental_updates += 1
        return self._refresh_nodes(state, refresh)

    def _edge_increase(
        self, state: _DestinationState, link, old_eff: float, plateau: set[int]
    ) -> set[Node] | None:
        dist = state.dist
        tail = dist.get(link.source)
        head = dist.get(link.target)
        if tail is None or head is None:
            return set()  # edge was not usable towards this destination
        if old_eff + head > tail + _MARGIN:
            # Not tight: distances cannot change; only the tail's ECMP set can
            # (the edge may have been a tolerance-equal member).
            # Not even a tolerance-equal member before the increase:
            # nothing to refresh.
            if old_eff + head > tail + self.tolerance and self._plateau_safe(
                state, tail, _NO_REFRESH, plateau
            ):
                self.stats.incremental_updates += 1
                return set()
            refresh = self._refresh_set(state, [], extra=(link.source,))
            if not self._plateau_safe(state, tail, refresh, plateau):
                self.stats.fallback_plateau += 1
                self._rebuild(state)
                return None
            self.stats.incremental_updates += 1
            return self._refresh_nodes(state, refresh)

        # The edge was on the shortest-path tree structure: collect the cone
        # of nodes whose tight chains run through the tail.
        active, weights = self._active_list, self._weights_list
        in_links, out_links = self.network.in_links, self.network.out_links
        cone: set[Node] = {link.source}
        queue: list[Node] = [link.source]
        while queue:
            node = queue.pop()
            for in_link in in_links(node):
                if not active[in_link.index]:
                    continue
                upstream = in_link.source
                if upstream in cone or upstream == state.destination:
                    continue
                d_up = dist.get(upstream)
                if d_up is None:
                    continue
                if weights[in_link.index] + dist[node] <= d_up + _MARGIN:
                    cone.add(upstream)
                    queue.append(upstream)

        cone_fraction = len(cone) / max(len(dist), 1)
        telemetry.observe("dspt.cone_fraction", cone_fraction)
        if len(cone) > self.max_affected_fraction * max(len(dist), 1):
            self.stats.fallback_cone += 1
            self._rebuild(state)
            return None

        # Re-settle the cone from its boundary: distances outside the cone
        # are still valid, so a restricted Dijkstra recovers exact values.
        old_dist = {node: dist.pop(node) for node in cone}
        estimates: dict[Node, float] = {}
        counter = 0
        heap: list[tuple[float, int, Node]] = []
        for node in cone:
            best = np.inf
            for out_link in out_links(node):
                if not active[out_link.index]:
                    continue
                boundary = dist.get(out_link.target)
                if boundary is None:
                    continue
                candidate = weights[out_link.index] + boundary
                if candidate < best - _MARGIN:
                    best = candidate
            if np.isfinite(best):
                estimates[node] = best
                counter += 1
                heapq.heappush(heap, (best, counter, node))
        while heap:
            d, _, node = heapq.heappop(heap)
            if node in dist or d > estimates.get(node, np.inf):
                continue
            dist[node] = d
            for in_link in in_links(node):
                if not active[in_link.index]:
                    continue
                upstream = in_link.source
                if upstream not in cone or upstream in dist:
                    continue
                relaxed = d + weights[in_link.index]
                if relaxed < estimates.get(upstream, np.inf) - _MARGIN:
                    estimates[upstream] = relaxed
                    counter += 1
                    heapq.heappush(heap, (relaxed, counter, upstream))

        self.stats.nodes_recomputed += len(cone)
        changed = [
            node
            for node in cone
            if dist.get(node) != old_dist[node]
        ]
        unreachable = [node for node in cone if node not in dist]
        refresh = self._refresh_set(state, changed, extra=(link.source,), cone=cone)
        # An increase only lengthens distances, so the smallest distance the
        # event touched is the smallest *old* cone distance.
        moved_min = min(old_dist.values())
        if not self._plateau_safe(state, moved_min, refresh, plateau):
            self.stats.fallback_plateau += 1
            self._rebuild(state)
            return None
        self.stats.incremental_updates += 1
        for node in unreachable:
            state.next_hops.pop(node, None)
        region = self._refresh_nodes(state, refresh)
        region.update(unreachable)
        return region

    def _refresh_set(
        self,
        state: _DestinationState,
        changed: Sequence[Node],
        extra: tuple[Node, ...] = (),
        cone: set[Node] | None = None,
    ) -> set[Node]:
        """The nodes whose next-hop sets an update must recompute.

        A node's hop set depends on its own distance, its out-neighbours'
        distances and its out-link weights, so the refresh set is the changed
        nodes, their in-neighbours, the changed edge's tail (``extra``) and —
        for increases — the whole re-settled cone (cheap, and covers nodes
        whose distance came back identical through a different support).
        """
        refresh: set[Node] = set(changed)
        active = self._active_list
        for node in changed:
            for in_link in self.network.in_links(node):
                if active[in_link.index]:
                    refresh.add(in_link.source)
        refresh.update(extra)
        if cone:
            refresh.update(cone)
        refresh.discard(state.destination)
        return refresh

    def _refresh_nodes(self, state: _DestinationState, refresh: set[Node]) -> set[Node]:
        """Refresh hop sets; returns the nodes that structurally changed."""
        region: set[Node] = set()
        for node in refresh:
            if node in state.dist:
                if self._refresh_hops(state, node):
                    region.add(node)
            elif state.next_hops.pop(node, None) is not None:
                region.add(node)
        return region

    def _refresh_hops(self, state: _DestinationState, node: Node) -> bool:
        """Recompute one node's equal-cost next hops (cold cost test)."""
        dist = state.dist
        d_node = dist[node]
        active, weights = self._active_list, self._weights_list
        bound = d_node + self.tolerance
        floor = d_node - _MARGIN
        hops: list[Node] = []
        for out_link in self.network.out_links(node):
            index = out_link.index
            if not active[index]:
                continue
            d_hop = dist.get(out_link.target)
            if d_hop is None:
                continue
            if weights[index] + d_hop <= bound and d_hop < floor:
                hops.append(out_link.target)
        if state.next_hops.get(node) != hops:
            state.next_hops[node] = hops
            return True
        return False

    # ------------------------------------------------------------------
    # full rebuild (the cold-identical fallback)
    # ------------------------------------------------------------------
    def _rebuild(self, state: _DestinationState, count: bool = True) -> None:
        """Full Dijkstra + DAG construction on the active subgraph.

        Mirrors :func:`repro.network.spt.shortest_path_dag` (including the
        Dijkstra-tree plateau augmentation) with failed links masked out, so
        the result is identical to a cold build on the pruned network.
        """
        destination = state.destination
        active, weights = self._active_list, self._weights_list
        in_links, out_links = self.network.in_links, self.network.out_links
        dist: dict[Node, float] = {destination: 0.0}
        parents: dict[Node, Node] = {}
        heap: list[tuple[float, int, Node]] = [(0.0, 0, destination)]
        counter = 1
        visited: dict[Node, bool] = {}
        while heap:
            d, _, node = heapq.heappop(heap)
            if visited.get(node):
                continue
            visited[node] = True
            for in_link in in_links(node):
                if not active[in_link.index]:
                    continue
                candidate = d + weights[in_link.index]
                previous = dist.get(in_link.source)
                if previous is None or candidate < previous - _MARGIN:
                    dist[in_link.source] = candidate
                    parents[in_link.source] = node
                    heapq.heappush(heap, (candidate, counter, in_link.source))
                    counter += 1

        next_hops: dict[Node, list[Node]] = {}
        for node, d_node in dist.items():
            if node == destination:
                continue
            hops: list[Node] = []
            for out_link in out_links(node):
                if not active[out_link.index]:
                    continue
                d_hop = dist.get(out_link.target)
                if d_hop is None:
                    continue
                on_shortest = (
                    weights[out_link.index] + d_hop <= d_node + self.tolerance
                )
                if on_shortest and d_hop < d_node - _MARGIN:
                    hops.append(out_link.target)
            parent = parents.get(node)
            if (
                parent is not None
                and parent not in hops
                and dist.get(parent, np.inf) >= d_node - _MARGIN
            ):
                hops.append(parent)
            next_hops[node] = hops

        state.dist.clear()
        state.dist.update(dist)
        state.next_hops.clear()
        state.next_hops.update(next_hops)
        if count:
            self.stats.full_rebuilds += 1
            self.stats.nodes_recomputed += len(dist)


def _states_equal(a: _DestinationState, b: _DestinationState) -> bool:
    """Distances and hop *sets* agree (hop order is refresh-order dependent)."""
    if a.dist != b.dist:
        return False
    if set(a.next_hops) != set(b.next_hops):
        return False
    return all(set(hops) == set(b.next_hops[node]) for node, hops in a.next_hops.items())
