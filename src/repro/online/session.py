"""The formal controller-session API: feed events, read state, subscribe.

:func:`~repro.online.replay.replay_failure_trace` used to blur three
concerns inside one function — event ingestion (the simulator binding),
controller state (baseline, timeline, samples) and policy wiring.  A
long-running service cannot be built on that surface, so this module
extracts it as :class:`ControllerSession`, the object both the batch
replay *and* the ``repro serve`` daemon now drive:

* **feed** — :meth:`ControllerSession.feed` applies one event, samples the
  resulting measurement into the session timeline and hands it to the
  attached policy (exactly the ordering the replay always used, so the
  two paths stay bit-for-bit identical);
* **read state** — :meth:`measure`, :meth:`forwarding`,
  :meth:`status`, :meth:`counters` and the deterministic
  :meth:`state_dump` / :meth:`from_state_dump` round trip;
* **subscribe** — :meth:`subscribe` registers ``(session, time, kind,
  measurement)`` callbacks fired after every sample (events and policy
  reoptimizations alike), the hook the serve daemon and future streaming
  consumers build on;
* **drive** — :meth:`replay` binds an event trace onto a discrete-event
  simulator and runs it to completion (the engine behind
  ``replay_failure_trace``), while :meth:`reoptimize_offline` runs the
  warm-started weight search on a :meth:`TEController.snapshot` clone so
  a live session's state is never blocked mid-search.

Sessions are keyed (:attr:`key`, defaulting to the topology name) the
same way the results store keys runs, which is what makes the serve
daemon's multi-tenancy line up with recorded soak runs.
"""

from __future__ import annotations

import time as _time
from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING, Any, Protocol

import numpy as np

from ..network.demands import TrafficMatrix
from ..network.graph import Network, Node
from ..network.spt import DEFAULT_TOLERANCE, WeightsLike
from ..obs import telemetry
from ..simulator.events import Simulator
from .controller import ControllerMeasurement, ControllerUpdate, TEController
from .dspt import publish_dspt_counters, snapshot_stats
from .events import CapacityChange, EventError, LinkFailure, NetworkEvent

if TYPE_CHECKING:
    from ..protocols.fortz_thorup import LocalSearchResult

#: Schema version of :meth:`ControllerSession.state_dump` payloads.
STATE_DUMP_SCHEMA = 1

#: Decimal places of measurement fields in wire responses and recorded
#: per-event rows.  12 decimals keeps the serve/batch diff exact at the
#: acceptance tolerance while staying JSON-round-trip stable.
ROW_DECIMALS = 12

#: ``(session, time, kind, measurement)`` callback fired after every sample.
SessionSubscriber = Callable[
    ["ControllerSession", float, str, ControllerMeasurement], None
]


class SessionPolicy(Protocol):
    """What a session needs from an attached reoptimization policy.

    Structural (any object with these two methods qualifies — the
    concrete implementations live in :mod:`repro.online.policy`).
    """

    def attach(
        self,
        controller: TEController,
        simulator: Any,
        on_reoptimize: Any = None,
    ) -> Any: ...

    def observe(
        self,
        controller: TEController,
        update: ControllerUpdate,
        measurement: ControllerMeasurement | None = None,
    ) -> None: ...


def measurement_row(
    seq: int, when: float, kind: str, measurement: ControllerMeasurement
) -> dict[str, object]:
    """One flat per-event record (shared by serve responses and replay rows).

    Both the serve daemon's event responses and ``repro replay
    --trace-file`` records are built by this one function, so the CI
    serve-smoke diff compares numbers produced by literally the same code.
    """
    return {
        "seq": seq,
        "time": when,
        "kind": kind,
        "mlu": round(measurement.mlu, ROW_DECIMALS),
        "utility": round(measurement.utility, ROW_DECIMALS),
        "routed": round(measurement.routed_volume, ROW_DECIMALS),
        "dropped": round(measurement.dropped_volume, ROW_DECIMALS),
        "connected": measurement.connected,
    }


class ControllerSession:
    """One live controller + optional policy behind a feed/read/subscribe API.

    Parameters
    ----------
    network, demands:
        The base topology and offered traffic (the controller's inputs).
    policy:
        An optional closed-loop policy (:mod:`repro.online.policy`).  It is
        attached immediately; when :meth:`replay` later binds a simulator,
        the policy is re-attached with it so hold/cooldown timers run on
        simulated time.  Without a simulator (direct :meth:`feed`, the
        serve daemon) the policy reacts immediately, cooldown still applied.
    weights, tolerance, max_affected_fraction, verify:
        Passed to :class:`TEController` — these construction knobs live
        *here* now; passing them to ``replay_failure_trace`` directly is
        deprecated.
    key:
        The session's identity for multi-tenant serving and recorded soak
        runs; defaults to ``network.name`` (the way the results store keys
        runs by topology).
    """

    def __init__(
        self,
        network: Network,
        demands: TrafficMatrix,
        policy: SessionPolicy | None = None,
        *,
        weights: WeightsLike | None = None,
        tolerance: float = DEFAULT_TOLERANCE,
        max_affected_fraction: float | None = None,
        verify: bool = False,
        key: str | None = None,
    ) -> None:
        self.network = network
        self.key = key if key is not None else network.name
        self.controller = TEController(
            network,
            demands,
            weights=weights,
            tolerance=tolerance,
            max_affected_fraction=max_affected_fraction,
            verify=verify,
        )
        self.policy = policy
        #: The pre-event measurement (taken once, before any feed).
        self.baseline: ControllerMeasurement = self.controller.measure()
        #: ``(time, kind, measurement)`` samples, events and reoptimizations.
        self.timeline: list[tuple[float, str, ControllerMeasurement]] = []
        #: The controller updates behind the event samples, in feed order.
        self.samples: list[ControllerUpdate] = []
        self._rows: list[dict[str, object]] = []
        self._subscribers: list[SessionSubscriber] = []
        self._simulator: Simulator | None = None
        if policy is not None:
            policy.attach(self.controller, None, on_reoptimize=self._policy_reoptimized)

    # ------------------------------------------------------------------
    # feed
    # ------------------------------------------------------------------
    def feed(self, event: NetworkEvent) -> ControllerMeasurement:
        """Apply one event, sample the result, notify the policy/subscribers.

        Returns the post-event (pre-policy) measurement — the number the
        batch replay puts on its timeline for this event, so a socket feed
        and a simulator replay of the same trace report identical values.
        """
        update = self.controller.apply(event)
        measurement = self._sample(update)
        if self.policy is not None:
            self.policy.observe(self.controller, update, measurement=measurement)
        return measurement

    def feed_many(self, events: Iterable[NetworkEvent]) -> list[ControllerMeasurement]:
        """Feed a batch of events in order."""
        return [self.feed(event) for event in events]

    def _sample(self, update: ControllerUpdate) -> ControllerMeasurement:
        measurement = self.controller.measure()
        self.samples.append(update)
        when, kind = update.event.time, update.event.kind
        self.timeline.append((when, kind, measurement))
        self._rows.append(measurement_row(len(self._rows), when, kind, measurement))
        self._notify(when, kind, measurement)
        return measurement

    def _policy_reoptimized(
        self, controller: TEController, decision: object, measurement: ControllerMeasurement
    ) -> None:
        # The policy hands over its post-installation measurement, so the
        # timeline entry costs no extra measure().
        when = getattr(decision, "time", self._last_time())
        self.timeline.append((when, "reoptimize", measurement))
        self._rows.append(measurement_row(len(self._rows), when, "reoptimize", measurement))
        self._notify(when, "reoptimize", measurement)

    def _notify(self, when: float, kind: str, measurement: ControllerMeasurement) -> None:
        for subscriber in tuple(self._subscribers):
            subscriber(self, when, kind, measurement)

    def _last_time(self) -> float:
        return self.timeline[-1][0] if self.timeline else 0.0

    # ------------------------------------------------------------------
    # subscribe
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: SessionSubscriber) -> Callable[[], None]:
        """Register an update callback; returns its unsubscribe function."""
        self._subscribers.append(subscriber)

        def unsubscribe() -> None:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

        return unsubscribe

    # ------------------------------------------------------------------
    # read state
    # ------------------------------------------------------------------
    def measure(self) -> ControllerMeasurement:
        return self.controller.measure()

    def mlu(self) -> float:
        return self.controller.measure().mlu

    @property
    def processed_events(self) -> int:
        return len(self.samples)

    @property
    def reoptimizations(self) -> int:
        return len(getattr(self.policy, "decisions", ()))

    def event_rows(self) -> list[dict[str, object]]:
        """Flat per-sample records (events and reoptimizations, in order)."""
        return [dict(row) for row in self._rows]

    @property
    def rows(self) -> Sequence[dict[str, object]]:
        """The live per-sample records (read-only view; copy via :meth:`event_rows`)."""
        return self._rows

    def forwarding(self, destination: Node) -> dict[str, object]:
        """The ECMP forwarding state toward ``destination``.

        Per reachable node: the sorted equal-cost next hops and the even
        split fraction each receives.  Raises :class:`EventError` for
        destinations the controller has no demand toward (the session has
        no DAG for them).
        """
        spt = self.controller.spt
        if destination not in spt.destinations:
            raise EventError(f"unknown destination {destination!r} (no demand toward it)")
        state = spt.dag(destination)
        nodes: dict[str, object] = {}
        for node, hops in state.next_hops.items():
            if node == destination or not hops:
                continue
            ordered = sorted(hops, key=str)
            nodes[str(node)] = {
                "next_hops": [str(hop) for hop in ordered],
                "split": round(1.0 / len(ordered), ROW_DECIMALS),
            }
        return {"destination": str(destination), "nodes": nodes}

    def status(self) -> dict[str, object]:
        """A compact live-state summary (the serve ``status`` query)."""
        measurement = self.controller.measure()
        return {
            "key": self.key,
            "topology": self.network.name,
            "nodes": self.network.num_nodes,
            "links": self.network.num_links,
            "events": self.processed_events,
            "reoptimizations": self.reoptimizations,
            "policy": type(self.policy).__name__ if self.policy is not None else None,
            "baseline_mlu": round(self.baseline.mlu, ROW_DECIMALS),
            "mlu": round(measurement.mlu, ROW_DECIMALS),
            "connected": measurement.connected,
            "dropped_pairs": len(measurement.dropped_pairs),
            "failed_links": sorted(
                [str(u), str(v)] for u, v in self.controller.spt.failed_links()
            ),
        }

    def counters(self) -> dict[str, object]:
        """Telemetry-style counters (the serve ``counters`` query)."""
        stats = self.controller.spt.stats
        by_kind: dict[str, int] = {}
        for update in self.samples:
            by_kind[update.event.kind] = by_kind.get(update.event.kind, 0) + 1
        return {
            "events": self.processed_events,
            "events_by_kind": dict(sorted(by_kind.items())),
            "reoptimizations": self.reoptimizations,
            "dspt_incremental_updates": stats.incremental_updates,
            "dspt_full_rebuilds": stats.full_rebuilds,
            "dspt_event_fallbacks": stats.event_fallbacks,
            "dspt_event_fallback_rate": round(stats.event_fallback_rate, ROW_DECIMALS),
        }

    # ------------------------------------------------------------------
    # state dump / restore
    # ------------------------------------------------------------------
    def state_dump(self) -> dict[str, object]:
        """The session's installed state as a deterministic JSON-able dict.

        The ``state`` section holds exactly what :meth:`from_state_dump`
        needs to rebuild an equivalent session — installed weights, current
        capacities, failed links, offered demands — and is byte-stable
        across the round trip (same state, same sorted-key serialisation,
        same bytes).  The ``measured`` section is informational (recomputed
        on restore, equal to float round-off).
        """
        controller = self.controller
        measurement = controller.measure()
        demands = sorted(
            ([str(s), str(t), float(v)] for (s, t), v in controller.demands.items()),
            key=lambda row: (row[0], row[1]),
        )
        return {
            "schema": STATE_DUMP_SCHEMA,
            "key": self.key,
            "topology": self.network.name,
            "state": {
                "weights": [float(w) for w in controller.weights],
                "capacities": [float(c) for c in controller.capacities],
                "failed_links": sorted(
                    [str(u), str(v)] for u, v in controller.spt.failed_links()
                ),
                "demands": demands,
            },
            "measured": {
                "mlu": measurement.mlu,
                "utility": measurement.utility,
                "routed": measurement.routed_volume,
                "dropped": measurement.dropped_volume,
                "connected": measurement.connected,
            },
        }

    @classmethod
    def from_state_dump(
        cls,
        network: Network,
        dump: dict[str, Any],
        *,
        policy: SessionPolicy | None = None,
        tolerance: float = DEFAULT_TOLERANCE,
        max_affected_fraction: float | None = None,
        verify: bool = False,
    ) -> ControllerSession:
        """Rebuild a session from a :meth:`state_dump` payload.

        ``network`` must be the dumped topology (name and shape are
        validated; node names must stringify the way the dump recorded
        them).  The restored session re-dumps with a byte-identical
        ``state`` section.
        """
        if dump.get("schema") != STATE_DUMP_SCHEMA:
            raise EventError(
                f"unsupported state-dump schema {dump.get('schema')!r} "
                f"(supported: {STATE_DUMP_SCHEMA})"
            )
        if dump.get("topology") != network.name:
            raise EventError(
                f"state dump of topology {dump.get('topology')!r} does not match "
                f"network {network.name!r}"
            )
        state = dump["state"]
        by_name = {str(node): node for node in network.nodes}
        try:
            demands = TrafficMatrix(
                {(by_name[s], by_name[t]): v for s, t, v in state["demands"]}
            )
        except KeyError as exc:
            raise EventError(f"state dump names unknown node {exc.args[0]!r}") from None
        if len(state["weights"]) != network.num_links:
            raise EventError(
                f"state dump carries {len(state['weights'])} weights for "
                f"{network.num_links} links"
            )
        session = cls(
            network,
            demands,
            policy=policy,
            weights=np.asarray(state["weights"], dtype=float),
            tolerance=tolerance,
            max_affected_fraction=max_affected_fraction,
            verify=verify,
            key=str(dump.get("key", network.name)),
        )
        links_by_name = {
            (str(link.source), str(link.target)): link for link in network.links
        }
        for link in network.links:
            capacity = float(state["capacities"][link.index])
            if capacity != float(network.capacities[link.index]):
                session.controller.apply(
                    CapacityChange(link=link.endpoints, capacity=capacity)
                )
        for u, v in state["failed_links"]:
            link = links_by_name.get((u, v))
            if link is None:
                raise EventError(f"state dump names unknown link ({u!r}, {v!r})")
            session.controller.apply(LinkFailure(link=link.endpoints))
        # Restoration events went through the controller directly (plumbing,
        # not history): the session timeline stays empty and the baseline is
        # the *restored* state, not the pre-failure network.
        session.baseline = session.controller.measure()
        return session

    # ------------------------------------------------------------------
    # drive
    # ------------------------------------------------------------------
    def replay(
        self,
        events: Sequence[NetworkEvent],
        simulator: Simulator | None = None,
    ) -> tuple[int, float]:
        """Run an event trace to completion on a discrete-event simulator.

        Binds the trace, re-attaches the policy with the simulator clock
        (hold/cooldown run on simulated time), runs, and returns
        ``(processed_events, elapsed_seconds)``.  Samples land on
        :attr:`timeline` exactly as :meth:`feed` would place them.
        """
        simulator = simulator if simulator is not None else Simulator()
        self._simulator = simulator
        policy = self.policy
        if policy is not None:
            policy.attach(
                self.controller, simulator, on_reoptimize=self._policy_reoptimized
            )

        def on_update(controller: TEController, update: ControllerUpdate) -> None:
            measurement = self._sample(update)
            if policy is not None:
                policy.observe(controller, update, measurement=measurement)

        scheduled = self.controller.bind(simulator, events, on_update=on_update)
        stats_before = (
            snapshot_stats(self.controller.spt.stats) if telemetry.enabled() else None
        )
        start = _time.perf_counter()
        with telemetry.span(
            "replay.trace",
            events=scheduled,
            session=self.key,
            policy=type(policy).__name__ if policy is not None else "none",
        ):
            simulator.run()
        elapsed = _time.perf_counter() - start
        if stats_before is not None:
            publish_dspt_counters(stats_before, self.controller.spt.stats)
        return simulator.processed_events, elapsed

    def reoptimize_offline(
        self, optimizer: object | None = None, warm_start: bool = True
    ) -> LocalSearchResult:
        """Run the weight search on a snapshot clone, then install the result.

        The search runs against a :meth:`TEController.from_snapshot` clone
        of the live controller — the serve daemon calls this from a worker
        so the session's own state is only touched for the final (cheap)
        bulk weight installation.  The installation is sampled onto the
        timeline as a ``"reoptimize"`` entry.  Returns the optimizer
        result.
        """
        snapshot = self.controller.snapshot()
        clone = TEController.from_snapshot(self.network, snapshot)
        result = clone.reoptimize(optimizer=optimizer, warm_start=warm_start, install=True)
        self.controller.set_weights(clone.weights.copy())
        measurement = self.controller.measure()
        when = self._last_time()
        self.timeline.append((when, "reoptimize", measurement))
        self._rows.append(measurement_row(len(self._rows), when, "reoptimize", measurement))
        self._notify(when, "reoptimize", measurement)
        return result
