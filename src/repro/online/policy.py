"""Closed-loop reoptimization policies for the simulator binding.

The controller can *absorb* events incrementally and it can *reoptimize*
(warm-started weight search); this module closes the loop between the two.
A policy watches the controller's MLU after every event of a simulated
trace and decides when to spend a reoptimization:

* :class:`ClosedLoopPolicy` — the operational shape: when the MLU stays
  above a target for ``hold`` simulated seconds, run the warm-started
  weight search (:meth:`TEController.reoptimize`) and install the result.
  The hold timer is a real discrete event (scheduled on the simulator when
  the breach starts, cancelled if an intermediate event clears it), so
  "above target for N seconds" means simulated time, not event count.
* :class:`OraclePolicy` — the upper bound the closed loop is measured
  against: reoptimize after *every* event, however small.  Unaffordable in
  practice (one weight search per event) but it bounds how much MLU a
  thresholded policy leaves on the table.

Policies are attached inside :func:`repro.online.replay.replay_failure_trace`
(``policy=...``; the CLI exposes it as ``repro replay --policy``), record a
:class:`PolicyDecision` per triggered reoptimization, and call an optional
``on_reoptimize`` callback so the replay can fold post-reoptimization
measurements into its timeline and per-outage rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..obs import telemetry
from ..simulator.events import EventHandle, Simulator
from .controller import ControllerMeasurement, ControllerUpdate, TEController

#: ``(controller, decision, measurement)`` hook run after a policy installed
#: new weights; ``measurement`` is the post-installation state so callers
#: (e.g. the replay timeline) need not re-measure.
ReoptimizeHook = Callable[
    [TEController, "PolicyDecision", ControllerMeasurement], None
]


@dataclass
class PolicyDecision:
    """One reoptimization a policy decided to spend."""

    time: float
    mlu_before: float
    mlu_after: float
    evaluations: int
    #: What tripped the decision (``"hold-expired"`` or ``"every-event"``).
    trigger: str = "hold-expired"

    @property
    def improved(self) -> bool:
        return self.mlu_after < self.mlu_before


def _default_optimizer_factory():
    """A small deterministic Fortz–Thorup search (warm starts do the work)."""
    from ..protocols.fortz_thorup import FortzThorup

    return FortzThorup(restarts=1, seed=0, max_evaluations=200)


class _PolicyBase:
    """Shared bookkeeping: attachment, decisions, the reoptimize primitive."""

    def __init__(
        self,
        optimizer_factory: Callable[[], object] | None = None,
        warm_start: bool = True,
    ) -> None:
        self.optimizer_factory = optimizer_factory or _default_optimizer_factory
        self.warm_start = warm_start
        self.decisions: list[PolicyDecision] = []
        self._controller: TEController | None = None
        self._simulator: Simulator | None = None
        self._on_reoptimize: ReoptimizeHook | None = None

    def attach(
        self,
        controller: TEController,
        simulator: Simulator | None,
        on_reoptimize: ReoptimizeHook | None = None,
    ) -> _PolicyBase:
        """Bind the policy to one controller + simulator pair (resets state)."""
        self._controller = controller
        self._simulator = simulator
        self._on_reoptimize = on_reoptimize
        self.decisions = []
        return self

    @property
    def reoptimizations(self) -> int:
        return len(self.decisions)

    def observe(
        self,
        controller: TEController,
        update: ControllerUpdate,
        measurement: ControllerMeasurement | None = None,
    ) -> None:
        """Called after every controller event (wire into ``bind(on_update=)``).

        Callers that already sampled the post-event state (the replay does,
        for its timeline) pass it as ``measurement`` so the policy does not
        re-measure; without it the policy measures itself.
        """
        raise NotImplementedError

    def _reoptimize(
        self,
        time: float,
        trigger: str,
        before: ControllerMeasurement | None = None,
    ) -> PolicyDecision:
        controller = self._controller
        assert controller is not None, "policy used before attach()"
        if before is None:
            before = controller.measure()
        with telemetry.span("policy.reoptimize", trigger=trigger):
            result = controller.reoptimize(
                optimizer=self.optimizer_factory(), warm_start=self.warm_start
            )
        after = controller.measure()
        decision = PolicyDecision(
            time=time,
            mlu_before=before.mlu,
            mlu_after=after.mlu,
            evaluations=getattr(result, "evaluations", 0),
            trigger=trigger,
        )
        self.decisions.append(decision)
        if telemetry.enabled():
            telemetry.count("policy.reoptimize", 1, trigger=trigger)
            telemetry.count(
                "policy.reoptimize_improved", 1, improved=decision.improved
            )
        if self._on_reoptimize is not None:
            self._on_reoptimize(controller, decision, after)
        return decision


class ClosedLoopPolicy(_PolicyBase):
    """Reoptimize when the MLU stays above ``target_mlu`` for ``hold`` seconds.

    Parameters
    ----------
    target_mlu:
        The utilization ceiling the operator is willing to sustain.
    hold:
        Seconds the breach must persist before a reoptimization is spent
        (0 reacts to the first breaching event).  Timed on the simulator
        clock with a scheduled check event, so a failure that heals within
        the hold window costs nothing.
    optimizer_factory:
        Zero-argument factory for the weight search (defaults to a small
        deterministic single-restart Fortz–Thorup); a fresh instance per
        decision keeps decisions independent.
    warm_start:
        Warm-start the search from the installed weights (the whole point
        of the online controller; disable only for A/B measurements).
    cooldown:
        Minimum simulated seconds between two reoptimizations, so an event
        storm cannot trigger a weight-search storm.
    """

    def __init__(
        self,
        target_mlu: float,
        hold: float = 0.0,
        optimizer_factory: Callable[[], object] | None = None,
        warm_start: bool = True,
        cooldown: float = 0.0,
    ) -> None:
        if target_mlu <= 0:
            raise ValueError(f"target_mlu must be positive, got {target_mlu}")
        if hold < 0 or cooldown < 0:
            raise ValueError("hold and cooldown must be non-negative")
        super().__init__(optimizer_factory, warm_start)
        self.target_mlu = float(target_mlu)
        self.hold = float(hold)
        self.cooldown = float(cooldown)
        self._pending: EventHandle | None = None
        self._last_reoptimized: float = float("-inf")

    def attach(self, controller, simulator, on_reoptimize=None) -> ClosedLoopPolicy:
        super().attach(controller, simulator, on_reoptimize)
        self._pending = None
        self._last_reoptimized = float("-inf")
        return self

    def observe(
        self,
        controller: TEController,
        update: ControllerUpdate,
        measurement: ControllerMeasurement | None = None,
    ) -> None:
        if measurement is None:
            measurement = controller.measure()
        now = self._simulator.now if self._simulator is not None else update.event.time
        if measurement.mlu > self.target_mlu:
            if self._pending is None:
                self._start_hold(now)
        elif self._pending is not None:
            # The breach healed on its own (e.g. the outage recovered)
            # before the hold expired: no reoptimization spent.
            self._pending.cancel()
            self._pending = None
            telemetry.count("policy.hold", 1, transition="cancelled")

    def _start_hold(self, now: float) -> None:
        telemetry.count("policy.hold", 1, transition="started")
        fire_at = max(now + self.hold, self._last_reoptimized + self.cooldown)
        if self._simulator is None:
            # No simulator (direct event feeding): there is no clock to wait
            # out the hold on, so react at once — but the cooldown still
            # applies, otherwise every breaching event of a storm would run
            # a full weight search.
            if now >= self._last_reoptimized + self.cooldown:
                self._expire(now)
            return
        self._pending = self._simulator.schedule(
            fire_at, lambda sim: self._expire(sim.now), label="policy-hold"
        )

    def _expire(self, now: float) -> None:
        self._pending = None
        controller = self._controller
        if controller is None:
            return
        measurement = controller.measure()
        if measurement.mlu > self.target_mlu:
            telemetry.count("policy.hold", 1, transition="expired-breaching")
            self._reoptimize(now, trigger="hold-expired", before=measurement)
            self._last_reoptimized = now
            # Deliberately no re-arm here: if the reoptimized network still
            # breaches, re-running the (deterministic) search from the same
            # state gains nothing — and self-scheduled re-arms would keep
            # the simulator alive forever on an unattainable target.  The
            # next *network* event that still breaches starts a fresh hold.
        else:
            telemetry.count("policy.hold", 1, transition="expired-cleared")


class OraclePolicy(_PolicyBase):
    """Reoptimize after every event — the clairvoyant baseline.

    One warm-started weight search per event is far too expensive to
    operate, but its worst-case MLU is the floor any thresholded policy
    should be compared against (and its reoptimization count the cost of
    that floor).
    """

    def observe(
        self,
        controller: TEController,
        update: ControllerUpdate,
        measurement: ControllerMeasurement | None = None,
    ) -> None:
        now = self._simulator.now if self._simulator is not None else update.event.time
        self._reoptimize(now, trigger="every-event", before=measurement)


#: Registry used by ``repro replay --policy``; ``None`` means "no policy".
POLICY_FACTORIES = {
    "closed-loop": ClosedLoopPolicy,
    "oracle": OraclePolicy,
}


# Imported for re-export convenience (ControllerMeasurement shows up in the
# annotations of downstream policy consumers).
__all__ = [
    "ClosedLoopPolicy",
    "ControllerMeasurement",
    "OraclePolicy",
    "PolicyDecision",
    "POLICY_FACTORIES",
]
