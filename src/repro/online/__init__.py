"""Online traffic engineering: incremental routing state under event streams.

Everything elsewhere in the library answers *"what does this protocol do on
this instance?"* from scratch.  This package answers *"the network just
changed — what now?"* with bounded, incremental work:

* :mod:`~repro.online.events` — the event vocabulary (link failure and
  recovery, weight/capacity changes, demand updates) plus converters from
  the scenario engine's failure generators to event streams;
* :mod:`~repro.online.dspt` — :class:`DynamicSPT`, Ramalingam–Reps-style
  maintenance of per-destination shortest-path DAGs under single-edge
  changes, with a verified fallback to full Dijkstra;
* :mod:`~repro.online.controller` — :class:`TEController`, the facade that
  pairs the dynamic DAGs with delta-recompiled CSR routing state, cached
  per-destination loads, warm-started reoptimization and a binding onto the
  discrete-event simulator.

The scenario runner's single-link-failure sweeps ride
:func:`sweep_pure_failures` automatically (see
:mod:`repro.scenarios.runner`); ``benchmarks/test_online_controller.py``
tracks the resulting speedup as the ``BENCH_online.json`` artifact.
"""

from .controller import (
    ControllerMeasurement,
    ControllerUpdate,
    TEController,
    sweep_pure_failures,
    sweep_scenarios,
)
from .dspt import DsptStats, DynamicSPT, publish_dspt_counters, snapshot_stats
from .policy import ClosedLoopPolicy, OraclePolicy, PolicyDecision
from .replay import (
    OutageRow,
    ReplayResult,
    outage_rows,
    replay_event_trace,
    replay_failure_trace,
)
from .session import ControllerSession, measurement_row
from .events import (
    WIRE_VERSION,
    CapacityChange,
    DemandUpdate,
    EventError,
    LinkFailure,
    LinkRecovery,
    LinkWeightChange,
    NetworkEvent,
    TraceFormatError,
    failure_events,
    failure_recovery_trace,
    from_dict,
    is_incremental_sweepable,
    is_pure_failure,
    parse_event_line,
    read_event_trace,
    recovery_events,
    scenario_events,
    scenario_failed_edges,
    scenario_revert_events,
    to_dict,
    write_event_trace,
)

__all__ = [
    "CapacityChange",
    "ClosedLoopPolicy",
    "ControllerMeasurement",
    "ControllerSession",
    "ControllerUpdate",
    "DemandUpdate",
    "DsptStats",
    "DynamicSPT",
    "EventError",
    "LinkFailure",
    "LinkRecovery",
    "LinkWeightChange",
    "NetworkEvent",
    "OraclePolicy",
    "OutageRow",
    "PolicyDecision",
    "TraceFormatError",
    "WIRE_VERSION",
    "publish_dspt_counters",
    "snapshot_stats",
    "ReplayResult",
    "replay_event_trace",
    "replay_failure_trace",
    "TEController",
    "failure_events",
    "failure_recovery_trace",
    "from_dict",
    "is_incremental_sweepable",
    "is_pure_failure",
    "measurement_row",
    "outage_rows",
    "parse_event_line",
    "read_event_trace",
    "recovery_events",
    "scenario_events",
    "scenario_failed_edges",
    "scenario_revert_events",
    "sweep_pure_failures",
    "sweep_scenarios",
    "to_dict",
    "write_event_trace",
]
