"""The online TE controller: event-driven routing state with bounded updates.

:class:`TEController` is the facade the rest of the library talks to when a
network *changes* instead of being re-posed from scratch:

* it owns a :class:`~repro.online.dspt.DynamicSPT` (distances + equal-cost
  DAGs per destination, updated incrementally per event);
* each destination's DAG is compiled to CSR (:class:`CompiledDag`) lazily
  and *only recompiled when an event actually touched it* — the
  delta-compilation counterpart of :class:`~repro.routing.CompiledDagSet`;
* per-destination link-load vectors are cached, so after an event only the
  affected destinations are re-propagated — and when the event's footprint
  is known (the :attr:`DynamicSPT.last_event_regions` changed-node region)
  only the *subtree below the affected cone* is re-propagated through the
  cached throughflow state instead of the whole destination DAG;
* the aggregate load vector is maintained incrementally (one subtract/add
  per re-routed destination) instead of being re-summed over every
  destination at each measurement;
* demands that an event disconnects are *dropped* (tracked per pair and in
  volume), mirroring :meth:`Scenario.apply`;
* :meth:`reoptimize` re-runs the Fortz–Thorup weight search warm-started
  from the installed weights and installs the result as one bulk event.

The controller is deliberately ECMP (even splitting over the equal-cost
DAGs, i.e. the OSPF data plane): that is the regime where incremental
shortest paths pay for the whole routing state.  Scenario sweeps use it
through :func:`sweep_scenarios` — the scenario runner's incremental fast
path, covering link/node failures, capacity brown-outs and their mixes
(:func:`sweep_pure_failures` is the validating pure-failure subset); the
discrete-event simulator replays timed traces through
:meth:`TEController.bind`, where :mod:`repro.online.policy` closes the
loop with thresholded warm-started reoptimization.
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from ..core.objectives import normalized_utility
from ..network.demands import Pair, TrafficMatrix
from ..network.graph import Network, Node
from ..network.spt import DEFAULT_TOLERANCE, WeightsLike
from ..obs import telemetry
from ..routing.sparse import SparseRouter
from ..scenarios.scenario import Scenario
from ..simulator.events import Simulator
from .dspt import DynamicSPT, publish_dspt_counters, snapshot_stats
from .events import (
    CapacityChange,
    DemandUpdate,
    EventError,
    LinkFailure,
    LinkRecovery,
    LinkWeightChange,
    NetworkEvent,
    failure_events,
    scenario_events,
)


@dataclass
class ControllerUpdate:
    """One entry of the controller's event log."""

    event: NetworkEvent
    #: Destinations whose DAG changed (and were therefore recompiled).
    affected_destinations: int
    #: Seconds the controller spent applying the event (routing excluded —
    #: loads are recomputed lazily on the next measurement).
    elapsed: float
    sequence: int


@dataclass
class ControllerBaseline:
    """Picklable snapshot of a controller's compiled baseline state.

    Produced by :meth:`TEController.snapshot` and adopted by
    :meth:`TEController.from_snapshot`: the full per-destination SPT/DAG
    state plus the routed load caches, so a parallel sweep worker installs
    the parent's compiled baseline instead of re-running one cold Dijkstra
    per destination.  Tied to a topology by name: adoption validates the
    network has the same name, node count and link count.
    """

    topology: str
    num_nodes: int
    num_links: int
    weights: np.ndarray
    active: np.ndarray
    capacities: np.ndarray
    demands: dict[Pair, float]
    tolerance: float
    max_affected_fraction: float
    #: ``{destination: (dist, next_hops)}`` per-destination DAG state.
    states: dict[Node, tuple[dict[Node, float], dict[Node, list[Node]]]]
    dest_loads: dict[Node, np.ndarray]
    dest_through: dict[Node, dict[Node, float]]
    dest_dropped: dict[Node, dict[Node, float]]


@dataclass
class ControllerMeasurement:
    """A routing-state snapshot taken by :meth:`TEController.measure`."""

    loads: np.ndarray
    mlu: float
    utility: float
    routed_volume: float
    dropped_volume: float
    dropped_pairs: tuple[Pair, ...] = field(default_factory=tuple)

    @property
    def connected(self) -> bool:
        return not self.dropped_pairs

    @property
    def feasible(self) -> bool:
        return bool(np.all(np.isfinite(self.loads)))


class TEController:
    """Maintain ECMP routing state for a live network under an event stream.

    Parameters
    ----------
    network:
        The base topology.  Failures mask links; the link indexing (and the
        shape of every load vector) stays that of the base network, with
        failed links carrying zero load.
    demands:
        The offered traffic matrix (copied; updated by :class:`DemandUpdate`).
    weights:
        Link weights defining the shortest paths; defaults to Cisco InvCap
        derived from the base capacities.
    tolerance:
        ECMP cost tolerance (see :func:`~repro.network.spt.shortest_path_dag`).
    max_affected_fraction, verify:
        Passed to :class:`~repro.online.dspt.DynamicSPT` (fallback threshold
        and the verified-fallback debug mode).

    Examples
    --------
    >>> from repro.topology.backbones import abilene_network
    >>> from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix
    >>> net = abilene_network()
    >>> tm = abilene_traffic_matrix(net, total_volume=50.0, seed=1)
    >>> controller = TEController(net, tm)
    >>> baseline = controller.measure().mlu
    >>> edge = net.links[0].endpoints
    >>> _ = controller.apply(LinkFailure(link=edge))
    >>> degraded = controller.measure().mlu
    >>> _ = controller.apply(LinkRecovery(link=edge))
    >>> abs(controller.measure().mlu - baseline) < 1e-9
    True
    """

    def __init__(
        self,
        network: Network,
        demands: TrafficMatrix,
        weights: WeightsLike | None = None,
        *,
        tolerance: float = DEFAULT_TOLERANCE,
        max_affected_fraction: float | None = None,
        verify: bool = False,
        _defer_build: bool = False,
    ) -> None:
        demands.validate(network)
        self.network = network
        self._demands: dict[Pair, float] = dict(demands.items())
        self.capacities = network.capacities
        if weights is None:
            from ..protocols.ospf import invcap_weights

            weights = invcap_weights(network)
        with telemetry.span(
            "controller.setup",
            topology=network.name,
            destinations=len(demands.destinations()),
        ):
            self.spt = DynamicSPT(
                network,
                weights,
                destinations=() if _defer_build else demands.destinations(),
                tolerance=tolerance,
                max_affected_fraction=max_affected_fraction,
                verify=verify,
            )
        self._dest_loads: dict[Node, np.ndarray] = {}
        self._dest_through: dict[Node, dict[Node, float]] = {}
        self._dest_dropped: dict[Node, dict[Node, float]] = {}
        self._dirty: set[Node] = set(demands.destinations())
        #: Per-dirty-destination changed-node region accumulated since the
        #: last route (``None`` = unknown footprint, full re-route).
        self._dirty_regions: dict[Node, set[Node] | None] = {}
        self._agg_loads: np.ndarray | None = None
        #: Lazy flat adjacency for the delta kernel: node -> [(index, target)].
        self._out_pairs: dict[Node, list[tuple[int, Node]]] | None = None
        self._in_indices: dict[Node, list[int]] | None = None
        self._by_destination: dict[Node, dict[Node, float]] | None = None
        self._router: SparseRouter | None = None
        self._router_dirty: set[Node] = set()
        self.log: list[ControllerUpdate] = []
        self._sequence = 0

    # ------------------------------------------------------------------
    # baseline snapshots (shared across parallel sweep workers)
    # ------------------------------------------------------------------
    def snapshot(self) -> ControllerBaseline:
        """Freeze the current compiled state into a picklable baseline."""
        self._refresh_loads()
        return ControllerBaseline(
            topology=self.network.name,
            num_nodes=self.network.num_nodes,
            num_links=self.network.num_links,
            weights=self.spt.weights,
            active=self.spt.active_mask,
            capacities=self.capacities.copy(),
            demands=dict(self._demands),
            tolerance=self.spt.tolerance,
            max_affected_fraction=self.spt.max_affected_fraction,
            states=self.spt.export_states(),
            dest_loads={d: v.copy() for d, v in self._dest_loads.items()},
            dest_through={d: dict(t) for d, t in self._dest_through.items()},
            dest_dropped={d: dict(t) for d, t in self._dest_dropped.items()},
        )

    @classmethod
    def from_snapshot(
        cls,
        network: Network,
        snapshot: ControllerBaseline,
        *,
        verify: bool = False,
    ) -> TEController:
        """Adopt a :meth:`snapshot` baseline without any cold SPT builds.

        ``network`` must be the same topology the snapshot came from (name
        and shape are validated).  The returned controller is fully warm:
        its load caches match the snapshot and the first measurement costs a
        vector sum, not a route.
        """
        if (
            network.name != snapshot.topology
            or network.num_nodes != snapshot.num_nodes
            or network.num_links != snapshot.num_links
        ):
            raise EventError(
                f"snapshot of topology {snapshot.topology!r} "
                f"({snapshot.num_nodes} nodes / {snapshot.num_links} links) does not "
                f"match network {network.name!r} "
                f"({network.num_nodes} nodes / {network.num_links} links)"
            )
        controller = cls(
            network,
            TrafficMatrix(snapshot.demands),
            weights=snapshot.weights,
            tolerance=snapshot.tolerance,
            max_affected_fraction=snapshot.max_affected_fraction,
            verify=verify,
            _defer_build=True,
        )
        controller.spt.install_states(snapshot.active, snapshot.states)
        controller.capacities = snapshot.capacities.copy()
        controller._dest_loads = {d: v.copy() for d, v in snapshot.dest_loads.items()}
        controller._dest_through = {d: dict(t) for d, t in snapshot.dest_through.items()}
        controller._dest_dropped = {d: dict(t) for d, t in snapshot.dest_dropped.items()}
        controller._dirty = set()
        controller._dirty_regions = {}
        return controller

    # ------------------------------------------------------------------
    # state views
    # ------------------------------------------------------------------
    @property
    def demands(self) -> TrafficMatrix:
        """A copy of the current offered traffic matrix."""
        return TrafficMatrix(self._demands)

    @property
    def weights(self) -> np.ndarray:
        return self.spt.weights

    def active_network(self) -> Network:
        """The current topology as a standalone :class:`Network`.

        Failed links are omitted and current capacities installed — the
        network a from-scratch optimizer (e.g. :meth:`reoptimize`) sees.
        """
        pruned = Network(name=f"{self.network.name}/online")
        for node in self.network.nodes:
            pruned.add_node(node)
        failed = set(self.spt.failed_links())
        for link in self.network.links:
            if link.endpoints in failed:
                continue
            pruned.add_link(
                link.source, link.target, float(self.capacities[link.index]), link.delay
            )
        return pruned

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------
    def apply(self, event: NetworkEvent) -> ControllerUpdate:
        """Consume one event, updating routing state incrementally."""
        start = _time.perf_counter()
        structural = True
        regions: dict[Node, set[Node] | None] | None = None
        if isinstance(event, LinkFailure):
            affected = self.spt.fail_link(*event.link)
            regions = self.spt.last_event_regions
        elif isinstance(event, LinkRecovery):
            affected = self.spt.recover_link(*event.link)
            regions = self.spt.last_event_regions
        elif isinstance(event, LinkWeightChange):
            affected = self.spt.set_weight(*event.link, event.weight)
            regions = self.spt.last_event_regions
        elif isinstance(event, CapacityChange):
            affected, structural = self._apply_capacity(event)
            regions = self.spt.last_event_regions if structural else None
        elif isinstance(event, DemandUpdate):
            affected = self._apply_demand(event)
        elif type(event) is NetworkEvent:
            affected = set()
        else:
            raise EventError(f"unknown event type {type(event).__name__}")
        self._invalidate(affected, structural=structural, regions=regions)
        update = ControllerUpdate(
            event=event,
            affected_destinations=len(affected),
            elapsed=_time.perf_counter() - start,
            sequence=self._sequence,
        )
        self._sequence += 1
        self.log.append(update)
        if telemetry.enabled():
            telemetry.count("controller.event", 1, kind=event.kind)
            telemetry.count("controller.dirtied_destinations", len(affected))
        return update

    def apply_all(self, events: Iterable[NetworkEvent]) -> list[ControllerUpdate]:
        """Consume a batch of events in order."""
        return [self.apply(event) for event in events]

    def _apply_capacity(self, event: CapacityChange) -> tuple[set[Node], bool]:
        """Apply one capacity event; returns ``(affected, structural)``.

        A capacity at or below zero is an explicit link failure — the exact
        semantics :meth:`Scenario.apply` gives a capacity factor of 0, so the
        incremental and cold paths agree on what a dead link means.  The
        link's *configured* capacity stays in :attr:`capacities` (the failed
        link carries zero load, so its utilization is a well-defined 0, never
        0/0); recovery restores it like any other failure.
        """
        if event.capacity <= 0:
            return self.spt.fail_link(*event.link), True
        index = self.network.link_index(*event.link)
        self.capacities = self.capacities.copy()
        self.capacities[index] = float(event.capacity)
        return set(), False  # forwarding state (weights) is untouched

    def _apply_demand(self, event: DemandUpdate) -> set[Node]:
        if event.source == event.target:
            raise EventError("demand source and target must differ")
        if event.volume < 0:
            raise EventError(f"demand volume must be non-negative, got {event.volume}")
        for node in (event.source, event.target):
            if not self.network.has_node(node):
                raise EventError(f"unknown node {node!r}")
        pair = (event.source, event.target)
        if event.volume == 0:
            self._demands.pop(pair, None)
        else:
            self._demands[pair] = float(event.volume)
        self._by_destination = None
        if event.target not in self.spt.destinations:
            self.spt.add_destination(event.target)
            self._router_dirty.add(event.target)
        # Only this destination's entering vector changed; an entering
        # change has no known DAG footprint, so the region is None (full
        # re-route) even though the forwarding state is untouched.
        self._dirty.add(event.target)
        self._dirty_regions[event.target] = None
        return set()

    def _invalidate(
        self,
        affected: set[Node],
        structural: bool = True,
        regions: dict[Node, set[Node] | None] | None = None,
    ) -> None:
        if not structural:
            return
        # Stale load caches are kept (not popped): the delta kernel needs the
        # old loads/throughflow as its starting state, and the aggregate
        # maintenance needs the old vector to subtract.  Regions accumulate
        # across events until the next route: union of sets, None (unknown
        # footprint) absorbing.
        dirty_regions = self._dirty_regions
        for destination in affected:
            self._dirty.add(destination)
            region = regions.get(destination) if regions is not None else None
            if destination in dirty_regions:
                current = dirty_regions[destination]
                if current is None or region is None:
                    dirty_regions[destination] = None
                else:
                    current.update(region)
            else:
                dirty_regions[destination] = set(region) if region is not None else None
        self._router_dirty.update(affected)

    # ------------------------------------------------------------------
    # routing state (lazy, per-destination cached)
    # ------------------------------------------------------------------
    def _route_destination(self, destination: Node, entering: dict[Node, float]) -> None:
        # An event-dirtied DAG is routed once before the next event touches
        # it, so the fused single-pass kernel beats compile-then-propagate;
        # batched multi-matrix work goes through `ensemble_link_loads`,
        # which amortises a delta-recompiled CSR router instead.  When the
        # event's footprint is known (a bounded changed-node region) and the
        # old loads/throughflow are cached, only the subtree below the
        # region is re-propagated.
        region = self._dirty_regions.get(destination)
        if (
            region
            and destination in self._dest_loads
            and destination in self._dest_through
            and self.spt.plateau_free
            and self._route_delta(destination, entering, region)
        ):
            if telemetry.enabled():
                telemetry.count("controller.route", 1, path="delta")
            return
        loads, dropped, through = self.spt.ecmp_link_loads(
            destination, entering, with_through=True
        )
        self._store_destination(destination, loads, dropped, through)
        if telemetry.enabled():
            telemetry.count("controller.route", 1, path="full")

    def _route_delta(
        self, destination: Node, entering: dict[Node, float], region: set[Node]
    ) -> bool:
        """Re-propagate loads only through the subtree below ``region``.

        Seeds a max-distance-first worklist with the structurally changed
        nodes and pushes load *deltas* down the DAG: a popped node recomputes
        every out-link load from its current throughflow (idempotent, so
        re-pushes are safe), applying the difference to the downstream
        throughflow.  Requires a plateau-free state (DAG edges then strictly
        decrease the distance, so the max-distance order is topological up
        to benign re-pushes).  Works on copies and commits only on success;
        returns False — caches untouched — when the worklist exceeds its
        budget or the state looks inconsistent, and the caller falls back to
        the full fused pass.
        """
        spt = self.spt
        state = spt.dag(destination)  # live view sharing the engine's dicts
        dist = state.distances
        next_hops = state.next_hops
        out_pairs, in_indices = self._flat_adjacency()
        # The kernel indexes single elements millions of times across a
        # sweep; a plain list beats ndarray scalar access by a wide margin.
        loads = self._dest_loads[destination].tolist()
        through = dict(self._dest_through[destination])
        dropped = dict(self._dest_dropped.get(destination, {}))

        heap: list[tuple[float, int, Node]] = []
        seq = 0
        for node in region:
            d = dist.get(node)
            if d is None:
                # Newly unreachable: clear its caches, zero its out-loads
                # (deltas flow downstream), drop its entering demand.
                through.pop(node, None)
                if node in entering:
                    dropped[node] = entering[node]
                for index, target in out_pairs[node]:
                    load = loads[index]
                    if load != 0.0:
                        loads[index] = 0.0
                        if target in dist:
                            through[target] = through.get(target, 0.0) - load
                            if target != destination:
                                heapq.heappush(heap, (-dist[target], seq, target))
                                seq += 1
                continue
            if node not in through:
                # Newly reachable: seed its inflow from the current link
                # loads; upstream corrections arrive later as deltas.
                inflow = entering.get(node, 0.0)
                for index in in_indices[node]:
                    inflow += loads[index]
                through[node] = inflow
                dropped.pop(node, None)
            if node != destination:
                heapq.heappush(heap, (-d, seq, node))
                seq += 1

        budget = 4 * len(dist) + 16
        while heap:
            budget -= 1
            if budget < 0:
                return False
            _, _, node = heapq.heappop(heap)
            flow = through.get(node, 0.0)
            hops = next_hops.get(node) or ()
            if flow != 0.0 and not hops:
                return False  # inconsistent; the full pass raises properly
            share = flow / len(hops) if hops else 0.0
            for index, target in out_pairs[node]:
                new_load = share if target in hops else 0.0
                delta = new_load - loads[index]
                if delta == 0.0:
                    continue
                loads[index] = new_load
                if target in dist:
                    through[target] += delta
                    if target != destination:
                        heapq.heappush(heap, (-dist[target], seq, target))
                        seq += 1

        self._store_destination(destination, np.asarray(loads), dropped, through)
        return True

    def _flat_adjacency(
        self,
    ) -> tuple[dict[Node, list[tuple[int, Node]]], dict[Node, list[int]]]:
        """Per-node ``(link index, target)`` pairs / in-link indices, memoized."""
        out_pairs = self._out_pairs
        if out_pairs is None:
            network = self.network
            out_pairs = {
                node: [(link.index, link.target) for link in network.out_links(node)]
                for node in network.nodes
            }
            self._in_indices = {
                node: [link.index for link in network.in_links(node)]
                for node in network.nodes
            }
            self._out_pairs = out_pairs
        return out_pairs, self._in_indices

    def _store_destination(
        self,
        destination: Node,
        loads: np.ndarray,
        dropped: dict[Node, float],
        through: dict[Node, float],
    ) -> None:
        """Install one destination's routed state, maintaining the aggregate."""
        if self._agg_loads is not None:
            old = self._dest_loads.get(destination)
            if old is not None:
                self._agg_loads -= old
            self._agg_loads += loads
        self._dest_loads[destination] = loads
        self._dest_dropped[destination] = dropped
        self._dest_through[destination] = through

    def _refresh_loads(self) -> None:
        by_destination = self._by_destination
        if by_destination is None:
            by_destination = {}
            for (source, target), volume in self._demands.items():
                by_destination.setdefault(target, {})[source] = volume
            self._by_destination = by_destination
        # Destinations that lost all their demand drop out of the caches.
        for destination in list(self._dest_loads):
            if destination not in by_destination:
                if self._agg_loads is not None:
                    self._agg_loads -= self._dest_loads[destination]
                self._dest_loads.pop(destination, None)
                self._dest_dropped.pop(destination, None)
                self._dest_through.pop(destination, None)
        for destination, entering in by_destination.items():
            if destination in self._dirty or destination not in self._dest_loads:
                self._route_destination(destination, entering)
        self._dirty.clear()
        self._dirty_regions.clear()

    def link_loads(self) -> np.ndarray:
        """Aggregate per-link loads of the current routing state.

        Indexed by the *base* network's link indices; failed links carry 0.
        The aggregate is maintained incrementally (one subtract/add per
        re-routed destination) once built; a copy is returned, so callers
        may keep the vector across later events.
        """
        self._refresh_loads()
        if self._agg_loads is None:
            if self._dest_loads:
                self._agg_loads = np.sum(list(self._dest_loads.values()), axis=0)
            else:
                self._agg_loads = np.zeros(self.network.num_links)
        loads = self._agg_loads.copy()
        # Every per-destination vector is exactly 0 on inactive links, but
        # the in-place subtract/add maintenance can leave ~1e-17 residue in
        # the aggregate; failed links must carry an exact 0.
        inactive = ~self.spt.active_mask
        if inactive.any():
            loads[inactive] = 0.0
        return loads

    def measure(self) -> ControllerMeasurement:
        """Loads, MLU, utility and drop accounting in one snapshot."""
        loads = self.link_loads()
        utilization = loads / self.capacities
        dropped_pairs: list[Pair] = []
        dropped_volume = 0.0
        for destination, dropped in self._dest_dropped.items():
            for source, volume in dropped.items():
                dropped_pairs.append((source, destination))
                dropped_volume += volume
        routed = sum(self._demands.values()) - dropped_volume
        return ControllerMeasurement(
            loads=loads,
            mlu=float(np.max(utilization)) if utilization.size else 0.0,
            utility=normalized_utility(utilization) if utilization.size else 0.0,
            routed_volume=float(routed),
            dropped_volume=float(dropped_volume),
            dropped_pairs=tuple(sorted(dropped_pairs, key=repr)),
        )

    def mlu(self) -> float:
        return self.measure().mlu

    def ensemble_link_loads(self, matrices: Sequence[TrafficMatrix]) -> np.ndarray:
        """Batched ECMP loads of a demand ensemble under the *current* state.

        The amortised counterpart of :meth:`measure`: the controller keeps a
        :class:`~repro.routing.SparseRouter` whose compiled CSR state is
        *delta-refreshed* — after an event only the affected destinations
        are handed back to :meth:`SparseRouter.refresh_destination` for
        recompilation — and the whole ensemble rides the stacked batched
        propagation.  Returns ``(len(matrices), num_links)`` loads on the
        base link indexing (failed links carry 0).

        Sources an event disconnected are dropped, matching :meth:`measure`.
        Destinations the controller has not seen yet (absent from the
        constructor demands and every event so far) get dynamic SPT state
        built on first use.
        """
        for matrix in matrices:
            matrix.validate(self.network)
            for destination in matrix.destinations():
                if destination not in self.spt.destinations:
                    self.spt.add_destination(destination)
                    self._router_dirty.add(destination)
        if self._router is None:
            self._router = SparseRouter(
                self.network,
                dags={
                    destination: self.spt.dag(destination)
                    for destination in self.spt.destinations
                },
                mode="split",
                tolerance=self.spt.tolerance,
            )
            self._router_dirty.clear()
        else:
            # DynamicSPT state only ever grows, so every dirty destination
            # still exists and gets its updated DAG handed back.
            for destination in self._router_dirty:
                self._router.refresh_destination(destination, self.spt.dag(destination))
            self._router_dirty.clear()
        # mode="split" with no explicit ratios falls back to an even split
        # per DAG — ECMP semantics with drop (not raise) on unreachable
        # sources, matching the controller's event-driven drop accounting.
        return self._router.link_loads_many(matrices, split_ratios={})

    # ------------------------------------------------------------------
    # warm-started reoptimization
    # ------------------------------------------------------------------
    def reoptimize(
        self,
        optimizer: object | None = None,
        warm_start: bool = True,
        install: bool = True,
    ):
        """Re-run the OSPF weight search on the *current* topology/demands.

        ``optimizer`` defaults to a single-restart
        :class:`~repro.protocols.fortz_thorup.FortzThorup`; with
        ``warm_start`` the search starts from the currently installed
        weights, which after a small perturbation converges in a fraction of
        the cold iterations.  With ``install`` the resulting weights are
        installed as one bulk weight event (full DAG rebuild).

        Returns the optimizer's
        :class:`~repro.protocols.fortz_thorup.LocalSearchResult`.
        """
        from ..protocols.fortz_thorup import FortzThorup

        if optimizer is None:
            optimizer = FortzThorup(restarts=1)
        active = self.active_network()
        demands = self.demands
        with telemetry.span("controller.reoptimize", warm_start=warm_start):
            result = optimizer.optimize(
                active,
                demands,
                warm_start=self.weights[self._active_indices()] if warm_start else None,
            )
        if install:
            # Map the pruned-network weight vector back onto base indices;
            # failed links keep their previous weight (they are masked).
            installed = self.weights
            for link in active.links:
                installed[self.network.link_index(link.source, link.target)] = (
                    result.weights[link.index]
                )
            self.set_weights(installed)
        return result

    def _active_indices(self) -> np.ndarray:
        failed = set(self.spt.failed_links())
        return np.array(
            [link.index for link in self.network.links if link.endpoints not in failed],
            dtype=np.int64,
        )

    def set_weights(self, weights: WeightsLike) -> ControllerUpdate:
        """Install a new weight vector (logged as one bulk event)."""
        start = _time.perf_counter()
        affected = self.spt.set_weights(weights)
        self._invalidate(affected)
        update = ControllerUpdate(
            event=NetworkEvent(),
            affected_destinations=len(affected),
            elapsed=_time.perf_counter() - start,
            sequence=self._sequence,
        )
        self._sequence += 1
        self.log.append(update)
        return update

    # ------------------------------------------------------------------
    # scenario sweeps and simulator binding
    # ------------------------------------------------------------------
    def sweep_scenarios(
        self, scenarios: Sequence[Scenario]
    ) -> list[ControllerMeasurement]:
        """Measure every topology-perturbing scenario by applying and reverting it.

        Generalises the pure-failure sweep to the full topology algebra:
        each scenario is expanded by :func:`scenario_events` into link
        failures (node failures and factor-0 capacities included) and
        capacity changes, applied as incremental events, measured, and
        reverted — so a sweep costs one delta update per perturbed trunk
        instead of a full recompute per scenario, and a capacity-only
        scenario costs no routing work at all (forwarding is untouched;
        only the utilization denominator moves).

        The controller ends in its starting state: the baseline's load
        caches *and capacity vector* are snapshotted once and restored after
        each scenario (links the sweep failed are recovered individually —
        their footprint is all that is ever recompiled).
        """
        # Force the aggregate into existence so every cell's measurement is
        # one subtract/add per re-routed destination, then freeze the whole
        # baseline (loads, drops, throughflow, aggregate, capacities).
        baseline_agg = self.link_loads()
        baseline_loads = dict(self._dest_loads)
        baseline_dropped = dict(self._dest_dropped)
        baseline_through = dict(self._dest_through)
        baseline_capacities = self.capacities
        measurements: list[ControllerMeasurement] = []
        stats_before = snapshot_stats(self.spt.stats) if telemetry.enabled() else None
        with telemetry.span("controller.sweep", scenarios=len(scenarios)):
            for scenario in scenarios:
                with telemetry.span(
                    "controller.cell", scenario=scenario.scenario_id
                ) as cell:
                    events = scenario_events(self.network, scenario)
                    already_down = set(self.spt.failed_links())
                    applied = [
                        event
                        for event in events
                        if not (
                            isinstance(event, LinkFailure)
                            and event.link in already_down
                        )
                    ]
                    updates = self.apply_all(applied)
                    measurements.append(self.measure())
                    # Revert by diffing the failed set (robust even when a
                    # capacity event converted to a failure) and
                    # snapshot-restoring the capacity vector in one assignment.
                    reverts = self.apply_all(
                        [
                            LinkRecovery(link=edge)
                            for edge in self.spt.failed_links()
                            if edge not in already_down
                        ]
                    )
                    self.capacities = baseline_capacities
                    # The recovery returned the DAGs to the baseline; restore
                    # the baseline's load caches instead of re-routing the
                    # roundtrip's footprint on the next measure.  The
                    # aggregate is restored from a fresh copy so per-cell
                    # in-place maintenance never drifts across scenarios.
                    self._dest_loads = dict(baseline_loads)
                    self._dest_dropped = dict(baseline_dropped)
                    self._dest_through = dict(baseline_through)
                    self._agg_loads = baseline_agg.copy()
                    self._dirty.clear()
                    self._dirty_regions.clear()
                    if cell is not None:
                        cell.tags["dirtied"] = str(
                            sum(u.affected_destinations for u in updates + reverts)
                        )
        if stats_before is not None:
            publish_dspt_counters(stats_before, self.spt.stats)
        return measurements

    def sweep_pure_failures(
        self, scenarios: Sequence[Scenario]
    ) -> list[ControllerMeasurement]:
        """Pure link/node-failure subset of :meth:`sweep_scenarios`.

        Kept as the narrow entry point: it validates that every scenario
        really is a pure failure (capacity/demand perturbations raise
        :class:`~repro.online.events.EventError`) before sweeping.
        """
        for scenario in scenarios:
            failure_events(self.network, scenario)  # validates, result unused
        return self.sweep_scenarios(scenarios)

    def bind(
        self,
        simulator: Simulator,
        events: Iterable[NetworkEvent],
        on_update: Callable[["TEController", ControllerUpdate], None] | None = None,
    ) -> int:
        """Schedule an event trace on a discrete-event simulator.

        Each event is applied at its ``time``; ``on_update`` (if given) runs
        after each application — the place to sample :meth:`measure` or
        trigger :meth:`reoptimize`.  Returns the number of scheduled events.
        """
        count = 0
        for event in events:
            def _fire(sim: Simulator, event: NetworkEvent = event) -> None:
                update = self.apply(event)
                if on_update is not None:
                    on_update(self, update)

            simulator.schedule(event.time, _fire, label=event.kind)
            count += 1
        return count


def sweep_scenarios(
    network: Network,
    demands: TrafficMatrix,
    scenarios: Sequence[Scenario],
    weights: WeightsLike | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[ControllerMeasurement]:
    """One-shot incremental scenario sweep (builds a controller, sweeps, done).

    The scenario runner's incremental fast path: equivalent (to float
    round-off on link loads) to applying each scenario from scratch and
    routing with even-split ECMP under ``weights``, but paying one
    incremental update per perturbed trunk — capacity brown-outs included —
    instead of a full per-scenario recompute.
    """
    controller = TEController(network, demands, weights=weights, tolerance=tolerance)
    return controller.sweep_scenarios(scenarios)


def sweep_pure_failures(
    network: Network,
    demands: TrafficMatrix,
    scenarios: Sequence[Scenario],
    weights: WeightsLike | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[ControllerMeasurement]:
    """One-shot incremental failure sweep (pure-failure subset; see
    :func:`sweep_scenarios`)."""
    controller = TEController(network, demands, weights=weights, tolerance=tolerance)
    return controller.sweep_pure_failures(scenarios)
