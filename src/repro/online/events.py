"""Network events: the input language of the online TE controller.

The scenario engine describes *what-if* perturbations declaratively and
applies them from scratch; a running network instead emits a *stream* of
small state changes — a fibre cut, the cut repaired, a LAG member lost, a
demand drifting.  This module defines that stream's vocabulary:

* :class:`LinkFailure` / :class:`LinkRecovery` — a directed link leaves or
  rejoins the topology;
* :class:`LinkWeightChange` — an operator (or an optimizer) reconfigures one
  link weight;
* :class:`CapacityChange` — the usable capacity of a link changes (brown-out
  or upgrade); forwarding state is untouched, only utilization shifts;
* :class:`DemandUpdate` — the offered volume of one source-destination pair
  is set to a new value (0 removes the pair).

Events are frozen dataclasses with a ``time`` stamp so they can be replayed
through the discrete-event :class:`~repro.simulator.events.Simulator` (see
:meth:`~repro.online.controller.TEController.bind`), logged, and compared.
Converters translate the scenario engine's declarative perturbations into
event streams: :func:`scenario_events` expands *any* topology-perturbing
:class:`~repro.scenarios.scenario.Scenario` — link/node failures, capacity
brown-outs, and their combinations — into per-link events
(:func:`failure_events` / :func:`recovery_events` remain the pure-failure
subset), and :func:`failure_recovery_trace` turns a scenario sweep into a
timed fail → measure → repair trace.

The capacity conversion pins the scenario algebra's semantics: duplicate
edges in ``capacity_factors`` merge multiplicatively (exactly as
:meth:`Scenario.apply` merges them), positive scaled capacities become
:class:`CapacityChange` events, and a scaled capacity of zero (or below) is
an explicit :class:`LinkFailure` — the same "factor 0 removes the link"
rule the cold path applies, so the incremental and from-scratch evaluations
of one scenario can never disagree about what a dead link means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..network.graph import Edge, Network, Node
from ..scenarios.scenario import Scenario


class EventError(ValueError):
    """Raised for malformed events (unknown links, negative volumes, ...)."""


@dataclass(frozen=True)
class NetworkEvent:
    """Base class of all online events.

    ``time`` is the (simulated or wall-clock) timestamp; the controller does
    not interpret it, but the simulator binding schedules on it and the
    controller log preserves it.
    """

    time: float = 0.0

    @property
    def kind(self) -> str:
        """Short event-family name used in logs (``"link-failure"`` etc.)."""
        return _KIND_BY_TYPE.get(type(self), type(self).__name__)


@dataclass(frozen=True)
class LinkFailure(NetworkEvent):
    """A directed link goes down (removed from every shortest-path DAG)."""

    link: Edge = ("", "")


@dataclass(frozen=True)
class LinkRecovery(NetworkEvent):
    """A previously failed directed link comes back at its configured weight."""

    link: Edge = ("", "")


@dataclass(frozen=True)
class LinkWeightChange(NetworkEvent):
    """One link's routing weight is reconfigured to ``weight``."""

    link: Edge = ("", "")
    weight: float = 1.0


@dataclass(frozen=True)
class CapacityChange(NetworkEvent):
    """One link's usable capacity becomes ``capacity`` (same demand units)."""

    link: Edge = ("", "")
    capacity: float = 1.0


@dataclass(frozen=True)
class DemandUpdate(NetworkEvent):
    """The offered volume of pair ``(source, target)`` is set to ``volume``."""

    source: Node = ""
    target: Node = ""
    volume: float = 0.0


_KIND_BY_TYPE = {
    NetworkEvent: "noop",
    LinkFailure: "link-failure",
    LinkRecovery: "link-recovery",
    LinkWeightChange: "weight-change",
    CapacityChange: "capacity-change",
    DemandUpdate: "demand-update",
}


# ----------------------------------------------------------------------
# scenario conversion
# ----------------------------------------------------------------------
def is_pure_failure(scenario: Scenario) -> bool:
    """True when ``scenario`` only removes links (directly or via nodes).

    Pure-failure scenarios are exactly the ones the online controller can
    replay as :class:`LinkFailure` events and later revert with
    :class:`LinkRecovery`; capacity factors and demand perturbations need the
    scenario engine's from-scratch ``apply``.
    """
    return bool(
        (scenario.failed_links or scenario.failed_nodes)
        and not scenario.capacity_factors
        and scenario.demand_scale == 1.0
        and not scenario.demand_factors
    )


def scenario_failed_edges(network: Network, scenario: Scenario) -> List[Edge]:
    """The directed links a pure-failure scenario removes, in link order.

    Node failures expand to every incident link (both directions), matching
    :meth:`Scenario.apply`.  Unknown links or nodes raise :class:`EventError`
    so a scenario built for a different topology fails loudly.
    """
    for edge in scenario.failed_links:
        if not network.has_link(*edge):
            raise EventError(f"scenario {scenario.scenario_id!r}: unknown link {edge}")
    for node in scenario.failed_nodes:
        if not network.has_node(node):
            raise EventError(f"scenario {scenario.scenario_id!r}: unknown node {node!r}")
    removed = set(scenario.failed_links)
    dead = set(scenario.failed_nodes)
    return [
        link.endpoints
        for link in network.links
        if link.endpoints in removed or link.source in dead or link.target in dead
    ]


def is_incremental_sweepable(scenario: Scenario) -> bool:
    """True when ``scenario`` perturbs only the topology, not the demands.

    These are exactly the scenarios :func:`scenario_events` can express as a
    stream of :class:`LinkFailure` / :class:`CapacityChange` events and the
    online controller can therefore replay (and revert) incrementally:
    failures, capacity brown-outs, and mixed failure+capacity scenarios.
    Demand perturbations change what enters the network rather than the
    network itself and keep the scenario engine's from-scratch ``apply``.
    """
    return bool(
        (scenario.failed_links or scenario.failed_nodes or scenario.capacity_factors)
        and scenario.demand_scale == 1.0
        and not scenario.demand_factors
    )


def scenario_events(
    network: Network, scenario: Scenario, time: float = 0.0
) -> List[NetworkEvent]:
    """Expand a topology-perturbing scenario into controller events.

    Failed links (and every link incident to a failed node) become
    :class:`LinkFailure` events; capacity factors become
    :class:`CapacityChange` events carrying the *scaled* capacity
    (``link.capacity * merged factor``) — except factors whose scaled
    capacity is zero or below, which become :class:`LinkFailure` too,
    matching :meth:`Scenario.apply`'s cold semantics exactly.  A link both
    failed and capacity-scaled just fails (the cold path removes it before
    looking at factors).  Events come out in the base network's link order,
    failures first, so applying them is deterministic.

    Raises :class:`EventError` for demand-perturbing scenarios and for
    links/nodes the network does not have (a scenario built for a different
    topology must fail loudly, not half-apply).
    """
    if not is_incremental_sweepable(scenario):
        raise EventError(
            f"scenario {scenario.scenario_id!r} perturbs demands (or nothing): "
            "not expressible as link events"
        )
    # Scenario.merged_capacity_factors is the single source of truth for
    # duplicate-edge composition, shared with the cold `apply` path.
    factors = scenario.merged_capacity_factors()
    for edge in factors:
        if not network.has_link(*edge):
            raise EventError(f"scenario {scenario.scenario_id!r}: unknown link {edge}")
    failed = set(scenario_failed_edges(network, scenario))
    failures: List[NetworkEvent] = []
    capacities: List[NetworkEvent] = []
    for link in network.links:
        edge = link.endpoints
        if edge in failed:
            failures.append(LinkFailure(time=time, link=edge))
            continue
        if edge not in factors:
            continue
        scaled = link.capacity * factors[edge]
        if scaled <= 0:
            # Factor-0 brown-outs are failures on both evaluation paths.
            failures.append(LinkFailure(time=time, link=edge))
        else:
            capacities.append(CapacityChange(time=time, link=edge, capacity=scaled))
    return failures + capacities


def scenario_revert_events(
    network: Network, events: Sequence[NetworkEvent], time: float = 0.0
) -> List[NetworkEvent]:
    """The events that undo an applied :func:`scenario_events` stream.

    Failures revert to :class:`LinkRecovery`; capacity changes revert to a
    :class:`CapacityChange` back to the base network's configured capacity.
    """
    reverted: List[NetworkEvent] = []
    for event in events:
        if isinstance(event, LinkFailure):
            reverted.append(LinkRecovery(time=time, link=event.link))
        elif isinstance(event, CapacityChange):
            index = network.link_index(*event.link)
            reverted.append(
                CapacityChange(
                    time=time,
                    link=event.link,
                    capacity=float(network.capacities[index]),
                )
            )
        else:
            raise EventError(f"cannot revert event kind {event.kind!r}")
    return reverted


def failure_events(
    network: Network, scenario: Scenario, time: float = 0.0
) -> List[LinkFailure]:
    """Expand a pure-failure scenario into per-link :class:`LinkFailure` events."""
    if not is_pure_failure(scenario):
        raise EventError(
            f"scenario {scenario.scenario_id!r} is not a pure link/node failure"
        )
    return [
        LinkFailure(time=time, link=edge)
        for edge in scenario_failed_edges(network, scenario)
    ]


def recovery_events(
    network: Network, scenario: Scenario, time: float = 0.0
) -> List[LinkRecovery]:
    """The :class:`LinkRecovery` events that revert :func:`failure_events`."""
    if not is_pure_failure(scenario):
        raise EventError(
            f"scenario {scenario.scenario_id!r} is not a pure link/node failure"
        )
    return [
        LinkRecovery(time=time, link=edge)
        for edge in scenario_failed_edges(network, scenario)
    ]


def failure_recovery_trace(
    network: Network,
    scenarios: Sequence[Scenario],
    period: float = 10.0,
    outage: float = 5.0,
    start: float = 0.0,
) -> List[NetworkEvent]:
    """A timed fail → repair trace cycling through ``scenarios``.

    Scenario ``i`` fails at ``start + i * period`` and recovers ``outage``
    later, so at most one scenario is down at a time when
    ``outage <= period``.  The trace is what the controller's simulator
    binding replays (see ``examples/online_controller.py``).
    """
    if period <= 0 or outage <= 0:
        raise EventError("period and outage must be positive")
    trace: List[NetworkEvent] = []
    for index, scenario in enumerate(scenarios):
        down = start + index * period
        trace.extend(failure_events(network, scenario, time=down))
        trace.extend(recovery_events(network, scenario, time=down + outage))
    return trace
