"""Network events: the input language of the online TE controller.

The scenario engine describes *what-if* perturbations declaratively and
applies them from scratch; a running network instead emits a *stream* of
small state changes — a fibre cut, the cut repaired, a LAG member lost, a
demand drifting.  This module defines that stream's vocabulary:

* :class:`LinkFailure` / :class:`LinkRecovery` — a directed link leaves or
  rejoins the topology;
* :class:`LinkWeightChange` — an operator (or an optimizer) reconfigures one
  link weight;
* :class:`CapacityChange` — the usable capacity of a link changes (brown-out
  or upgrade); forwarding state is untouched, only utilization shifts;
* :class:`DemandUpdate` — the offered volume of one source-destination pair
  is set to a new value (0 removes the pair).

Events are frozen dataclasses with a ``time`` stamp so they can be replayed
through the discrete-event :class:`~repro.simulator.events.Simulator` (see
:meth:`~repro.online.controller.TEController.bind`), logged, and compared.
Converters translate the existing failure generators into event streams:
:func:`failure_events` / :func:`recovery_events` expand a pure-failure
:class:`~repro.scenarios.scenario.Scenario` (link *and* node failures) into
per-link events, and :func:`failure_recovery_trace` turns a scenario sweep
into a timed fail → measure → repair trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..network.graph import Edge, Network, Node
from ..scenarios.scenario import Scenario


class EventError(ValueError):
    """Raised for malformed events (unknown links, negative volumes, ...)."""


@dataclass(frozen=True)
class NetworkEvent:
    """Base class of all online events.

    ``time`` is the (simulated or wall-clock) timestamp; the controller does
    not interpret it, but the simulator binding schedules on it and the
    controller log preserves it.
    """

    time: float = 0.0

    @property
    def kind(self) -> str:
        """Short event-family name used in logs (``"link-failure"`` etc.)."""
        return _KIND_BY_TYPE.get(type(self), type(self).__name__)


@dataclass(frozen=True)
class LinkFailure(NetworkEvent):
    """A directed link goes down (removed from every shortest-path DAG)."""

    link: Edge = ("", "")


@dataclass(frozen=True)
class LinkRecovery(NetworkEvent):
    """A previously failed directed link comes back at its configured weight."""

    link: Edge = ("", "")


@dataclass(frozen=True)
class LinkWeightChange(NetworkEvent):
    """One link's routing weight is reconfigured to ``weight``."""

    link: Edge = ("", "")
    weight: float = 1.0


@dataclass(frozen=True)
class CapacityChange(NetworkEvent):
    """One link's usable capacity becomes ``capacity`` (same demand units)."""

    link: Edge = ("", "")
    capacity: float = 1.0


@dataclass(frozen=True)
class DemandUpdate(NetworkEvent):
    """The offered volume of pair ``(source, target)`` is set to ``volume``."""

    source: Node = ""
    target: Node = ""
    volume: float = 0.0


_KIND_BY_TYPE = {
    NetworkEvent: "noop",
    LinkFailure: "link-failure",
    LinkRecovery: "link-recovery",
    LinkWeightChange: "weight-change",
    CapacityChange: "capacity-change",
    DemandUpdate: "demand-update",
}


# ----------------------------------------------------------------------
# scenario conversion
# ----------------------------------------------------------------------
def is_pure_failure(scenario: Scenario) -> bool:
    """True when ``scenario`` only removes links (directly or via nodes).

    Pure-failure scenarios are exactly the ones the online controller can
    replay as :class:`LinkFailure` events and later revert with
    :class:`LinkRecovery`; capacity factors and demand perturbations need the
    scenario engine's from-scratch ``apply``.
    """
    return bool(
        (scenario.failed_links or scenario.failed_nodes)
        and not scenario.capacity_factors
        and scenario.demand_scale == 1.0
        and not scenario.demand_factors
    )


def scenario_failed_edges(network: Network, scenario: Scenario) -> List[Edge]:
    """The directed links a pure-failure scenario removes, in link order.

    Node failures expand to every incident link (both directions), matching
    :meth:`Scenario.apply`.  Unknown links or nodes raise :class:`EventError`
    so a scenario built for a different topology fails loudly.
    """
    for edge in scenario.failed_links:
        if not network.has_link(*edge):
            raise EventError(f"scenario {scenario.scenario_id!r}: unknown link {edge}")
    for node in scenario.failed_nodes:
        if not network.has_node(node):
            raise EventError(f"scenario {scenario.scenario_id!r}: unknown node {node!r}")
    removed = set(scenario.failed_links)
    dead = set(scenario.failed_nodes)
    return [
        link.endpoints
        for link in network.links
        if link.endpoints in removed or link.source in dead or link.target in dead
    ]


def failure_events(
    network: Network, scenario: Scenario, time: float = 0.0
) -> List[LinkFailure]:
    """Expand a pure-failure scenario into per-link :class:`LinkFailure` events."""
    if not is_pure_failure(scenario):
        raise EventError(
            f"scenario {scenario.scenario_id!r} is not a pure link/node failure"
        )
    return [
        LinkFailure(time=time, link=edge)
        for edge in scenario_failed_edges(network, scenario)
    ]


def recovery_events(
    network: Network, scenario: Scenario, time: float = 0.0
) -> List[LinkRecovery]:
    """The :class:`LinkRecovery` events that revert :func:`failure_events`."""
    if not is_pure_failure(scenario):
        raise EventError(
            f"scenario {scenario.scenario_id!r} is not a pure link/node failure"
        )
    return [
        LinkRecovery(time=time, link=edge)
        for edge in scenario_failed_edges(network, scenario)
    ]


def failure_recovery_trace(
    network: Network,
    scenarios: Sequence[Scenario],
    period: float = 10.0,
    outage: float = 5.0,
    start: float = 0.0,
) -> List[NetworkEvent]:
    """A timed fail → repair trace cycling through ``scenarios``.

    Scenario ``i`` fails at ``start + i * period`` and recovers ``outage``
    later, so at most one scenario is down at a time when
    ``outage <= period``.  The trace is what the controller's simulator
    binding replays (see ``examples/online_controller.py``).
    """
    if period <= 0 or outage <= 0:
        raise EventError("period and outage must be positive")
    trace: List[NetworkEvent] = []
    for index, scenario in enumerate(scenarios):
        down = start + index * period
        trace.extend(failure_events(network, scenario, time=down))
        trace.extend(recovery_events(network, scenario, time=down + outage))
    return trace
