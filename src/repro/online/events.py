"""Network events: the input language of the online TE controller.

The scenario engine describes *what-if* perturbations declaratively and
applies them from scratch; a running network instead emits a *stream* of
small state changes — a fibre cut, the cut repaired, a LAG member lost, a
demand drifting.  This module defines that stream's vocabulary:

* :class:`LinkFailure` / :class:`LinkRecovery` — a directed link leaves or
  rejoins the topology;
* :class:`LinkWeightChange` — an operator (or an optimizer) reconfigures one
  link weight;
* :class:`CapacityChange` — the usable capacity of a link changes (brown-out
  or upgrade); forwarding state is untouched, only utilization shifts;
* :class:`DemandUpdate` — the offered volume of one source-destination pair
  is set to a new value (0 removes the pair).

Events are frozen dataclasses with a ``time`` stamp so they can be replayed
through the discrete-event :class:`~repro.simulator.events.Simulator` (see
:meth:`~repro.online.controller.TEController.bind`), logged, and compared.
Converters translate the scenario engine's declarative perturbations into
event streams: :func:`scenario_events` expands *any* topology-perturbing
:class:`~repro.scenarios.scenario.Scenario` — link/node failures, capacity
brown-outs, and their combinations — into per-link events
(:func:`failure_events` / :func:`recovery_events` remain the pure-failure
subset), and :func:`failure_recovery_trace` turns a scenario sweep into a
timed fail → measure → repair trace.

The capacity conversion pins the scenario algebra's semantics: duplicate
edges in ``capacity_factors`` merge multiplicatively (exactly as
:meth:`Scenario.apply` merges them), positive scaled capacities become
:class:`CapacityChange` events, and a scaled capacity of zero (or below) is
an explicit :class:`LinkFailure` — the same "factor 0 removes the link"
rule the cold path applies, so the incremental and from-scratch evaluations
of one scenario can never disagree about what a dead link means.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Sequence

from ..network.graph import Edge, Network, Node
from ..scenarios.scenario import Scenario

#: Version of the JSON event/frame vocabulary (trace files and the serve
#: protocol share it; see :func:`to_dict` / :func:`from_dict`).
WIRE_VERSION = 1


class EventError(ValueError):
    """Raised for malformed events (unknown links, negative volumes, ...)."""


class TraceFormatError(EventError):
    """A JSON-lines event trace contained an unparseable line.

    Always carries the source and 1-based line number (``trace.jsonl:3:
    ...``) so malformed input is a *hard, locatable* error — never a
    silently skipped line — on both the batch replay and serve ingest
    paths.
    """


@dataclass(frozen=True)
class NetworkEvent:
    """Base class of all online events.

    ``time`` is the (simulated or wall-clock) timestamp; the controller does
    not interpret it, but the simulator binding schedules on it and the
    controller log preserves it.
    """

    time: float = 0.0

    @property
    def kind(self) -> str:
        """Short event-family name used in logs (``"link-failure"`` etc.)."""
        return _KIND_BY_TYPE.get(type(self), type(self).__name__)


@dataclass(frozen=True)
class LinkFailure(NetworkEvent):
    """A directed link goes down (removed from every shortest-path DAG)."""

    link: Edge = ("", "")


@dataclass(frozen=True)
class LinkRecovery(NetworkEvent):
    """A previously failed directed link comes back at its configured weight."""

    link: Edge = ("", "")


@dataclass(frozen=True)
class LinkWeightChange(NetworkEvent):
    """One link's routing weight is reconfigured to ``weight``."""

    link: Edge = ("", "")
    weight: float = 1.0


@dataclass(frozen=True)
class CapacityChange(NetworkEvent):
    """One link's usable capacity becomes ``capacity`` (same demand units)."""

    link: Edge = ("", "")
    capacity: float = 1.0


@dataclass(frozen=True)
class DemandUpdate(NetworkEvent):
    """The offered volume of pair ``(source, target)`` is set to ``volume``."""

    source: Node = ""
    target: Node = ""
    volume: float = 0.0


_KIND_BY_TYPE = {
    NetworkEvent: "noop",
    LinkFailure: "link-failure",
    LinkRecovery: "link-recovery",
    LinkWeightChange: "weight-change",
    CapacityChange: "capacity-change",
    DemandUpdate: "demand-update",
}

_TYPE_BY_KIND = {kind: type_ for type_, kind in _KIND_BY_TYPE.items()}


# ----------------------------------------------------------------------
# wire schema (version 1): one JSON object per event
# ----------------------------------------------------------------------
#: Per-kind payload fields beyond ``v``/``event``/``time``.
_WIRE_FIELDS = {
    "noop": (),
    "link-failure": ("link",),
    "link-recovery": ("link",),
    "weight-change": ("link", "weight"),
    "capacity-change": ("link", "capacity"),
    "demand-update": ("source", "target", "volume"),
}


def to_dict(event: NetworkEvent) -> dict[str, object]:
    """Serialise one event as its wire-schema (version 1) JSON object.

    The inverse of :func:`from_dict`; the same vocabulary is used for
    JSON-lines trace files (``repro replay --export-trace``) and the event
    frames of the serve protocol (:mod:`repro.serve.wire`), so every
    producer and consumer of events shares one constructor pair.
    """
    kind = event.kind
    if kind not in _WIRE_FIELDS:
        raise EventError(f"cannot serialise event kind {kind!r}")
    payload: dict[str, object] = {"v": WIRE_VERSION, "event": kind, "time": event.time}
    for field in _WIRE_FIELDS[kind]:
        value = getattr(event, field)
        payload[field] = list(value) if field == "link" else value
    return payload


def _wire_node(payload: dict[str, object], field: str, context: str) -> Node:
    value = payload[field]
    if not isinstance(value, (str, int)) or isinstance(value, bool):
        raise EventError(f"{context}: field {field!r} must be a node name, got {value!r}")
    return value


def _wire_number(payload: dict[str, object], field: str, context: str) -> float:
    value = payload[field]
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise EventError(f"{context}: field {field!r} must be a number, got {value!r}")
    return float(value)


def from_dict(payload: object) -> NetworkEvent:
    """Build the event a wire-schema JSON object describes.

    Validation is strict — unknown kinds, missing or extra fields, and
    non-numeric values all raise :class:`EventError` — because this is the
    single parse point for trace files and the live serve socket: bad
    input must fail loudly at the boundary, never half-apply.
    """
    if not isinstance(payload, dict):
        raise EventError(f"event payload must be a JSON object, got {type(payload).__name__}")
    version = payload.get("v", WIRE_VERSION)
    if version != WIRE_VERSION:
        raise EventError(f"unsupported wire version {version!r} (supported: {WIRE_VERSION})")
    kind = payload.get("event")
    if kind not in _WIRE_FIELDS:
        known = ", ".join(sorted(_WIRE_FIELDS))
        raise EventError(f"unknown event kind {kind!r} (known: {known})")
    context = f"event {kind!r}"
    allowed = {"v", "event", "time", *_WIRE_FIELDS[kind]}
    extra = sorted(set(payload) - allowed)
    if extra:
        raise EventError(f"{context}: unexpected field(s) {', '.join(map(repr, extra))}")
    missing = sorted(set(_WIRE_FIELDS[kind]) - set(payload))
    if missing:
        raise EventError(f"{context}: missing field(s) {', '.join(map(repr, missing))}")
    kwargs: dict[str, object] = {}
    if "time" in payload:
        kwargs["time"] = _wire_number(payload, "time", context)
    for field in _WIRE_FIELDS[kind]:
        if field == "link":
            link = payload["link"]
            if (
                not isinstance(link, (list, tuple))
                or len(link) != 2
                or any(not isinstance(end, (str, int)) or isinstance(end, bool) for end in link)
            ):
                raise EventError(f"{context}: field 'link' must be a [source, target] pair")
            kwargs["link"] = (link[0], link[1])
        elif field in ("source", "target"):
            kwargs[field] = _wire_node(payload, field, context)
        else:
            kwargs[field] = _wire_number(payload, field, context)
    return _TYPE_BY_KIND[kind](**kwargs)


def parse_event_line(line: str, lineno: int, source: str = "<trace>") -> NetworkEvent:
    """Parse one JSON-lines trace line, locating errors as ``source:lineno``."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{source}:{lineno}: invalid JSON: {exc.msg}") from None
    try:
        return from_dict(payload)
    except EventError as exc:
        raise TraceFormatError(f"{source}:{lineno}: {exc}") from None


def read_event_trace(path: str | Path) -> list[NetworkEvent]:
    """Read a JSON-lines event trace, failing hard on any malformed line.

    Blank lines are allowed (and skipped); everything else must parse as a
    wire-schema event or the whole read raises :class:`TraceFormatError`
    with the offending line number.  Shared by ``repro replay
    --trace-file`` and ``repro serve --replay-trace`` so both ingest paths
    reject the same inputs identically.
    """
    path = Path(path)
    events: list[NetworkEvent] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            events.append(parse_event_line(line, lineno, source=str(path)))
    if not events:
        raise TraceFormatError(f"{path}:1: trace contains no events")
    return events


def write_event_trace(path: str | Path, events: Iterable[NetworkEvent]) -> int:
    """Write events as a JSON-lines trace (sorted keys: byte-stable); returns the line count."""
    lines = [json.dumps(to_dict(event), sort_keys=True) for event in events]
    Path(path).write_text("".join(line + "\n" for line in lines), encoding="utf-8")
    return len(lines)


# ----------------------------------------------------------------------
# scenario conversion
# ----------------------------------------------------------------------
def is_pure_failure(scenario: Scenario) -> bool:
    """True when ``scenario`` only removes links (directly or via nodes).

    Pure-failure scenarios are exactly the ones the online controller can
    replay as :class:`LinkFailure` events and later revert with
    :class:`LinkRecovery`; capacity factors and demand perturbations need the
    scenario engine's from-scratch ``apply``.
    """
    return bool(
        (scenario.failed_links or scenario.failed_nodes)
        and not scenario.capacity_factors
        and scenario.demand_scale == 1.0
        and not scenario.demand_factors
    )


def scenario_failed_edges(network: Network, scenario: Scenario) -> list[Edge]:
    """The directed links a pure-failure scenario removes, in link order.

    Node failures expand to every incident link (both directions), matching
    :meth:`Scenario.apply`.  Unknown links or nodes raise :class:`EventError`
    so a scenario built for a different topology fails loudly.
    """
    for edge in scenario.failed_links:
        if not network.has_link(*edge):
            raise EventError(f"scenario {scenario.scenario_id!r}: unknown link {edge}")
    for node in scenario.failed_nodes:
        if not network.has_node(node):
            raise EventError(f"scenario {scenario.scenario_id!r}: unknown node {node!r}")
    removed = set(scenario.failed_links)
    dead = set(scenario.failed_nodes)
    return [
        link.endpoints
        for link in network.links
        if link.endpoints in removed or link.source in dead or link.target in dead
    ]


def is_incremental_sweepable(scenario: Scenario) -> bool:
    """True when ``scenario`` perturbs only the topology, not the demands.

    These are exactly the scenarios :func:`scenario_events` can express as a
    stream of :class:`LinkFailure` / :class:`CapacityChange` events and the
    online controller can therefore replay (and revert) incrementally:
    failures, capacity brown-outs, and mixed failure+capacity scenarios.
    Demand perturbations change what enters the network rather than the
    network itself and keep the scenario engine's from-scratch ``apply``.
    """
    return bool(
        (scenario.failed_links or scenario.failed_nodes or scenario.capacity_factors)
        and scenario.demand_scale == 1.0
        and not scenario.demand_factors
    )


def scenario_events(
    network: Network, scenario: Scenario, time: float = 0.0
) -> list[NetworkEvent]:
    """Expand a topology-perturbing scenario into controller events.

    Failed links (and every link incident to a failed node) become
    :class:`LinkFailure` events; capacity factors become
    :class:`CapacityChange` events carrying the *scaled* capacity
    (``link.capacity * merged factor``) — except factors whose scaled
    capacity is zero or below, which become :class:`LinkFailure` too,
    matching :meth:`Scenario.apply`'s cold semantics exactly.  A link both
    failed and capacity-scaled just fails (the cold path removes it before
    looking at factors).  Events come out in the base network's link order,
    failures first, so applying them is deterministic.

    Raises :class:`EventError` for demand-perturbing scenarios and for
    links/nodes the network does not have (a scenario built for a different
    topology must fail loudly, not half-apply).
    """
    if not is_incremental_sweepable(scenario):
        raise EventError(
            f"scenario {scenario.scenario_id!r} perturbs demands (or nothing): "
            "not expressible as link events"
        )
    # Scenario.merged_capacity_factors is the single source of truth for
    # duplicate-edge composition, shared with the cold `apply` path.
    factors = scenario.merged_capacity_factors()
    for edge in factors:
        if not network.has_link(*edge):
            raise EventError(f"scenario {scenario.scenario_id!r}: unknown link {edge}")
    failed = set(scenario_failed_edges(network, scenario))
    failures: list[NetworkEvent] = []
    capacities: list[NetworkEvent] = []
    for link in network.links:
        edge = link.endpoints
        if edge in failed:
            failures.append(LinkFailure(time=time, link=edge))
            continue
        if edge not in factors:
            continue
        scaled = link.capacity * factors[edge]
        if scaled <= 0:
            # Factor-0 brown-outs are failures on both evaluation paths.
            failures.append(LinkFailure(time=time, link=edge))
        else:
            capacities.append(CapacityChange(time=time, link=edge, capacity=scaled))
    return failures + capacities


def scenario_revert_events(
    network: Network, events: Sequence[NetworkEvent], time: float = 0.0
) -> list[NetworkEvent]:
    """The events that undo an applied :func:`scenario_events` stream.

    Failures revert to :class:`LinkRecovery`; capacity changes revert to a
    :class:`CapacityChange` back to the base network's configured capacity.
    """
    reverted: list[NetworkEvent] = []
    for event in events:
        if isinstance(event, LinkFailure):
            reverted.append(LinkRecovery(time=time, link=event.link))
        elif isinstance(event, CapacityChange):
            index = network.link_index(*event.link)
            reverted.append(
                CapacityChange(
                    time=time,
                    link=event.link,
                    capacity=float(network.capacities[index]),
                )
            )
        else:
            raise EventError(f"cannot revert event kind {event.kind!r}")
    return reverted


def failure_events(
    network: Network, scenario: Scenario, time: float = 0.0
) -> list[LinkFailure]:
    """Expand a pure-failure scenario into per-link :class:`LinkFailure` events."""
    if not is_pure_failure(scenario):
        raise EventError(
            f"scenario {scenario.scenario_id!r} is not a pure link/node failure"
        )
    return [
        LinkFailure(time=time, link=edge)
        for edge in scenario_failed_edges(network, scenario)
    ]


def recovery_events(
    network: Network, scenario: Scenario, time: float = 0.0
) -> list[LinkRecovery]:
    """The :class:`LinkRecovery` events that revert :func:`failure_events`."""
    if not is_pure_failure(scenario):
        raise EventError(
            f"scenario {scenario.scenario_id!r} is not a pure link/node failure"
        )
    return [
        LinkRecovery(time=time, link=edge)
        for edge in scenario_failed_edges(network, scenario)
    ]


def failure_recovery_trace(
    network: Network,
    scenarios: Sequence[Scenario],
    period: float = 10.0,
    outage: float = 5.0,
    start: float = 0.0,
) -> list[NetworkEvent]:
    """A timed fail → repair trace cycling through ``scenarios``.

    Scenario ``i`` fails at ``start + i * period`` and recovers ``outage``
    later, so at most one scenario is down at a time when
    ``outage <= period``.  The trace is what the controller's simulator
    binding replays (see ``examples/online_controller.py``).
    """
    if period <= 0 or outage <= 0:
        raise EventError("period and outage must be positive")
    trace: list[NetworkEvent] = []
    for index, scenario in enumerate(scenarios):
        down = start + index * period
        trace.extend(failure_events(network, scenario, time=down))
        trace.extend(recovery_events(network, scenario, time=down + outage))
    return trace
