"""Reusable TE-controller trace replay (the engine behind ``repro replay``).

``examples/online_controller.py`` demonstrated the online view — a
:class:`~repro.online.TEController` consuming a timed failure/recovery
trace through the discrete-event simulator — as a script.  This module
extracts that replay as a library function so the example, the ``repro``
CLI and the results store all drive the same code path: build the trace,
bind the controller, sample a measurement after every event, and summarise
one row per outage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..network.demands import TrafficMatrix
from ..network.graph import Network
from ..scenarios.scenario import Scenario
from ..simulator.events import Simulator
from .controller import ControllerMeasurement, ControllerUpdate, TEController
from .events import failure_recovery_trace


@dataclass
class OutageRow:
    """The steady-state measurement of one outage in the trace."""

    scenario_id: str
    time: float
    mlu: float
    utility: float
    routed_volume: float
    dropped_volume: float
    connected: bool

    def as_row(self) -> Dict[str, object]:
        """A flat record for tables and the results store."""
        return {
            "scenario": self.scenario_id,
            "time": self.time,
            "mlu": round(self.mlu, 6),
            "utility": round(self.utility, 6),
            "routed": round(self.routed_volume, 6),
            "dropped": round(self.dropped_volume, 6),
            "connected": self.connected,
        }


@dataclass
class ReplayResult:
    """Everything a failure/recovery trace replay produced."""

    controller: TEController
    baseline: ControllerMeasurement
    final: ControllerMeasurement
    outages: List[OutageRow]
    timeline: List[Tuple[float, str, ControllerMeasurement]]
    processed_events: int
    elapsed: float = 0.0
    samples: List[ControllerUpdate] = field(default_factory=list)

    @property
    def worst(self) -> Optional[OutageRow]:
        """The outage with the highest MLU (``None`` on an empty trace)."""
        return max(self.outages, key=lambda row: row.mlu, default=None)


def replay_failure_trace(
    network: Network,
    demands: TrafficMatrix,
    scenarios: Sequence[Scenario],
    period: float = 600.0,
    outage: float = 300.0,
) -> ReplayResult:
    """Replay ``scenarios`` as a timed fail → repair trace and sample MLU.

    Each scenario fails at ``i * period`` and heals ``outage`` seconds
    later; the controller absorbs every directed-link event incrementally
    and the MLU timeline is sampled after each one.  The per-outage rows
    report the measurement after the *last* failure event of each outage
    (a trunk cut arrives as two directed-link events).
    """
    trace = failure_recovery_trace(network, scenarios, period=period, outage=outage)
    controller = TEController(network, demands)
    baseline = controller.measure()

    timeline: List[Tuple[float, str, ControllerMeasurement]] = []
    updates: List[ControllerUpdate] = []

    def sample(ctrl: TEController, update: ControllerUpdate) -> None:
        updates.append(update)
        timeline.append((update.event.time, update.event.kind, ctrl.measure()))

    simulator = Simulator()
    controller.bind(simulator, trace, on_update=sample)
    start = time.perf_counter()
    simulator.run()
    elapsed = time.perf_counter() - start

    by_time: Dict[float, ControllerMeasurement] = {}
    for when, kind, measurement in timeline:
        if kind == "link-failure":
            by_time[when] = measurement
    outages = [
        OutageRow(
            scenario_id=scenarios[int(round(when / period))].scenario_id,
            time=when,
            mlu=measurement.mlu,
            utility=measurement.utility,
            routed_volume=measurement.routed_volume,
            dropped_volume=measurement.dropped_volume,
            connected=measurement.connected,
        )
        for when, measurement in sorted(by_time.items())
    ]
    return ReplayResult(
        controller=controller,
        baseline=baseline,
        final=controller.measure(),
        outages=outages,
        timeline=timeline,
        processed_events=simulator.processed_events,
        elapsed=elapsed,
        samples=updates,
    )
