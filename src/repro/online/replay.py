"""Reusable TE-controller trace replay (the engine behind ``repro replay``).

``examples/online_controller.py`` demonstrated the online view — a
:class:`~repro.online.TEController` consuming a timed failure/recovery
trace through the discrete-event simulator — as a script.  This module
extracts that replay as a library function so the example, the ``repro``
CLI and the results store all drive the same code path: build the trace,
bind the controller, sample a measurement after every event, and summarise
one row per outage.

A replay can also run **closed-loop**: pass a policy from
:mod:`repro.online.policy` and every triggered reoptimization is folded
into the timeline (kind ``"reoptimize"``), so the per-outage rows report
the *sustained* state of each outage — the last measurement inside its
window, i.e. what the network looked like after the policy (if any) had
reacted — and :attr:`ReplayResult.worst` compares fairly between the
no-policy, closed-loop and every-event-oracle replays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..network.demands import TrafficMatrix
from ..network.graph import Network
from ..network.spt import DEFAULT_TOLERANCE
from ..obs import telemetry
from ..scenarios.scenario import Scenario
from ..simulator.events import Simulator
from .controller import ControllerMeasurement, ControllerUpdate, TEController
from .dspt import publish_dspt_counters, snapshot_stats
from .events import failure_recovery_trace


@dataclass
class OutageRow:
    """The sustained measurement of one outage in the trace.

    ``mlu`` (and friends) come from the *last* sample inside the outage
    window: the final failure event without a policy, the post-
    reoptimization measurement when a policy reacted in time.
    """

    scenario_id: str
    time: float
    mlu: float
    utility: float
    routed_volume: float
    dropped_volume: float
    connected: bool
    #: Reoptimizations a policy spent inside this outage's window.
    reoptimizations: int = 0

    def as_row(self) -> Dict[str, object]:
        """A flat record for tables and the results store."""
        return {
            "scenario": self.scenario_id,
            "time": self.time,
            "mlu": round(self.mlu, 6),
            "utility": round(self.utility, 6),
            "routed": round(self.routed_volume, 6),
            "dropped": round(self.dropped_volume, 6),
            "connected": self.connected,
            "reoptimizations": self.reoptimizations,
        }


@dataclass
class ReplayResult:
    """Everything a failure/recovery trace replay produced."""

    controller: TEController
    baseline: ControllerMeasurement
    final: ControllerMeasurement
    outages: List[OutageRow]
    timeline: List[Tuple[float, str, ControllerMeasurement]]
    processed_events: int
    elapsed: float = 0.0
    samples: List[ControllerUpdate] = field(default_factory=list)
    #: The attached policy (``None`` for a plain replay); its ``decisions``
    #: carry per-reoptimization before/after MLU.
    policy: Optional[object] = None

    @property
    def worst(self) -> Optional[OutageRow]:
        """The outage with the highest sustained MLU (``None`` on an empty trace)."""
        return max(self.outages, key=lambda row: row.mlu, default=None)

    @property
    def reoptimizations(self) -> int:
        return len(getattr(self.policy, "decisions", ()))


def replay_failure_trace(
    network: Network,
    demands: TrafficMatrix,
    scenarios: Sequence[Scenario],
    period: float = 600.0,
    outage: float = 300.0,
    policy: Optional[object] = None,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    max_affected_fraction: Optional[float] = None,
    verify: bool = False,
) -> ReplayResult:
    """Replay ``scenarios`` as a timed fail → repair trace and sample MLU.

    Each scenario fails at ``i * period`` and heals ``outage`` seconds
    later; the controller absorbs every directed-link event incrementally
    and the MLU timeline is sampled after each one.  With a ``policy``
    (:class:`~repro.online.policy.ClosedLoopPolicy` /
    :class:`~repro.online.policy.OraclePolicy`) each triggered
    reoptimization is sampled into the timeline too.  The per-outage rows
    report the last sample inside each outage window — the sustained state
    the network actually ran in until repair.

    ``tolerance``, ``max_affected_fraction`` and ``verify`` go straight to
    the underlying :class:`TEController` (and its dynamic SPT), so the
    fallback threshold is tunable from the CLI without code edits
    (``max_affected_fraction=None`` auto-tunes it per topology class).
    """
    trace = failure_recovery_trace(network, scenarios, period=period, outage=outage)
    controller = TEController(
        network,
        demands,
        tolerance=tolerance,
        max_affected_fraction=max_affected_fraction,
        verify=verify,
    )
    baseline = controller.measure()

    timeline: List[Tuple[float, str, ControllerMeasurement]] = []
    updates: List[ControllerUpdate] = []
    simulator = Simulator()

    def sample(ctrl: TEController, update: ControllerUpdate) -> ControllerMeasurement:
        measurement = ctrl.measure()
        updates.append(update)
        timeline.append((update.event.time, update.event.kind, measurement))
        return measurement

    on_update = sample
    if policy is not None:
        policy.attach(
            controller,
            simulator,
            # The policy hands over its post-installation measurement, so
            # the timeline entry costs no extra measure().
            on_reoptimize=lambda ctrl, decision, measurement: timeline.append(
                (decision.time, "reoptimize", measurement)
            ),
        )

        def on_update(ctrl: TEController, update: ControllerUpdate) -> None:
            policy.observe(ctrl, update, measurement=sample(ctrl, update))

    controller.bind(simulator, trace, on_update=on_update)
    stats_before = (
        snapshot_stats(controller.spt.stats) if telemetry.enabled() else None
    )
    start = time.perf_counter()
    with telemetry.span(
        "replay.trace",
        scenarios=len(scenarios),
        policy=type(policy).__name__ if policy is not None else "none",
    ):
        simulator.run()
    elapsed = time.perf_counter() - start
    if stats_before is not None:
        publish_dspt_counters(stats_before, controller.spt.stats)

    outages: List[OutageRow] = []
    for index, scenario in enumerate(scenarios):
        down, up = index * period, index * period + outage
        window = [
            (when, kind, measurement)
            for when, kind, measurement in timeline
            if down <= when < up and kind in ("link-failure", "reoptimize")
        ]
        if not window:
            continue
        when, _, measurement = window[-1]
        if telemetry.enabled():
            # Sustained MLU: what each outage actually ran at until repair.
            telemetry.observe(
                "replay.sustained_mlu",
                measurement.mlu,
                edges=(0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0, 5.0),
            )
        outages.append(
            OutageRow(
                scenario_id=scenario.scenario_id,
                time=down,
                mlu=measurement.mlu,
                utility=measurement.utility,
                routed_volume=measurement.routed_volume,
                dropped_volume=measurement.dropped_volume,
                connected=measurement.connected,
                reoptimizations=sum(1 for _, kind, _m in window if kind == "reoptimize"),
            )
        )
    return ReplayResult(
        controller=controller,
        baseline=baseline,
        final=controller.measure(),
        outages=outages,
        timeline=timeline,
        processed_events=simulator.processed_events,
        elapsed=elapsed,
        samples=updates,
        policy=policy,
    )
