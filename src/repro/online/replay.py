"""Batch TE-controller trace replay (the engine behind ``repro replay``).

This module used to own the whole replay loop; since the
:class:`~repro.online.session.ControllerSession` extraction it is a *thin
batch driver*: build the timed fail → repair trace, drive a session over a
discrete-event simulator, and summarise one row per outage.  The serve
daemon (:mod:`repro.serve`) drives the very same session API one event at
a time over a socket, which is why a socket replay of a trace and this
batch replay of the same trace report bit-identical measurements.

A replay can also run **closed-loop**: pass a policy from
:mod:`repro.online.policy` and every triggered reoptimization is folded
into the timeline (kind ``"reoptimize"``), so the per-outage rows report
the *sustained* state of each outage — the last measurement inside its
window, i.e. what the network looked like after the policy (if any) had
reacted — and :attr:`ReplayResult.worst` compares fairly between the
no-policy, closed-loop and every-event-oracle replays.

The controller construction knobs (``tolerance``,
``max_affected_fraction``, ``verify``) moved onto
:class:`ControllerSession`; passing them here still works for one release
but emits a :class:`DeprecationWarning` — build a session and pass
``session=`` instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from collections.abc import Sequence

from ..network.demands import TrafficMatrix
from ..network.graph import Network
from ..obs import telemetry
from ..scenarios.scenario import Scenario
from .controller import ControllerMeasurement, ControllerUpdate, TEController
from .events import NetworkEvent, failure_recovery_trace
from .session import ControllerSession

#: Sentinel distinguishing "not passed" from an explicit default value.
_UNSET = object()


@dataclass
class OutageRow:
    """The sustained measurement of one outage in the trace.

    ``mlu`` (and friends) come from the *last* sample inside the outage
    window: the final failure event without a policy, the post-
    reoptimization measurement when a policy reacted in time.
    """

    scenario_id: str
    time: float
    mlu: float
    utility: float
    routed_volume: float
    dropped_volume: float
    connected: bool
    #: Reoptimizations a policy spent inside this outage's window.
    reoptimizations: int = 0

    def as_row(self) -> dict[str, object]:
        """A flat record for tables and the results store."""
        return {
            "scenario": self.scenario_id,
            "time": self.time,
            "mlu": round(self.mlu, 6),
            "utility": round(self.utility, 6),
            "routed": round(self.routed_volume, 6),
            "dropped": round(self.dropped_volume, 6),
            "connected": self.connected,
            "reoptimizations": self.reoptimizations,
        }


@dataclass
class ReplayResult:
    """Everything a failure/recovery trace replay produced."""

    controller: TEController
    baseline: ControllerMeasurement
    final: ControllerMeasurement
    outages: list[OutageRow]
    timeline: list[tuple[float, str, ControllerMeasurement]]
    processed_events: int
    elapsed: float = 0.0
    samples: list[ControllerUpdate] = field(default_factory=list)
    #: The attached policy (``None`` for a plain replay); its ``decisions``
    #: carry per-reoptimization before/after MLU.
    policy: object | None = None
    #: The session the replay drove (timeline/rows/subscriptions live here).
    session: ControllerSession | None = None

    @property
    def worst(self) -> OutageRow | None:
        """The outage with the highest sustained MLU (``None`` on an empty trace)."""
        return max(self.outages, key=lambda row: row.mlu, default=None)

    @property
    def reoptimizations(self) -> int:
        return len(getattr(self.policy, "decisions", ()))


def outage_rows(
    timeline: Sequence[tuple[float, str, ControllerMeasurement]],
    scenarios: Sequence[Scenario],
    period: float,
    outage: float,
) -> list[OutageRow]:
    """Summarise a replay timeline into one sustained row per outage window."""
    rows: list[OutageRow] = []
    for index, scenario in enumerate(scenarios):
        down, up = index * period, index * period + outage
        window = [
            (when, kind, measurement)
            for when, kind, measurement in timeline
            if down <= when < up and kind in ("link-failure", "reoptimize")
        ]
        if not window:
            continue
        _, _, measurement = window[-1]
        if telemetry.enabled():
            # Sustained MLU: what each outage actually ran at until repair.
            telemetry.observe(
                "replay.sustained_mlu",
                measurement.mlu,
                edges=(0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0, 5.0),
            )
        rows.append(
            OutageRow(
                scenario_id=scenario.scenario_id,
                time=down,
                mlu=measurement.mlu,
                utility=measurement.utility,
                routed_volume=measurement.routed_volume,
                dropped_volume=measurement.dropped_volume,
                connected=measurement.connected,
                reoptimizations=sum(1 for _, kind, _m in window if kind == "reoptimize"),
            )
        )
    return rows


def replay_event_trace(
    session: ControllerSession, events: Sequence[NetworkEvent]
) -> ReplayResult:
    """Replay an arbitrary event trace through a session (no outage windows).

    The batch counterpart of feeding the same trace over the serve socket:
    events run in simulated-time order on a discrete-event simulator, every
    sample lands on the session timeline, and the result's
    ``session.event_rows()`` are the records ``repro replay --trace-file``
    stores (and the serve soak run must match bit-for-bit).
    """
    processed, elapsed = session.replay(events)
    return ReplayResult(
        controller=session.controller,
        baseline=session.baseline,
        final=session.controller.measure(),
        outages=[],
        timeline=session.timeline,
        processed_events=processed,
        elapsed=elapsed,
        samples=session.samples,
        policy=session.policy,
        session=session,
    )


def replay_failure_trace(
    network: Network,
    demands: TrafficMatrix,
    scenarios: Sequence[Scenario],
    period: float = 600.0,
    outage: float = 300.0,
    policy: object | None = None,
    *,
    session: ControllerSession | None = None,
    tolerance: object = _UNSET,
    max_affected_fraction: object = _UNSET,
    verify: object = _UNSET,
) -> ReplayResult:
    """Replay ``scenarios`` as a timed fail → repair trace and sample MLU.

    Each scenario fails at ``i * period`` and heals ``outage`` seconds
    later; the controller absorbs every directed-link event incrementally
    and the MLU timeline is sampled after each one.  With a ``policy``
    (:class:`~repro.online.policy.ClosedLoopPolicy` /
    :class:`~repro.online.policy.OraclePolicy`) each triggered
    reoptimization is sampled into the timeline too.  The per-outage rows
    report the last sample inside each outage window — the sustained state
    the network actually ran in until repair.

    Pass a prebuilt :class:`ControllerSession` (``session=``) to control
    the controller's construction (tolerance, fallback threshold, verify
    mode, custom weights); the legacy ``tolerance`` /
    ``max_affected_fraction`` / ``verify`` keywords still work but are
    deprecated and will be removed next release.
    """
    deprecated = {
        name: value
        for name, value in (
            ("tolerance", tolerance),
            ("max_affected_fraction", max_affected_fraction),
            ("verify", verify),
        )
        if value is not _UNSET
    }
    if deprecated:
        if session is not None:
            raise ValueError(
                "pass controller knobs on the ControllerSession, not alongside "
                f"session= (got {', '.join(sorted(deprecated))})"
            )
        warnings.warn(
            f"passing {', '.join(sorted(deprecated))} to replay_failure_trace is "
            "deprecated; construct a repro.online.ControllerSession with these "
            "knobs and pass session= instead",
            DeprecationWarning,
            stacklevel=2,
        )
    if session is None:
        session = ControllerSession(network, demands, policy=policy, **deprecated)
    elif policy is not None and session.policy is not policy:
        raise ValueError("pass the policy on the ControllerSession, not alongside session=")
    trace = failure_recovery_trace(network, scenarios, period=period, outage=outage)
    processed, elapsed = session.replay(trace)
    return ReplayResult(
        controller=session.controller,
        baseline=session.baseline,
        final=session.controller.measure(),
        outages=outage_rows(session.timeline, scenarios, period, outage),
        timeline=session.timeline,
        processed_events=processed,
        elapsed=elapsed,
        samples=session.samples,
        policy=session.policy,
        session=session,
    )
