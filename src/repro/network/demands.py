"""Traffic demands (the multi-commodity part of the TE problem).

The paper describes demands as source-destination pairs ``(s_r, t_r)`` with
intensity ``d_r`` and then aggregates them per destination: the flow towards a
destination ``t`` is one commodity.  :class:`TrafficMatrix` stores the pairwise
demands and exposes the per-destination aggregation used by every solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Mapping

import numpy as np

from .graph import Network, Node

Pair = tuple[Node, Node]


class DemandError(ValueError):
    """Raised for malformed demands (self demands, negative volumes, ...)."""


@dataclass(frozen=True)
class Demand:
    """A single source-destination demand ``d_r`` for pair ``(s_r, t_r)``."""

    source: Node
    target: Node
    volume: float

    @property
    def pair(self) -> Pair:
        return (self.source, self.target)


class TrafficMatrix:
    """A set of source-destination demands.

    The matrix behaves like a mapping from ``(source, target)`` pairs to
    demand volumes.  Adding a demand for an existing pair accumulates the
    volume, which mirrors how prefix-level demands aggregate in practice.

    Examples
    --------
    >>> tm = TrafficMatrix()
    >>> tm.add(1, 3, 1.0)
    >>> tm.add(3, 4, 0.9)
    >>> tm.total_volume()
    1.9
    """

    def __init__(self, demands: Mapping[Pair, float] | None = None) -> None:
        self._demands: dict[Pair, float] = {}
        if demands:
            for (source, target), volume in demands.items():
                self.add(source, target, volume)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, source: Node, target: Node, volume: float) -> None:
        """Add ``volume`` units of demand from ``source`` to ``target``."""
        if source == target:
            raise DemandError(f"demand from {source} to itself is not allowed")
        if volume < 0:
            raise DemandError(f"demand volume must be non-negative, got {volume}")
        if volume == 0:
            return
        self._demands[(source, target)] = self._demands.get((source, target), 0.0) + float(volume)

    @classmethod
    def from_demands(cls, demands: Iterable[Demand]) -> TrafficMatrix:
        tm = cls()
        for demand in demands:
            tm.add(demand.source, demand.target, demand.volume)
        return tm

    @classmethod
    def from_triples(cls, triples: Iterable[tuple[Node, Node, float]]) -> TrafficMatrix:
        tm = cls()
        for source, target, volume in triples:
            tm.add(source, target, volume)
        return tm

    # ------------------------------------------------------------------
    # mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, pair: Pair) -> float:
        return self._demands.get(pair, 0.0)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._demands

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._demands)

    def __len__(self) -> int:
        return len(self._demands)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        return self._demands == other._demands

    def items(self) -> Iterator[tuple[Pair, float]]:
        return iter(self._demands.items())

    def pairs(self) -> list[Pair]:
        """Source-destination pairs with positive demand."""
        return list(self._demands)

    def demands(self) -> list[Demand]:
        """The demands as :class:`Demand` objects."""
        return [Demand(s, t, v) for (s, t), v in self._demands.items()]

    def get(self, pair: Pair, default: float = 0.0) -> float:
        return self._demands.get(pair, default)

    # ------------------------------------------------------------------
    # aggregations
    # ------------------------------------------------------------------
    def destinations(self) -> list[Node]:
        """The destination set ``D`` (nodes that terminate some demand)."""
        seen: dict[Node, None] = {}
        for (_, target) in self._demands:
            seen.setdefault(target, None)
        return list(seen)

    def sources(self) -> list[Node]:
        """Nodes that originate some demand."""
        seen: dict[Node, None] = {}
        for (source, _) in self._demands:
            seen.setdefault(source, None)
        return list(seen)

    def by_destination(self) -> dict[Node, dict[Node, float]]:
        """Per-destination demand vectors ``d^t_s`` used by the commodities."""
        result: dict[Node, dict[Node, float]] = {}
        for (source, target), volume in self._demands.items():
            result.setdefault(target, {})[source] = volume
        return result

    def toward(self, destination: Node) -> dict[Node, float]:
        """Demand entering the network at each source and destined to ``destination``."""
        return {
            source: volume
            for (source, target), volume in self._demands.items()
            if target == destination
        }

    def total_volume(self) -> float:
        """Aggregate demand (numerator of the paper's *network load*)."""
        return float(sum(self._demands.values()))

    def network_load(self, network: Network) -> float:
        """Ratio of total demand over total capacity, as used in Fig. 9/10."""
        total_capacity = network.total_capacity()
        if total_capacity <= 0:
            raise DemandError("network has no capacity")
        return self.total_volume() / total_capacity

    def outgoing_volume(self, node: Node) -> float:
        """Total demand originating at ``node``."""
        return float(
            sum(v for (s, _), v in self._demands.items() if s == node)
        )

    def incoming_volume(self, node: Node) -> float:
        """Total demand destined to ``node``."""
        return float(
            sum(v for (_, t), v in self._demands.items() if t == node)
        )

    def matrix(self, network: Network) -> np.ndarray:
        """Dense ``N x N`` demand matrix indexed by the network's node order."""
        size = network.num_nodes
        dense = np.zeros((size, size))
        for (source, target), volume in self._demands.items():
            dense[network.node_index(source), network.node_index(target)] = volume
        return dense

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> TrafficMatrix:
        """A copy of the matrix with every demand multiplied by ``factor``."""
        if factor < 0:
            raise DemandError("demand scale factor must be non-negative")
        return TrafficMatrix({pair: volume * factor for pair, volume in self._demands.items()})

    def restricted_to(self, nodes: Iterable[Node]) -> TrafficMatrix:
        """Only the demands whose both endpoints are in ``nodes``."""
        keep = set(nodes)
        return TrafficMatrix(
            {
                pair: volume
                for pair, volume in self._demands.items()
                if pair[0] in keep and pair[1] in keep
            }
        )

    def validate(self, network: Network) -> None:
        """Check that every demand endpoint exists in ``network``.

        Raises
        ------
        DemandError
            If some endpoint is not a node of the network.
        """
        for source, target in self._demands:
            if not network.has_node(source):
                raise DemandError(f"demand source {source!r} is not in the network")
            if not network.has_node(target):
                raise DemandError(f"demand target {target!r} is not in the network")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrafficMatrix(pairs={len(self)}, volume={self.total_volume():.3f})"
