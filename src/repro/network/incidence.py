"""Node-arc incidence matrix used by the LP formulations.

The paper writes the flow conservation constraints as ``B f^t = d^t`` where
``B`` is the ``N x J`` node-arc incidence matrix: the column of link
``(u, v)`` has ``+1`` in row ``u`` and ``-1`` in row ``v``.  With that sign
convention the right hand side ``d^t`` carries the demand *entering* the
network at each source, and the row of the destination itself is dropped
(or carries minus the total demand).
"""

from __future__ import annotations


import numpy as np

from .demands import TrafficMatrix
from .graph import Network, Node


def incidence_matrix(network: Network) -> np.ndarray:
    """The dense node-arc incidence matrix ``B`` of ``network``.

    Rows follow the network node order, columns follow the link index order.
    """
    matrix = np.zeros((network.num_nodes, network.num_links))
    for link in network.links:
        matrix[network.node_index(link.source), link.index] = 1.0
        matrix[network.node_index(link.target), link.index] = -1.0
    return matrix


def demand_vector(network: Network, demands: TrafficMatrix, destination: Node) -> np.ndarray:
    """Right-hand side ``d^t`` of ``B f^t = d^t`` for one destination.

    Entry ``s`` holds the demand entering the network at ``s`` and destined to
    ``destination``.  The destination row holds minus the total demand so that
    the full system ``B f^t = d^t`` is consistent.
    """
    vector = np.zeros(network.num_nodes)
    toward = demands.toward(destination)
    total = 0.0
    for source, volume in toward.items():
        vector[network.node_index(source)] = volume
        total += volume
    vector[network.node_index(destination)] = -total
    return vector


def reduced_system(
    network: Network,
    demands: TrafficMatrix,
    destination: Node,
    incidence: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """Conservation system with the redundant destination row removed.

    Returns a dict with keys ``A_eq`` and ``b_eq`` directly usable by
    :func:`scipy.optimize.linprog`.  Removing one row makes the equality
    system full rank (for a connected network), which keeps the LP solver
    numerically happy.
    """
    if incidence is None:
        incidence = incidence_matrix(network)
    rhs = demand_vector(network, demands, destination)
    keep = [
        i for i, node in enumerate(network.nodes) if node != destination
    ]
    return {"A_eq": incidence[keep, :], "b_eq": rhs[keep]}


def conservation_residual(
    network: Network,
    flows_by_destination: dict[Node, np.ndarray],
    demands: TrafficMatrix,
) -> float:
    """Maximum absolute residual of ``B f^t - d^t`` over all destinations."""
    incidence = incidence_matrix(network)
    worst = 0.0
    for destination, vector in flows_by_destination.items():
        residual = incidence @ vector - demand_vector(network, demands, destination)
        worst = max(worst, float(np.max(np.abs(residual))))
    return worst
