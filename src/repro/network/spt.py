"""Shortest-path machinery: Dijkstra with tolerance and ECMP DAGs.

OSPF (and SPEF) forwards traffic hop-by-hop along shortest paths towards each
destination.  Two details from the paper matter here:

* ties are resolved *within a tolerance* (Section V-G uses tolerance 0.3 for
  fractional weights and 1 for integer weights), so "equal cost" really means
  "equal within the tolerance";
* the set of shortest paths towards a destination forms a DAG, and routers
  only need the *next hops* on that DAG (the set ``ON_t`` of the paper).

All functions take link weights as an ``{(u, v): w}`` mapping or a
link-indexed vector and work on the :class:`~repro.network.graph.Network`
model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from .graph import Edge, Network, NetworkError, Node

WeightsLike = Mapping[Edge, float] | Sequence[float] | np.ndarray

#: Default cost tolerance when comparing path lengths (paper Section V-G).
DEFAULT_TOLERANCE = 1e-9


class UnreachableError(NetworkError):
    """Raised when a demand endpoint cannot reach its destination."""


def as_weight_vector(network: Network, weights: WeightsLike) -> np.ndarray:
    """Normalise ``weights`` to a link-indexed numpy vector.

    Accepts a mapping from edges to weights or an already link-indexed
    sequence.  Missing edges in a mapping default to weight 0 (matching the
    ``β = 0`` Table I entry where an unused link gets weight 0).
    """
    if isinstance(weights, Mapping):
        return network.weight_vector(dict(weights))
    vector = np.asarray(weights, dtype=float)
    if vector.shape != (network.num_links,):
        raise NetworkError(
            f"expected {network.num_links} weights, got shape {vector.shape}"
        )
    return vector.copy()


def validate_weights(vector: np.ndarray) -> None:
    """Reject negative or non-finite weights."""
    if np.any(~np.isfinite(vector)):
        raise NetworkError("link weights must be finite")
    if np.any(vector < 0):
        raise NetworkError("link weights must be non-negative")


# ----------------------------------------------------------------------
# Dijkstra towards a destination (reverse shortest path tree)
# ----------------------------------------------------------------------
def distances_to(
    network: Network,
    destination: Node,
    weights: WeightsLike,
) -> dict[Node, float]:
    """Shortest distance from every node *to* ``destination``.

    This is Dijkstra run on the reverse graph, which is the natural
    orientation for destination-based hop-by-hop forwarding.
    Unreachable nodes are absent from the returned mapping.
    """
    distances, _ = _dijkstra_to(network, destination, as_weight_vector(network, weights))
    return distances


def _dijkstra_to(
    network: Network,
    destination: Node,
    vector: np.ndarray,
) -> tuple[dict[Node, float], dict[Node, Node]]:
    """Dijkstra towards ``destination`` returning distances and tree next hops.

    The returned ``parents`` map gives, for every reachable node except the
    destination, the next hop on one shortest path (the Dijkstra tree edge).
    The tree is what keeps equal-cost DAGs acyclic on zero-weight plateaus,
    where cost comparisons alone cannot orient the ties.
    """
    validate_weights(vector)
    dist: dict[Node, float] = {destination: 0.0}
    parents: dict[Node, Node] = {}
    heap: list[tuple[float, int, Node]] = [(0.0, 0, destination)]
    counter = 1
    visited: dict[Node, bool] = {}
    while heap:
        d, _, node = heapq.heappop(heap)
        if visited.get(node):
            continue
        visited[node] = True
        for link in network.in_links(node):
            candidate = d + vector[link.index]
            previous = dist.get(link.source)
            if previous is None or candidate < previous - 1e-15:
                dist[link.source] = candidate
                parents[link.source] = node
                heapq.heappush(heap, (candidate, counter, link.source))
                counter += 1
    return dist, parents


@dataclass
class ShortestPathDag:
    """The equal-cost shortest-path DAG towards one destination.

    Attributes
    ----------
    destination:
        The destination node ``t``.
    distances:
        Shortest distance from each node to the destination.
    next_hops:
        ``ON_t`` of the paper: for each node, the next hops that lie on some
        shortest path towards the destination (within the tolerance).
    tolerance:
        The cost tolerance used to declare two paths equal.
    """

    destination: Node
    distances: dict[Node, float]
    next_hops: dict[Node, list[Node]]
    tolerance: float = DEFAULT_TOLERANCE

    def reachable(self, node: Node) -> bool:
        return node in self.distances

    def distance(self, node: Node) -> float:
        try:
            return self.distances[node]
        except KeyError:
            raise UnreachableError(
                f"node {node!r} cannot reach destination {self.destination!r}"
            ) from None

    def next_hops_of(self, node: Node) -> list[Node]:
        """Shortest-path next hops of ``node`` (empty at the destination)."""
        return list(self.next_hops.get(node, []))

    def edges(self) -> list[Edge]:
        """All links that belong to some shortest path towards the destination."""
        return [
            (node, hop)
            for node, hops in self.next_hops.items()
            for hop in hops
        ]

    def nodes_by_decreasing_distance(self) -> list[Node]:
        """Nodes sorted by decreasing distance to the destination.

        Algorithm 3 of the paper propagates traffic in exactly this order so
        that every node's incoming flow is known before it splits it.
        """
        return sorted(self.distances, key=lambda n: self.distances[n], reverse=True)

    def topological_order(self) -> list[Node]:
        """Nodes in an order where every node precedes all of its next hops.

        This refines :meth:`nodes_by_decreasing_distance`: on zero-weight
        plateaus several nodes share a distance and the distance sort is not
        a valid processing order, whereas a topological order of the DAG
        always is.  The destination comes last.
        """
        # Kahn's algorithm over the next-hop edges (u -> hop).
        in_degree: dict[Node, int] = {node: 0 for node in self.distances}
        for hops in self.next_hops.values():
            for hop in hops:
                if hop in in_degree:
                    in_degree[hop] += 1
        # Start from nodes nobody forwards through, farthest first for
        # determinism.
        ready = sorted(
            (node for node, degree in in_degree.items() if degree == 0),
            key=lambda n: self.distances[n],
            reverse=True,
        )
        order: list[Node] = []
        queue = list(ready)
        while queue:
            node = queue.pop(0)
            order.append(node)
            for hop in self.next_hops.get(node, []):
                if hop not in in_degree:
                    continue
                in_degree[hop] -= 1
                if in_degree[hop] == 0:
                    queue.append(hop)
        if len(order) != len(self.distances):
            raise NetworkError(
                f"shortest-path structure towards {self.destination!r} contains a cycle"
            )
        return order

    def paths_from(self, source: Node, limit: int | None = None) -> list[list[Node]]:
        """Enumerate the equal-cost shortest paths from ``source``.

        Paths are returned as node lists ending at the destination.  ``limit``
        caps the number of paths (useful on dense DAGs); ``None`` enumerates
        everything.
        """
        if not self.reachable(source):
            raise UnreachableError(
                f"node {source!r} cannot reach destination {self.destination!r}"
            )
        paths: list[list[Node]] = []
        stack: list[tuple[Node, list[Node]]] = [(source, [source])]
        while stack:
            node, prefix = stack.pop()
            if node == self.destination:
                paths.append(prefix)
                if limit is not None and len(paths) >= limit:
                    break
                continue
            for hop in self.next_hops.get(node, []):
                stack.append((hop, prefix + [hop]))
        return paths

    def count_paths(self) -> dict[Node, int]:
        """Number of equal-cost shortest paths from each node to the destination.

        Computed by dynamic programming over the DAG, so it stays cheap even
        when explicit enumeration would blow up.
        """
        counts: dict[Node, int] = {self.destination: 1}
        for node in reversed(self.topological_order()):
            if node == self.destination:
                continue
            counts[node] = sum(counts.get(hop, 0) for hop in self.next_hops.get(node, []))
        return counts


def shortest_path_dag(
    network: Network,
    destination: Node,
    weights: WeightsLike,
    tolerance: float = DEFAULT_TOLERANCE,
) -> ShortestPathDag:
    """Build the equal-cost shortest-path DAG towards ``destination``.

    A link ``(u, v)`` is part of the DAG when
    ``w_uv + dist(v) <= dist(u) + tolerance`` (going through ``v`` is a
    shortest path from ``u`` within the tolerance) *and* ``v`` is strictly
    closer to the destination.  On zero-weight plateaus -- where several nodes
    share the same distance and cost comparisons cannot orient the tie -- the
    Dijkstra tree edge of each node is added instead, which keeps the
    structure acyclic while guaranteeing every reachable node has a next hop.
    """
    vector = as_weight_vector(network, weights)
    validate_weights(vector)
    distances, parents = _dijkstra_to(network, destination, vector)
    next_hops: dict[Node, list[Node]] = {}
    for node, dist_node in distances.items():
        if node == destination:
            continue
        hops: list[Node] = []
        for link in network.out_links(node):
            dist_hop = distances.get(link.target)
            if dist_hop is None:
                continue
            on_shortest = vector[link.index] + dist_hop <= dist_node + tolerance
            if on_shortest and dist_hop < dist_node - 1e-15:
                hops.append(link.target)
        parent = parents.get(node)
        # The tree edge is always on a shortest path; it is only missing
        # from `hops` when it lies on an equal-distance plateau.
        if (
            parent is not None
            and parent not in hops
            and distances.get(parent, float("inf")) >= dist_node - 1e-15
        ):
            hops.append(parent)
        next_hops[node] = hops
    return ShortestPathDag(
        destination=destination,
        distances=distances,
        next_hops=next_hops,
        tolerance=tolerance,
    )


def all_shortest_path_dags(
    network: Network,
    destinations: Sequence[Node],
    weights: WeightsLike,
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict[Node, ShortestPathDag]:
    """Shortest-path DAGs for every destination in ``destinations``."""
    vector = as_weight_vector(network, weights)
    return {
        destination: shortest_path_dag(network, destination, vector, tolerance)
        for destination in destinations
    }


def shortest_path_length(
    network: Network,
    source: Node,
    destination: Node,
    weights: WeightsLike,
) -> float:
    """Length of the shortest path from ``source`` to ``destination``."""
    distances = distances_to(network, destination, weights)
    if source not in distances:
        raise UnreachableError(f"{source!r} cannot reach {destination!r}")
    return distances[source]


def shortest_paths(
    network: Network,
    source: Node,
    destination: Node,
    weights: WeightsLike,
    tolerance: float = DEFAULT_TOLERANCE,
    limit: int | None = None,
) -> list[list[Node]]:
    """All equal-cost shortest paths between one source-destination pair."""
    dag = shortest_path_dag(network, destination, weights, tolerance)
    return dag.paths_from(source, limit=limit)


def path_cost(network: Network, path: Sequence[Node], weights: WeightsLike) -> float:
    """Total weight of ``path`` (a node list) under ``weights``."""
    vector = as_weight_vector(network, weights)
    return float(
        sum(vector[network.link_index(u, v)] for u, v in zip(path[:-1], path[1:], strict=True))
    )
