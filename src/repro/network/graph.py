"""Directed capacitated network model.

The paper models the network as a directed graph ``G = (N, J)`` where every
edge ``(i, j)`` has a capacity ``c_ij``.  :class:`Network` is the central data
structure of the library: every solver, protocol and metric operates on it.

Links are indexed both by their endpoints ``(u, v)`` and by a dense integer
index (the order in which they were added), which makes it cheap to convert
between dictionary-style and vector-style (numpy) representations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Iterable, Iterator, Sequence

import networkx as nx
import numpy as np

Node = Hashable
Edge = tuple[Node, Node]


class NetworkError(ValueError):
    """Raised for malformed networks (missing nodes, duplicate links, ...)."""


@dataclass(frozen=True)
class Link:
    """A directed link of the network.

    Attributes
    ----------
    source, target:
        Endpoint node identifiers.
    capacity:
        Maximum traffic the link can carry (same unit as the demands).
    delay:
        Processing plus propagation delay, used by the ``(d, 0)`` objective
        (Example 3 of the paper).  Defaults to 1.0 so that ``(d, 0)`` reduces
        to minimum-hop routing when delays are left unspecified.
    index:
        Dense integer index of the link inside its :class:`Network`.
    """

    source: Node
    target: Node
    capacity: float
    delay: float = 1.0
    index: int = -1

    @property
    def endpoints(self) -> Edge:
        """The ``(source, target)`` pair identifying this link."""
        return (self.source, self.target)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Link({self.source}->{self.target}, c={self.capacity})"


class Network:
    """A directed graph with capacities, the substrate of every TE problem.

    Parameters
    ----------
    name:
        Human readable identifier, used in reports and benchmark output.

    Examples
    --------
    >>> net = Network(name="triangle")
    >>> for u, v in [(1, 2), (2, 3), (1, 3)]:
    ...     _ = net.add_link(u, v, capacity=10.0)
    >>> net.num_nodes, net.num_links
    (3, 3)
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._nodes: list[Node] = []
        self._node_set: dict[Node, int] = {}
        self._links: list[Link] = []
        self._link_index: dict[Edge, int] = {}
        self._out_links: dict[Node, list[int]] = {}
        self._in_links: dict[Node, list[int]] = {}
        # Lazy adjacency memos: Link-object lists are rebuilt on demand and
        # dropped whenever a link is added (the hot incremental paths call
        # out_links/in_links millions of times on a static topology).
        self._out_cache: dict[Node, list[Link]] = {}
        self._in_cache: dict[Node, list[Link]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Add ``node`` to the network (idempotent)."""
        if node not in self._node_set:
            self._node_set[node] = len(self._nodes)
            self._nodes.append(node)
            self._out_links[node] = []
            self._in_links[node] = []
        return node

    def add_link(
        self,
        source: Node,
        target: Node,
        capacity: float,
        delay: float = 1.0,
    ) -> Link:
        """Add a directed link ``source -> target``.

        Raises
        ------
        NetworkError
            If the link already exists, is a self loop, or has a
            non-positive capacity.
        """
        if source == target:
            raise NetworkError(f"self loop {source}->{target} not allowed")
        if capacity <= 0:
            raise NetworkError(f"capacity must be positive, got {capacity}")
        if (source, target) in self._link_index:
            raise NetworkError(f"duplicate link {source}->{target}")
        self.add_node(source)
        self.add_node(target)
        link = Link(source, target, float(capacity), float(delay), len(self._links))
        self._links.append(link)
        self._link_index[(source, target)] = link.index
        self._out_links[source].append(link.index)
        self._in_links[target].append(link.index)
        self._out_cache.pop(source, None)
        self._in_cache.pop(target, None)
        return link

    def add_duplex_link(
        self,
        u: Node,
        v: Node,
        capacity: float,
        delay: float = 1.0,
    ) -> tuple[Link, Link]:
        """Add the pair of directed links ``u -> v`` and ``v -> u``."""
        return (
            self.add_link(u, v, capacity, delay),
            self.add_link(v, u, capacity, delay),
        )

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        """Nodes in insertion order."""
        return list(self._nodes)

    @property
    def links(self) -> list[Link]:
        """Links in insertion order (i.e. by :attr:`Link.index`)."""
        return list(self._links)

    @property
    def edges(self) -> list[Edge]:
        """``(source, target)`` pairs in link-index order."""
        return [link.endpoints for link in self._links]

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def has_node(self, node: Node) -> bool:
        return node in self._node_set

    def has_link(self, source: Node, target: Node) -> bool:
        return (source, target) in self._link_index

    def node_index(self, node: Node) -> int:
        """Dense index of ``node`` (its position in :attr:`nodes`)."""
        try:
            return self._node_set[node]
        except KeyError:
            raise NetworkError(f"unknown node {node!r}") from None

    def link(self, source: Node, target: Node) -> Link:
        """The :class:`Link` object for ``source -> target``."""
        try:
            return self._links[self._link_index[(source, target)]]
        except KeyError:
            raise NetworkError(f"unknown link {source}->{target}") from None

    def link_by_index(self, index: int) -> Link:
        return self._links[index]

    def link_index(self, source: Node, target: Node) -> int:
        """Dense index of the link ``source -> target``."""
        try:
            return self._link_index[(source, target)]
        except KeyError:
            raise NetworkError(f"unknown link {source}->{target}") from None

    def out_links(self, node: Node) -> list[Link]:
        """Links leaving ``node`` (a shared cached list — do not mutate)."""
        cached = self._out_cache.get(node)
        if cached is None:
            cached = [self._links[i] for i in self._out_links.get(node, [])]
            self._out_cache[node] = cached
        return cached

    def in_links(self, node: Node) -> list[Link]:
        """Links entering ``node`` (a shared cached list — do not mutate)."""
        cached = self._in_cache.get(node)
        if cached is None:
            cached = [self._links[i] for i in self._in_links.get(node, [])]
            self._in_cache[node] = cached
        return cached

    def neighbors(self, node: Node) -> list[Node]:
        """Nodes reachable from ``node`` by a single link."""
        return [self._links[i].target for i in self._out_links.get(node, [])]

    def predecessors(self, node: Node) -> list[Node]:
        """Nodes with a single link into ``node``."""
        return [self._links[i].source for i in self._in_links.get(node, [])]

    def __iter__(self) -> Iterator[Link]:
        return iter(self._links)

    def __len__(self) -> int:
        return self.num_links

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._link_index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(name={self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_links})"
        )

    # ------------------------------------------------------------------
    # vector views
    # ------------------------------------------------------------------
    @property
    def capacities(self) -> np.ndarray:
        """Link capacities as a vector indexed by link index."""
        return np.array([link.capacity for link in self._links], dtype=float)

    @property
    def delays(self) -> np.ndarray:
        """Link delays as a vector indexed by link index."""
        return np.array([link.delay for link in self._links], dtype=float)

    def capacity_of(self, source: Node, target: Node) -> float:
        return self.link(source, target).capacity

    def total_capacity(self) -> float:
        """Sum of all link capacities (denominator of *network load*)."""
        return float(sum(link.capacity for link in self._links))

    def weight_vector(self, weights: dict[Edge, float]) -> np.ndarray:
        """Convert an ``{(u, v): w}`` mapping to a link-indexed vector."""
        vec = np.zeros(self.num_links)
        for edge, value in weights.items():
            vec[self.link_index(*edge)] = value
        return vec

    def weight_dict(self, vector: Sequence[float]) -> dict[Edge, float]:
        """Convert a link-indexed vector to an ``{(u, v): w}`` mapping."""
        values = np.asarray(vector, dtype=float)
        if values.shape != (self.num_links,):
            raise NetworkError(
                f"expected a vector of length {self.num_links}, got {values.shape}"
            )
        return {link.endpoints: float(values[link.index]) for link in self._links}

    # ------------------------------------------------------------------
    # structure checks and conversions
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True when the underlying undirected graph is connected."""
        if self.num_nodes <= 1:
            return True
        return nx.is_connected(self.to_networkx().to_undirected())

    def is_strongly_connected(self) -> bool:
        """True when every node can reach every other node."""
        if self.num_nodes <= 1:
            return True
        return nx.is_strongly_connected(self.to_networkx())

    def is_symmetric(self) -> bool:
        """True when every link has a reverse link (possibly different capacity)."""
        return all((link.target, link.source) in self._link_index for link in self._links)

    def to_networkx(self) -> nx.DiGraph:
        """Export to a :class:`networkx.DiGraph` with capacity/delay attributes."""
        graph = nx.DiGraph(name=self.name)
        graph.add_nodes_from(self._nodes)
        for link in self._links:
            graph.add_edge(
                link.source,
                link.target,
                capacity=link.capacity,
                delay=link.delay,
                index=link.index,
            )
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.DiGraph, name: str | None = None) -> Network:
        """Build a :class:`Network` from a networkx digraph.

        Edge attribute ``capacity`` is required; ``delay`` defaults to 1.
        """
        net = cls(name=name or graph.name or "network")
        for node in graph.nodes():
            net.add_node(node)
        for u, v, data in graph.edges(data=True):
            if "capacity" not in data:
                raise NetworkError(f"edge {u}->{v} is missing a capacity attribute")
            net.add_link(u, v, data["capacity"], data.get("delay", 1.0))
        return net

    @classmethod
    def from_link_list(
        cls,
        links: Iterable[tuple[Node, Node, float]],
        name: str = "network",
        duplex: bool = False,
    ) -> Network:
        """Build a network from ``(u, v, capacity)`` triples.

        With ``duplex=True`` every triple adds both directions.
        """
        net = cls(name=name)
        for u, v, capacity in links:
            if duplex:
                net.add_duplex_link(u, v, capacity)
            else:
                net.add_link(u, v, capacity)
        return net

    def copy(self, name: str | None = None) -> Network:
        """A deep copy of the network (links are immutable, so this is cheap)."""
        net = Network(name=name or self.name)
        for node in self._nodes:
            net.add_node(node)
        for link in self._links:
            net.add_link(link.source, link.target, link.capacity, link.delay)
        return net

    def scaled(self, factor: float, name: str | None = None) -> Network:
        """A copy of the network with every capacity multiplied by ``factor``."""
        if factor <= 0:
            raise NetworkError("capacity scale factor must be positive")
        net = Network(name=name or f"{self.name}-x{factor:g}")
        for node in self._nodes:
            net.add_node(node)
        for link in self._links:
            net.add_link(link.source, link.target, link.capacity * factor, link.delay)
        return net


@dataclass
class NetworkSummary:
    """Compact description of a topology, used for Table III."""

    name: str
    kind: str
    num_nodes: int
    num_links: int
    total_capacity: float = 0.0
    extra: dict[str, object] = field(default_factory=dict)

    @classmethod
    def of(cls, network: Network, kind: str = "custom", **extra: object) -> NetworkSummary:
        return cls(
            name=network.name,
            kind=kind,
            num_nodes=network.num_nodes,
            num_links=network.num_links,
            total_capacity=network.total_capacity(),
            extra=dict(extra),
        )
