"""Flow assignments (traffic distributions) over a network.

A *traffic distribution* in the paper is the aggregate flow vector
``f = (f_ij)`` together with its per-destination decomposition
``f^t = (f^t_ij)``.  :class:`FlowAssignment` stores both, checks the
multi-commodity flow constraints (1a)-(1c) and exposes the derived
quantities used throughout the evaluation (utilization, spare capacity,
maximum link utilization, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

import numpy as np

from .demands import TrafficMatrix
from .graph import Edge, Network, Node


class FlowError(ValueError):
    """Raised when a flow assignment violates the flow constraints."""


@dataclass
class FlowAssignment:
    """Aggregate and per-destination link flows for a network.

    Attributes
    ----------
    network:
        The network the flows live on.
    per_destination:
        Mapping ``destination -> link-index vector`` with the commodity flow
        ``f^t_ij`` destined to that node.
    """

    network: Network
    per_destination: dict[Node, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, network: Network, destinations: Iterable[Node] = ()) -> FlowAssignment:
        """An all-zero assignment with a vector for each destination."""
        flows = cls(network=network)
        for destination in destinations:
            flows.per_destination[destination] = np.zeros(network.num_links)
        return flows

    @classmethod
    def from_aggregate(cls, network: Network, aggregate: Mapping[Edge, float]) -> FlowAssignment:
        """Wrap an aggregate-only flow (no per-destination decomposition).

        The aggregate is stored under the pseudo destination ``None`` so that
        utilization-style metrics keep working; per-destination queries will
        fail, which is intended for flows produced by aggregate-level LPs.
        """
        vector = np.zeros(network.num_links)
        for edge, value in aggregate.items():
            vector[network.link_index(*edge)] = value
        return cls(network=network, per_destination={None: vector})

    def copy(self) -> FlowAssignment:
        return FlowAssignment(
            network=self.network,
            per_destination={t: vec.copy() for t, vec in self.per_destination.items()},
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def ensure_destination(self, destination: Node) -> np.ndarray:
        """The flow vector for ``destination``, creating it if missing."""
        if destination not in self.per_destination:
            self.per_destination[destination] = np.zeros(self.network.num_links)
        return self.per_destination[destination]

    def add_flow(self, destination: Node, source: Node, target: Node, amount: float) -> None:
        """Add ``amount`` of commodity ``destination`` on link ``source -> target``."""
        if amount < 0:
            raise FlowError(f"flow amount must be non-negative, got {amount}")
        vector = self.ensure_destination(destination)
        vector[self.network.link_index(source, target)] += amount

    def add_path_flow(self, destination: Node, path: list[Node], amount: float) -> None:
        """Add ``amount`` of commodity ``destination`` along ``path`` (a node list)."""
        for u, v in zip(path[:-1], path[1:], strict=True):
            self.add_flow(destination, u, v, amount)

    def scale(self, factor: float) -> FlowAssignment:
        """A copy with every flow multiplied by ``factor``."""
        if factor < 0:
            raise FlowError("flow scale factor must be non-negative")
        return FlowAssignment(
            network=self.network,
            per_destination={t: vec * factor for t, vec in self.per_destination.items()},
        )

    def __add__(self, other: FlowAssignment) -> FlowAssignment:
        if other.network is not self.network and other.network.edges != self.network.edges:
            raise FlowError("cannot add flows defined on different networks")
        result = self.copy()
        for destination, vector in other.per_destination.items():
            target = result.ensure_destination(destination)
            target += vector
        return result

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def destinations(self) -> list[Node]:
        return list(self.per_destination)

    def aggregate(self) -> np.ndarray:
        """Total flow ``f_ij`` per link (sum over destinations)."""
        total = np.zeros(self.network.num_links)
        for vector in self.per_destination.values():
            total += vector
        return total

    def aggregate_dict(self) -> dict[Edge, float]:
        """Aggregate flow as an ``{(u, v): f}`` mapping."""
        return self.network.weight_dict(self.aggregate())

    def flow_on(self, source: Node, target: Node, destination: Node | None = None) -> float:
        """Flow on a link, total or restricted to one destination commodity."""
        index = self.network.link_index(source, target)
        if destination is None:
            return float(self.aggregate()[index])
        vector = self.per_destination.get(destination)
        if vector is None:
            return 0.0
        return float(vector[index])

    def spare_capacity(self) -> np.ndarray:
        """Spare capacity ``s_ij = c_ij - f_ij`` per link."""
        return self.network.capacities - self.aggregate()

    def utilization(self) -> np.ndarray:
        """Link utilization ``f_ij / c_ij`` per link."""
        return self.aggregate() / self.network.capacities

    def utilization_dict(self) -> dict[Edge, float]:
        return self.network.weight_dict(self.utilization())

    def max_link_utilization(self) -> float:
        """The maximum link utilization (MLU)."""
        if self.network.num_links == 0:
            return 0.0
        return float(np.max(self.utilization()))

    def sorted_utilizations(self, descending: bool = True) -> np.ndarray:
        """Link utilizations sorted for the Fig. 9 style plots."""
        values = np.sort(self.utilization())
        return values[::-1] if descending else values

    def used_links(self, threshold: float = 1e-9) -> list[Edge]:
        """Links carrying more than ``threshold`` units of traffic."""
        aggregate = self.aggregate()
        return [
            link.endpoints
            for link in self.network.links
            if aggregate[link.index] > threshold
        ]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def is_capacity_feasible(self, tolerance: float = 1e-6) -> bool:
        """True when no link carries more than its capacity (within tolerance)."""
        return bool(np.all(self.aggregate() <= self.network.capacities + tolerance))

    def conservation_violation(self, demands: TrafficMatrix) -> float:
        """Largest violation of the flow conservation constraints (1b).

        Returns the maximum absolute imbalance across every (node,
        destination) pair, so 0 means the decomposition exactly routes the
        demands.
        """
        worst = 0.0
        by_destination = demands.by_destination()
        for destination, vector in self.per_destination.items():
            if destination is None:
                continue
            wanted = by_destination.get(destination, {})
            for node in self.network.nodes:
                if node == destination:
                    continue
                outgoing = sum(
                    vector[link.index] for link in self.network.out_links(node)
                )
                incoming = sum(
                    vector[link.index] for link in self.network.in_links(node)
                )
                imbalance = abs(outgoing - incoming - wanted.get(node, 0.0))
                worst = max(worst, imbalance)
        return worst

    def validate(self, demands: TrafficMatrix, tolerance: float = 1e-6) -> None:
        """Raise :class:`FlowError` unless constraints (1a)-(1c) hold."""
        for destination, vector in self.per_destination.items():
            if np.any(vector < -tolerance):
                raise FlowError(f"negative flow for destination {destination!r}")
        if not self.is_capacity_feasible(tolerance):
            overload = self.aggregate() - self.network.capacities
            worst = int(np.argmax(overload))
            link = self.network.link_by_index(worst)
            raise FlowError(
                f"capacity violated on {link.source}->{link.target}: "
                f"flow {self.aggregate()[worst]:.4f} > capacity {link.capacity:.4f}"
            )
        violation = self.conservation_violation(demands)
        if violation > tolerance:
            raise FlowError(f"flow conservation violated by {violation:.6f}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlowAssignment(network={self.network.name!r}, "
            f"destinations={len(self.per_destination)}, "
            f"mlu={self.max_link_utilization():.3f})"
        )
