"""Network substrate: graphs, demands, flows and shortest-path machinery."""

from .demands import Demand, DemandError, TrafficMatrix
from .flows import FlowAssignment, FlowError
from .graph import Link, Network, NetworkError, NetworkSummary
from .incidence import conservation_residual, demand_vector, incidence_matrix, reduced_system
from .spt import (
    DEFAULT_TOLERANCE,
    ShortestPathDag,
    UnreachableError,
    all_shortest_path_dags,
    as_weight_vector,
    distances_to,
    path_cost,
    shortest_path_dag,
    shortest_path_length,
    shortest_paths,
)

__all__ = [
    "Demand",
    "DemandError",
    "TrafficMatrix",
    "FlowAssignment",
    "FlowError",
    "Link",
    "Network",
    "NetworkError",
    "NetworkSummary",
    "conservation_residual",
    "demand_vector",
    "incidence_matrix",
    "reduced_system",
    "DEFAULT_TOLERANCE",
    "ShortestPathDag",
    "UnreachableError",
    "all_shortest_path_dags",
    "as_weight_vector",
    "distances_to",
    "path_cost",
    "shortest_path_dag",
    "shortest_path_length",
    "shortest_paths",
]
