"""Fig. 9: sorted link utilizations of OSPF vs SPEF on Abilene and Cernet2."""

import pytest

from bench_utils import run_once
from repro.analysis.experiments import fig9_sorted_utilizations


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("instance_name", ["Abilene", "Cernet2"])
def test_fig9_sorted_utilization(benchmark, instances, figure_recorder, instance_name):
    instance = instances[instance_name]
    series = run_once(benchmark, fig9_sorted_utilizations, instance)
    load = 0.85 * instance.saturation_load()
    figure_recorder.add(
        {
            "workload": "fig9-sorted-utilization",
            "topology": instance_name,
            "network_load": round(load, 6),
            "sorted_utilization": series,
        }
    )

    ospf, spef = series["OSPF"], series["SPEF"]
    assert len(ospf) == len(spef) == instance.network.num_links

    # The curves are sorted in decreasing order.
    assert ospf == sorted(ospf, reverse=True)
    assert spef == sorted(spef, reverse=True)

    # SPEF's hottest link is no hotter than OSPF's and stays within capacity.
    assert spef[0] <= ospf[0] + 1e-9
    assert spef[0] < 1.0

    # SPEF moves traffic from over-utilized onto under-utilized links: the
    # utilization spread (hottest minus coldest used link) shrinks.
    def spread(values):
        return values[0] - values[-1]

    assert spread(spef) <= spread(ospf) + 1e-9
