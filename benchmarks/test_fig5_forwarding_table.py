"""Fig. 5 / Table II: the SPEF forwarding table for destination 2 on the Fig. 4 example."""

import pytest

from bench_utils import run_once
from repro.analysis.experiments import fig5_forwarding_table


@pytest.mark.benchmark(group="fig5")
def test_fig5_forwarding_table(benchmark, figure_recorder):
    result = run_once(benchmark, fig5_forwarding_table, 1.0, 2)
    rows = result["rows"]
    figure_recorder.add(
        {
            "workload": "fig5-forwarding-table",
            "destination": 2,
            "entries": [
                {key: row[key] for key in
                 ("node", "destination", "next_hop", "num_paths", "split_ratio")}
                for row in rows
            ],
        }
    )

    solution = result["solution"]
    # Every router that can reach destination 2 holds an entry, every entry's
    # split ratios form a probability distribution, and the path lengths are
    # measured under the second weights (non-negative).
    nodes_with_entries = {row["node"] for row in rows}
    assert 1 in nodes_with_entries
    per_node = {}
    for row in rows:
        per_node.setdefault(row["node"], 0.0)
        per_node[row["node"]] += row["split_ratio"]
        assert row["num_paths"] >= 1
        assert all(length >= 0 for length in row["path_lengths"])
    for node, total in per_node.items():
        assert total == pytest.approx(1.0, abs=1e-6), f"split ratios at node {node}"

    # The realised flows implement optimal TE on this example.
    assert solution.optimality_gap() == pytest.approx(0.0, abs=1e-3)
