"""Table I: weights and link utilizations on the Fig. 1 topology.

Regenerates the rows of Table I -- the optimal weights and resulting link
utilizations on the 4-link example for beta=0, beta=1, Fortz-Thorup optimised
weights and min-max MLU routing.
"""

import pytest

from bench_utils import run_once
from repro.analysis.experiments import table1_weights_and_utilizations
from repro.analysis.reporting import format_table, print_report


@pytest.mark.benchmark(group="table1")
def test_table1_weights_and_utilizations(benchmark):
    rows = run_once(benchmark, table1_weights_and_utilizations)
    print_report(format_table(rows, title="Table I -- Fig. 1 example, weights and utilizations"))

    by_objective = {}
    for row in rows:
        by_objective.setdefault(row["objective"], {})[row["link"]] = row

    # beta = 1 column: the exact Table I values.
    beta1 = by_objective["beta=1"]
    assert beta1["1->3"]["weight"] == pytest.approx(3.0, rel=0.02)
    assert beta1["3->4"]["weight"] == pytest.approx(10.0, rel=0.02)
    assert beta1["1->2"]["weight"] == pytest.approx(1.5, rel=0.02)
    assert beta1["1->3"]["utilization"] == pytest.approx(2 / 3, abs=5e-3)
    assert beta1["3->4"]["utilization"] == pytest.approx(0.9, abs=1e-6)

    # beta = 0 column: direct link saturated, detour unused.
    beta0 = by_objective["beta=0"]
    assert beta0["1->3"]["utilization"] == pytest.approx(1.0, abs=1e-6)
    assert beta0["1->2"]["utilization"] == pytest.approx(0.0, abs=1e-6)

    # Fortz-Thorup column: optimised weights avoid saturating any link.
    ft = by_objective["Fortz-Thorup"]
    assert max(row["utilization"] for row in ft.values()) <= 1.0 + 1e-9

    # min-max MLU column: MLU is 0.9 and the detour shares the (1,3) demand.
    mlu = by_objective["min-max MLU"]
    assert max(row["utilization"] for row in mlu.values()) == pytest.approx(0.9, abs=1e-4)
    assert mlu["1->2"]["utilization"] == pytest.approx(mlu["2->3"]["utilization"], abs=1e-6)
