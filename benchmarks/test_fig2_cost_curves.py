"""Fig. 2: link cost as a function of load for FT and the (1, beta) objectives."""

import numpy as np
import pytest

from bench_utils import run_once
from repro.analysis.experiments import fig2_cost_curves


@pytest.mark.benchmark(group="fig2")
def test_fig2_cost_curves(benchmark, figure_recorder):
    loads = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95]
    curves = run_once(benchmark, fig2_cost_curves, loads)
    series = {name: values for name, values in curves.items() if name != "load"}
    figure_recorder.add(
        {
            "workload": "fig2-cost-curves",
            "load": curves["load"],
            "series": series,
        }
    )

    # All curves start at zero cost and increase with load.
    for name, values in series.items():
        finite = [v for v in values if np.isfinite(v)]
        assert finite[0] == pytest.approx(0.0, abs=1e-9)
        assert all(a <= b + 1e-12 for a, b in zip(finite, finite[1:])), name

    # beta = 0 is linear in load; beta = 2 grows faster than beta = 1 near
    # saturation; FT explodes past 90% utilization (slope 500 segment).
    assert series["beta=0"][-1] == pytest.approx(0.95, abs=1e-9)
    assert series["beta=2"][-1] > series["beta=1"][-1] > series["beta=0"][-1]
    # The FT cost accelerates sharply past 90% utilization (slope jumps from
    # 10 to 70): the last 5% of load costs more than the preceding 10%.
    index_08 = loads.index(0.8)
    index_09 = loads.index(0.9)
    assert (series["FT"][-1] - series["FT"][index_09]) > (
        series["FT"][index_09] - series["FT"][index_08]
    )
