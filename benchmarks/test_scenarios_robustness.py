"""Scenario engine: failure-sweep robustness of SPEF vs OSPF, batch-evaluated.

Beyond the paper's intact-topology figures: every single-trunk failure of
Abilene (and a compact mixed suite on a Rocketfuel-profile ISP) is routed
with OSPF and SPEF through the cached parallel batch runner, with the
re-optimised min-max LP as the regret oracle.  Run with ``-s`` to see the
worst-case / CVaR robustness tables; ``REPRO_FULL_BENCH=1`` adds sampled
dual-failure and demand-ensemble sweeps.
"""

import time

import pytest

from bench_utils import full_bench, run_once
from repro.analysis.experiments import scenario_robustness_sweep
from repro.analysis.reporting import format_regret, format_robustness_summary, print_report
from repro.scenarios import (
    dual_link_failures,
    gravity_noise_ensemble,
    hotspot_surge_ensemble,
    single_link_failures,
)


def _summary_of(sweep, protocol):
    return next(row for row in sweep["summary"] if row["protocol"].startswith(protocol))


@pytest.mark.scenarios
@pytest.mark.benchmark(group="scenarios")
def test_abilene_single_link_failure_sweep_spef_vs_ospf(
    benchmark, abilene_instance, abilene_link_failures, scenario_runner
):
    """Acceptance sweep: all Abilene trunk failures, SPEF vs OSPF, cached."""
    network = abilene_instance.network
    demands = abilene_instance.at_fraction(0.5)

    start = time.perf_counter()
    sweep = run_once(
        benchmark,
        scenario_robustness_sweep,
        network,
        demands,
        scenarios=abilene_link_failures,
        protocols=("OSPF", "SPEF"),
        runner=scenario_runner,
        cvar_alpha=0.2,
    )
    cold = time.perf_counter() - start

    # Second pass: identical sweep served from the warm on-disk cache.
    start = time.perf_counter()
    warm_sweep = scenario_robustness_sweep(
        network,
        demands,
        scenarios=abilene_link_failures,
        protocols=("OSPF", "SPEF"),
        runner=scenario_runner,
        cvar_alpha=0.2,
    )
    warm = time.perf_counter() - start

    print_report(
        f"Abilene single-trunk failure sweep at 50% saturation load: "
        f"{scenario_runner.last_stats.total} evaluations, "
        f"cold {cold:.2f}s vs warm {warm:.2f}s ({cold / warm:.0f}x)",
        format_robustness_summary(sweep["summary"]),
        format_regret(sweep["regret"], worst=6),
    )

    # Every (scenario, protocol) cell completed end-to-end.
    scenario_count = len(abilene_link_failures) + 1  # + baseline
    assert len(sweep["results"]) == 2 * scenario_count
    assert all(r.error is None for r in sweep["results"])

    # Warm cache: everything is a hit and the run is >= 5x faster.
    assert scenario_runner.last_stats.hit_rate == 1.0
    assert warm < cold / 5.0, f"warm cache run only {cold / warm:.1f}x faster"
    assert [r.as_row() for r in warm_sweep["results"]] == [
        r.as_row() for r in sweep["results"]
    ]

    # Robustness reporting carries worst-case and CVaR columns per protocol.
    ospf, spef = _summary_of(sweep, "OSPF"), _summary_of(sweep, "SPEF")
    for row in (ospf, spef):
        assert row["scenarios"] == scenario_count
        assert row["worst_mlu"] >= row["mean_mlu"] > 0
        assert row["cvar20_mlu"] >= row["median_mlu"]
        assert row["worst_scenario"].startswith("link:")

    # SPEF (re-optimised per scenario) beats OSPF across the distribution:
    # on average, in the tail, and in the worst case.
    assert spef["mean_mlu"] < ospf["mean_mlu"]
    assert spef["cvar20_mlu"] <= ospf["cvar20_mlu"] + 1e-9
    assert spef["worst_mlu"] <= ospf["worst_mlu"] + 1e-9

    # SPEF optimises the (1, beta) utility rather than MLU itself, so its
    # MLU-regret vs the min-max oracle is small but not exactly 1; OSPF's
    # regret is markedly larger.
    assert spef["mean_regret"] < ospf["mean_regret"]
    assert spef["mean_regret"] < 1.3

    # At 50% of saturation every single failure stays connected on Abilene
    # (it is 2-edge-connected) and feasible, so no demand is silently dropped.
    assert all(r.connected for r in sweep["results"])


@pytest.mark.scenarios
@pytest.mark.benchmark(group="scenarios")
def test_rocketfuel_mixed_scenario_sweep(benchmark, rocketfuel_instance, scenario_runner):
    """A compact mixed suite (failures + demand ensembles) on AS6461."""
    network = rocketfuel_instance.network
    demands = rocketfuel_instance.base_demands
    scenarios = (
        single_link_failures(network)[:4]
        + dual_link_failures(network, limit=2, seed=7)
        + gravity_noise_ensemble(demands, size=2, sigma=0.3, seed=11)
        + hotspot_surge_ensemble(demands, size=2, surge=2.5, seed=13)
    )
    if full_bench():
        scenarios = single_link_failures(network) + scenarios

    sweep = run_once(
        benchmark,
        scenario_robustness_sweep,
        network,
        demands,
        scenarios=scenarios,
        protocols=("OSPF", "SPEF"),
        runner=scenario_runner,
    )
    print_report(
        f"{network.name} mixed scenario sweep ({len(scenarios)} scenarios)",
        format_robustness_summary(sweep["summary"]),
    )

    assert all(r.error is None for r in sweep["results"])
    kinds = {r.kind for r in sweep["results"]}
    assert {"baseline", "link-failure", "demand"} <= kinds

    ospf, spef = _summary_of(sweep, "OSPF"), _summary_of(sweep, "SPEF")
    assert spef["mean_mlu"] < ospf["mean_mlu"]
    assert spef["mean_regret"] < ospf["mean_regret"]

    # Demand-only scenarios never disconnect anything.
    assert all(r.connected for r in sweep["results"] if r.kind == "demand")


@pytest.mark.scenarios
@pytest.mark.benchmark(group="scenarios")
def test_abilene_node_failures_drop_traffic_but_route_the_rest(
    benchmark, abilene_instance, scenario_runner
):
    """Node outages: dropped volume is accounted, the remainder still routes."""
    from repro.scenarios import node_failures

    network = abilene_instance.network
    demands = abilene_instance.at_fraction(0.6)
    scenarios = node_failures(network)

    sweep = run_once(
        benchmark,
        scenario_robustness_sweep,
        network,
        demands,
        scenarios=scenarios,
        protocols=("OSPF",),
        runner=scenario_runner,
        include_baseline=False,
    )
    print_report(
        "Abilene node-failure sweep (OSPF)",
        format_robustness_summary(sweep["summary"]),
    )

    results = sweep["results"]
    assert len(results) == network.num_nodes
    # Every node terminates or originates traffic, so each outage drops some.
    assert all(r.dropped_volume > 0 for r in results)
    assert all(not r.connected for r in results)
    # What survives must still be routable end-to-end.
    assert all(r.error is None for r in results)
    total = demands.total_volume()
    assert all(r.routed_volume + r.dropped_volume == pytest.approx(total) for r in results)
