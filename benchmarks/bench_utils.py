"""Helpers shared by the benchmark modules (kept out of conftest for clean imports)."""

from __future__ import annotations

import os


def full_bench() -> bool:
    """True when the user asked for the full (slow) benchmark sweeps."""
    return os.environ.get("REPRO_FULL_BENCH", "0") not in ("", "0", "false", "False")


def smoke_bench() -> bool:
    """True in CI smoke mode: tiny workloads, no wall-clock assertions.

    The CI benchmark smoke job sets ``REPRO_BENCH_SMOKE=1`` so the perf-path
    modules stay import- and correctness-checked on every push without
    asserting timing ratios on noisy shared runners.
    """
    return os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0", "false", "False")


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments are deterministic and relatively slow, so a single round
    gives a meaningful wall-clock figure without multiplying the suite's
    runtime.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
