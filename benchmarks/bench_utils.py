"""Helpers shared by the benchmark modules (kept out of conftest for clean imports)."""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Union


def full_bench() -> bool:
    """True when the user asked for the full (slow) benchmark sweeps."""
    return os.environ.get("REPRO_FULL_BENCH", "0") not in ("", "0", "false", "False")


def smoke_bench() -> bool:
    """True in CI smoke mode: tiny workloads, no wall-clock assertions.

    The CI benchmark smoke job sets ``REPRO_BENCH_SMOKE=1`` so the perf-path
    modules stay import- and correctness-checked on every push without
    asserting timing ratios on noisy shared runners.
    """
    return os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0", "false", "False")


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments are deterministic and relatively slow, so a single round
    gives a meaningful wall-clock figure without multiplying the suite's
    runtime.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


class BenchRecorder:
    """Collect one benchmark module's records and persist them.

    Two sinks, one source of truth:

    * every run — smoke or full — is recorded in the
      :class:`repro.results.ResultsStore` (``$REPRO_RESULTS_DB`` or the
      default store) with a manifest carrying git sha, package version and
      the smoke/full flags, so CI can ``repro results diff`` a fresh smoke
      run against the committed views;
    * full-mode runs additionally re-export the committed ``BENCH_*.json``
      artifact as a *view* over the recorded run
      (:meth:`~repro.results.ResultsStore.export_bench_view`), never as a
      hand-assembled payload.  Smoke runs keep the committed artifact.

    ``artifact=None`` records into the store without a committed view —
    how the per-figure modules persist their series (query them with
    ``repro results query --benchmark paper-figures``).

    ``view_flag_keys`` pins the artifact's top-level flag keys to the
    committed layout of each view (``BENCH_routing.json`` has only
    ``full_bench``; ``BENCH_online.json`` also has ``smoke_bench``).
    """

    def __init__(
        self,
        benchmark: str,
        artifact: Union[Path, str, None],
        view_flag_keys=("full_bench",),
    ):
        self.benchmark = benchmark
        self.artifact = Path(artifact) if artifact is not None else None
        self.view_flag_keys = tuple(view_flag_keys)
        self.records: List[Dict[str, object]] = []

    def add(self, entry: Dict[str, object]) -> None:
        self.records.append(entry)

    def finalize(self) -> Optional[str]:
        """Record the run in the store and (full mode) re-export the view.

        Returns the recorded run id, or ``None`` when no records were
        collected (e.g. the measurement tests were deselected or failed).
        """
        if not self.records:
            return None
        from repro.results import ResultsStore, RunManifest

        flags = {"full_bench": full_bench(), "smoke_bench": smoke_bench()}
        view_flags = {key: flags[key] for key in self.view_flag_keys}
        manifest = RunManifest.create(
            kind="bench",
            benchmark=self.benchmark,
            config={**flags, "view_flags": view_flags, "records": len(self.records)},
        )
        with ResultsStore() as store:
            run_id = store.record_run(manifest, self.records)
            if self.artifact is not None and full_bench() and not smoke_bench():
                store.export_bench_view(self.benchmark, run=run_id, path=self.artifact)
        return run_id
