"""Fig. 10: normalised utility of SPEF vs OSPF across network loads.

By default a representative subset of the seven topologies is swept (set
``REPRO_FULL_BENCH=1`` for all of them).  The paper's claim: SPEF's utility is
at least OSPF's everywhere, the gap widens as the load grows, and SPEF keeps
working (finite utility) at loads where OSPF's MLU exceeds 1.
"""

import pytest

from bench_utils import run_once
from repro.analysis.experiments import fig10_utility_sweep


@pytest.mark.benchmark(group="fig10")
def test_fig10_utility_vs_load(benchmark, instances, figure_recorder, fig10_instance_names):
    def sweep_all():
        return {
            name: fig10_utility_sweep(instances[name])
            for name in fig10_instance_names
        }

    results = run_once(benchmark, sweep_all)

    for name, series in results.items():
        figure_recorder.add(
            {
                "workload": "fig10-utility-vs-load",
                "topology": name,
                "load": series["load"],
                "OSPF": series["OSPF"],
                "SPEF": series["SPEF"],
            }
        )

    for name, series in results.items():
        ospf, spef = series["OSPF"], series["SPEF"]
        # SPEF is finite at every swept load (the sweep stops at the
        # saturation point by construction).
        assert all(value > float("-inf") for value in spef), name
        # SPEF's utility is never worse than OSPF's.
        for o, s in zip(ospf, spef):
            if o == float("-inf"):
                continue
            assert s >= o - 1e-6, name
        # The gap is non-trivial at the highest load on at least one network.
    gaps = []
    for name, series in results.items():
        o, s = series["OSPF"][-1], series["SPEF"][-1]
        gaps.append(float("inf") if o == float("-inf") else s - o)
    assert max(gaps) > 0.1
