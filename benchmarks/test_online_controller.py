"""Online-controller speed regression: incremental failure sweeps vs cold.

The ISSUE-3 acceptance workload: a single-link-failure sweep on the rand100
topology (100 nodes, ~400 links, all-pairs gravity demands) routed with
even-ECMP OSPF weights.  Three paths compute identical link loads:

* **cold (evaluate_scenario)** — the scenario engine's pre-existing path:
  ``scenario.apply`` (network copy + reachability) followed by a full
  ``OSPF().route`` on the perturbed instance, per scenario;
* **cold (sparse rebuild)** — rebuild the sparse routing state from scratch
  per scenario: all destination Dijkstras, CSR compilation, propagation;
* **incremental** — the online :class:`~repro.online.TEController` replays
  each failure as events (Ramalingam–Reps delta updates on the dynamic
  SPTs), re-routes only the affected destinations, and reverts.

The acceptance bar asserts the incremental sweep is >= 3x faster than both
cold paths (relaxed on CI runners) with link loads identical to 1e-9; the
numbers are recorded in the results store (``$REPRO_RESULTS_DB``; see
:mod:`repro.results`) and — in full mode — re-exported as the
``BENCH_online.json`` view at the repository root so regressions are
diffable across PRs with ``repro results diff``.  ``REPRO_FULL_BENCH=1``
sweeps every trunk; ``REPRO_BENCH_SMOKE=1`` runs a tiny correctness-only
pass.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from bench_utils import BenchRecorder, full_bench, smoke_bench

from repro.online.controller import TEController
from repro.protocols.ospf import invcap_weights
from repro.routing import SparseRouter
from repro.scenarios import single_link_failures
from repro.scenarios.runner import ProtocolSpec, evaluate_scenario
from repro.topology.generators import rand100
from repro.traffic.gravity import gravity_traffic_matrix

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_online.json"

#: Wall-clock assertions are relaxed on shared CI runners (GitHub sets
#: CI=true) and skipped entirely in smoke mode.
ON_CI = bool(os.environ.get("CI"))

#: Trunks swept by default / under REPRO_FULL_BENCH / under smoke mode.
DEFAULT_SCENARIOS = 40
SMOKE_SCENARIOS = 6

_recorder = BenchRecorder(
    "online-controller", ARTIFACT, view_flag_keys=("full_bench", "smoke_bench")
)


def _bar(local: float, ci: float) -> float:
    return ci if ON_CI else local


def _workload():
    network = rand100()
    demands = gravity_traffic_matrix(network, total_volume=0.1 * network.total_capacity())
    scenarios = single_link_failures(network)
    if smoke_bench():
        scenarios = scenarios[:SMOKE_SCENARIOS]
    elif not full_bench():
        scenarios = scenarios[:DEFAULT_SCENARIOS]
    return network, demands, scenarios


def _map_to_base(network, instance, loads: np.ndarray) -> np.ndarray:
    """Perturbed-network loads re-indexed onto the base network's links."""
    mapped = np.zeros(network.num_links)
    for link in instance.network.links:
        mapped[network.link_index(link.source, link.target)] = loads[link.index]
    return mapped


def test_incremental_failure_sweep_speedup():
    """The headline bar: incremental sweep >= 3x vs cold recompute on rand100."""
    network, demands, scenarios = _workload()
    weights = invcap_weights(network)
    weight_map = network.weight_dict(weights)
    spec = ProtocolSpec.of("OSPF")

    # Cold path 1: the scenario engine's per-cell evaluation (apply + route).
    start = time.perf_counter()
    cold_results = [
        evaluate_scenario(network, demands, scenario, spec) for scenario in scenarios
    ]
    cold_eval_seconds = time.perf_counter() - start

    # Cold path 2: rebuild the sparse routing state from scratch per scenario.
    start = time.perf_counter()
    cold_loads = []
    for scenario in scenarios:
        instance = scenario.apply(network, demands)
        pruned_weights = {
            link.endpoints: weight_map[link.endpoints] for link in instance.network.links
        }
        router = SparseRouter(instance.network, weights=pruned_weights, mode="ecmp")
        cold_loads.append((instance, router.route(instance.demands).aggregate()))
    cold_sparse_seconds = time.perf_counter() - start

    # Incremental: one controller, delta updates per trunk, revert after each.
    incremental_seconds = float("inf")
    for _ in range(2):  # best of two: the incremental path is jitter-prone
        start = time.perf_counter()
        controller = TEController(network, demands, weights=weights)
        measurements = controller.sweep_pure_failures(scenarios)
        incremental_seconds = min(incremental_seconds, time.perf_counter() - start)

    residual = max(
        float(np.max(np.abs(_map_to_base(network, instance, loads) - measurement.loads)))
        for (instance, loads), measurement in zip(cold_loads, measurements)
    )
    mlu_residual = max(
        abs(cold.mlu - measurement.mlu)
        for cold, measurement in zip(cold_results, measurements)
    )

    stats = controller.spt.stats
    entry = {
        "topology": "rand100",
        "workload": "single-link-failure sweep (OSPF InvCap, even ECMP)",
        "nodes": network.num_nodes,
        "links": network.num_links,
        "demand_pairs": len(demands),
        "scenarios": len(scenarios),
        "cold_evaluate_scenario_seconds": round(cold_eval_seconds, 6),
        "cold_sparse_rebuild_seconds": round(cold_sparse_seconds, 6),
        "incremental_seconds": round(incremental_seconds, 6),
        "speedup_vs_evaluate_scenario": round(cold_eval_seconds / incremental_seconds, 2),
        "speedup_vs_sparse_rebuild": round(cold_sparse_seconds / incremental_seconds, 2),
        "max_abs_load_diff": residual,
        "max_abs_mlu_diff": mlu_residual,
        "dspt": {
            "events": stats.events,
            "incremental_updates": stats.incremental_updates,
            "full_rebuilds": stats.full_rebuilds,
            "destinations_changed": stats.destinations_changed,
            "nodes_recomputed": stats.nodes_recomputed,
        },
    }
    _recorder.add(entry)
    print(
        f"\n[rand100/failure-sweep] {len(scenarios)} scenarios: "
        f"cold(evaluate) {cold_eval_seconds:.2f}s, "
        f"cold(sparse) {cold_sparse_seconds:.2f}s, "
        f"incremental {incremental_seconds:.2f}s "
        f"-> {entry['speedup_vs_evaluate_scenario']}x / "
        f"{entry['speedup_vs_sparse_rebuild']}x, residual {residual:.2e}"
    )

    assert residual <= 1e-9, "incremental and cold link loads diverged"
    assert mlu_residual <= 1e-9, "incremental and cold MLU diverged"
    for cold, measurement in zip(cold_results, measurements):
        assert cold.connected == measurement.connected
        assert abs(cold.dropped_volume - measurement.dropped_volume) <= 1e-9
    if smoke_bench():
        return
    assert entry["speedup_vs_evaluate_scenario"] >= _bar(3.0, 1.2), (
        f"incremental sweep regressed to {entry['speedup_vs_evaluate_scenario']}x "
        "vs the cold evaluate_scenario path (< 3x acceptance bar)"
    )
    assert entry["speedup_vs_sparse_rebuild"] >= _bar(3.0, 1.2), (
        f"incremental sweep regressed to {entry['speedup_vs_sparse_rebuild']}x "
        "vs the cold sparse rebuild (< 3x acceptance bar)"
    )


def test_warm_start_reoptimization_speedup():
    """Warm-started Fortz-Thorup search needs far fewer evaluations."""
    from repro.protocols.fortz_thorup import FortzThorup
    from repro.topology.backbones import abilene_network
    from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix

    network = abilene_network()
    demands = abilene_traffic_matrix(network, total_volume=1.0, seed=1).scaled(
        0.12 * network.total_capacity()
    )
    budget = 30 if smoke_bench() else 300
    def make():
        return FortzThorup(restarts=1, seed=0, max_evaluations=budget)

    cold = make().optimize(network, demands)
    drifted = demands.scaled(1.02)
    recold = make().optimize(network, drifted)
    warm = make().optimize(network, drifted, warm_start=cold.weights)
    entry = {
        "topology": "abilene",
        "workload": "Fortz-Thorup reoptimization after 2% demand drift",
        "cold_evaluations": recold.evaluations,
        "warm_evaluations": warm.evaluations,
        "evaluation_ratio": round(recold.evaluations / max(warm.evaluations, 1), 2),
        "cold_cost": recold.cost,
        "warm_cost": warm.cost,
    }
    _recorder.add(entry)
    print(
        f"\n[abilene/reoptimize] cold {recold.evaluations} evals, "
        f"warm {warm.evaluations} evals ({entry['evaluation_ratio']}x fewer), "
        f"costs {recold.cost:.2f} vs {warm.cost:.2f}"
    )
    if smoke_bench():
        return
    assert warm.evaluations < recold.evaluations
    assert warm.cost <= recold.cost * 1.10


def test_zz_write_artifact():
    """Record this run in the results store; re-export the view in full mode.

    Smoke runs are recorded in the store (CI diffs them against the
    committed view) but never overwrite ``BENCH_online.json``.
    """
    if not _recorder.records:
        pytest.skip("no benchmark records collected in this run")
    run_id = _recorder.finalize()
    print(f"\n[online-controller] recorded run {run_id}")
    assert run_id is not None
    if not smoke_bench():
        assert ARTIFACT.exists()
