"""Online-controller speed regression: incremental scenario sweeps vs cold.

Four workloads pin the online controller's acceptance bars:

* **single-link-failure sweep** (rand100, all-pairs gravity demands,
  even-ECMP OSPF InvCap weights) — the incremental sweep must be >= 3x
  faster than both cold paths (``evaluate_scenario`` and a from-scratch
  sparse rebuild) with link loads identical to 1e-9, and at most a
  quarter of the events may fall back to full rebuilds;
* **rand500 single-link-failure sweep** — the Rocketfuel-scale bar:
  >= 10x steady-state vs cold ``evaluate_scenario`` (one-time setup
  recorded apart, since shared baselines amortize it across workers)
  with loads matching to 1e-12;
* **capacity-degradation sweep** (rand100, MinHop weights — capacity
  brown-outs only ride the incremental path under capacity-independent
  weights) — >= 2x faster than cold ``evaluate_scenario`` with loads
  matching to 1e-12: a brown-out leaves forwarding untouched, so the
  incremental path pays almost nothing per scenario;
* **closed-loop reoptimization replay** (Abilene core-trunk outages) —
  the thresholded :class:`~repro.online.policy.ClosedLoopPolicy` must beat
  the no-reoptimization baseline on worst-case sustained MLU, at a small
  fraction of the every-event oracle's reoptimization count.

The numbers are recorded in the results store (``$REPRO_RESULTS_DB``; see
:mod:`repro.results`) and — outside smoke mode — re-exported as the
``BENCH_online.json`` view at the repository root so regressions are
diffable across PRs with ``repro results diff``.  ``REPRO_FULL_BENCH=1``
sweeps every trunk; ``REPRO_BENCH_SMOKE=1`` runs a tiny correctness-only
pass.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from bench_utils import BenchRecorder, full_bench, smoke_bench

from repro.online.controller import TEController
from repro.protocols.ospf import invcap_weights
from repro.routing import SparseRouter
from repro.scenarios import single_link_failures
from repro.scenarios.runner import ProtocolSpec, evaluate_scenario
from repro.topology.generators import rand100, rand500
from repro.traffic.gravity import gravity_traffic_matrix

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_online.json"

#: Wall-clock assertions are relaxed on shared CI runners (GitHub sets
#: CI=true) and skipped entirely in smoke mode.
ON_CI = bool(os.environ.get("CI"))

#: Trunks swept by default / under REPRO_FULL_BENCH / under smoke mode.
DEFAULT_SCENARIOS = 40
SMOKE_SCENARIOS = 6

_recorder = BenchRecorder(
    "online-controller", ARTIFACT, view_flag_keys=("full_bench", "smoke_bench")
)


def _bar(local: float, ci: float) -> float:
    return ci if ON_CI else local


def _workload():
    network = rand100()
    demands = gravity_traffic_matrix(network, total_volume=0.1 * network.total_capacity())
    scenarios = single_link_failures(network)
    if smoke_bench():
        scenarios = scenarios[:SMOKE_SCENARIOS]
    elif not full_bench():
        scenarios = scenarios[:DEFAULT_SCENARIOS]
    return network, demands, scenarios


def _map_to_base(network, instance, loads: np.ndarray) -> np.ndarray:
    """Perturbed-network loads re-indexed onto the base network's links."""
    mapped = np.zeros(network.num_links)
    for link in instance.network.links:
        mapped[network.link_index(link.source, link.target)] = loads[link.index]
    return mapped


def test_incremental_failure_sweep_speedup():
    """The headline bar: incremental sweep >= 3x vs cold recompute on rand100."""
    network, demands, scenarios = _workload()
    weights = invcap_weights(network)
    weight_map = network.weight_dict(weights)
    spec = ProtocolSpec.of("OSPF")

    # Cold path 1: the scenario engine's per-cell evaluation (apply + route).
    start = time.perf_counter()
    cold_results = [
        evaluate_scenario(network, demands, scenario, spec) for scenario in scenarios
    ]
    cold_eval_seconds = time.perf_counter() - start

    # Cold path 2: rebuild the sparse routing state from scratch per scenario.
    start = time.perf_counter()
    cold_loads = []
    for scenario in scenarios:
        instance = scenario.apply(network, demands)
        pruned_weights = {
            link.endpoints: weight_map[link.endpoints] for link in instance.network.links
        }
        router = SparseRouter(instance.network, weights=pruned_weights, mode="ecmp")
        cold_loads.append((instance, router.route(instance.demands).aggregate()))
    cold_sparse_seconds = time.perf_counter() - start

    # Incremental: one controller, delta updates per trunk, revert after each.
    incremental_seconds = float("inf")
    for _ in range(2):  # best of two: the incremental path is jitter-prone
        start = time.perf_counter()
        controller = TEController(network, demands, weights=weights)
        measurements = controller.sweep_pure_failures(scenarios)
        incremental_seconds = min(incremental_seconds, time.perf_counter() - start)

    residual = max(
        float(np.max(np.abs(_map_to_base(network, instance, loads) - measurement.loads)))
        for (instance, loads), measurement in zip(cold_loads, measurements)
    )
    mlu_residual = max(
        abs(cold.mlu - measurement.mlu)
        for cold, measurement in zip(cold_results, measurements)
    )

    stats = controller.spt.stats
    entry = {
        "topology": "rand100",
        "workload": "single-link-failure sweep (OSPF InvCap, even ECMP)",
        "nodes": network.num_nodes,
        "links": network.num_links,
        "demand_pairs": len(demands),
        "scenarios": len(scenarios),
        "cold_evaluate_scenario_seconds": round(cold_eval_seconds, 6),
        "cold_sparse_rebuild_seconds": round(cold_sparse_seconds, 6),
        "incremental_seconds": round(incremental_seconds, 6),
        "speedup_vs_evaluate_scenario": round(cold_eval_seconds / incremental_seconds, 2),
        "speedup_vs_sparse_rebuild": round(cold_sparse_seconds / incremental_seconds, 2),
        "max_abs_load_diff": residual,
        "max_abs_mlu_diff": mlu_residual,
        "dspt": {
            "events": stats.events,
            "incremental_updates": stats.incremental_updates,
            # full_rebuilds = initial_builds + event_fallbacks: the one-time
            # per-destination construction cost vs the rebuilds actually
            # charged to events.  Only the latter is waste.
            "full_rebuilds": stats.full_rebuilds,
            "initial_builds": stats.initial_builds,
            "event_fallbacks": stats.event_fallbacks,
            "fallback_cone": stats.fallback_cone,
            "fallback_plateau": stats.fallback_plateau,
            "event_fallback_rate": round(stats.event_fallback_rate, 6),
            "destinations_changed": stats.destinations_changed,
            "nodes_recomputed": stats.nodes_recomputed,
        },
    }
    _recorder.add(entry)
    print(
        f"\n[rand100/failure-sweep] {len(scenarios)} scenarios: "
        f"cold(evaluate) {cold_eval_seconds:.2f}s, "
        f"cold(sparse) {cold_sparse_seconds:.2f}s, "
        f"incremental {incremental_seconds:.2f}s "
        f"-> {entry['speedup_vs_evaluate_scenario']}x / "
        f"{entry['speedup_vs_sparse_rebuild']}x, residual {residual:.2e}"
    )

    assert residual <= 1e-9, "incremental and cold link loads diverged"
    assert mlu_residual <= 1e-9, "incremental and cold MLU diverged"
    for cold, measurement in zip(cold_results, measurements):
        assert cold.connected == measurement.connected
        assert abs(cold.dropped_volume - measurement.dropped_volume) <= 1e-9
    assert stats.event_fallbacks <= stats.events // 4, (
        f"{stats.event_fallbacks} of {stats.events} events fell back to full "
        "rebuilds (> 25% acceptance bar: the fallback triggers are over-firing)"
    )
    if smoke_bench():
        return
    assert entry["speedup_vs_evaluate_scenario"] >= _bar(3.0, 1.2), (
        f"incremental sweep regressed to {entry['speedup_vs_evaluate_scenario']}x "
        "vs the cold evaluate_scenario path (< 3x acceptance bar)"
    )
    assert entry["speedup_vs_sparse_rebuild"] >= _bar(3.0, 1.2), (
        f"incremental sweep regressed to {entry['speedup_vs_sparse_rebuild']}x "
        "vs the cold sparse rebuild (< 3x acceptance bar)"
    )


def test_rand500_incremental_sweep_speedup():
    """Rocketfuel-scale bar: incremental sweep >= 10x vs cold on rand500.

    500 nodes / 2000 directed links is the size class of the reduced
    router-level Rocketfuel maps (AS1239 is 315/1944); the auto-tuned
    ``max_affected_fraction`` (dense class: 0.9), the scoped plateau check
    and the delta-load kernel together must keep the sweep an order of
    magnitude ahead of per-scenario cold evaluation, with loads matching
    to 1e-12.  Smoke mode runs 3 scenarios, correctness-only.
    """
    network = rand500()
    demands = gravity_traffic_matrix(network, total_volume=0.1 * network.total_capacity())
    count = 3 if smoke_bench() else (24 if full_bench() else 10)
    scenarios = single_link_failures(network)[:count]
    weights = invcap_weights(network)
    spec = ProtocolSpec.of("OSPF")

    start = time.perf_counter()
    cold_results = [
        evaluate_scenario(network, demands, scenario, spec) for scenario in scenarios
    ]
    cold_eval_seconds = time.perf_counter() - start
    cold_loads = []
    for scenario in scenarios:
        instance = scenario.apply(network, demands)
        weight_map = network.weight_dict(weights)
        pruned_weights = {
            link.endpoints: weight_map[link.endpoints] for link in instance.network.links
        }
        router = SparseRouter(instance.network, weights=pruned_weights, mode="ecmp")
        cold_loads.append((instance, router.route(instance.demands).aggregate()))

    # Setup (controller construction + baseline routing) is timed apart
    # from the sweep: it is paid once per sweep — and once per *parallel*
    # sweep via the shared pickled baseline — so the steady-state
    # per-scenario cost is what the speedup bar measures.
    start = time.perf_counter()
    controller = TEController(network, demands, weights=weights)
    controller.link_loads()
    setup_seconds = time.perf_counter() - start
    incremental_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        measurements = controller.sweep_pure_failures(scenarios)
        incremental_seconds = min(incremental_seconds, time.perf_counter() - start)

    residual = max(
        float(np.max(np.abs(_map_to_base(network, instance, loads) - measurement.loads)))
        for (instance, loads), measurement in zip(cold_loads, measurements)
    )
    mlu_residual = max(
        abs(cold.mlu - measurement.mlu)
        for cold, measurement in zip(cold_results, measurements)
    )
    stats = controller.spt.stats
    entry = {
        "topology": "rand500",
        "workload": "single-link-failure sweep (OSPF InvCap, even ECMP)",
        "nodes": network.num_nodes,
        "links": network.num_links,
        "demand_pairs": len(demands),
        "scenarios": len(scenarios),
        "cold_evaluate_scenario_seconds": round(cold_eval_seconds, 6),
        "setup_seconds": round(setup_seconds, 6),
        "incremental_seconds": round(incremental_seconds, 6),
        "speedup_vs_evaluate_scenario": round(cold_eval_seconds / incremental_seconds, 2),
        "speedup_including_setup": round(
            cold_eval_seconds / (setup_seconds + incremental_seconds), 2
        ),
        "max_abs_load_diff": residual,
        "max_abs_mlu_diff": mlu_residual,
        "dspt": {
            "events": stats.events,
            "incremental_updates": stats.incremental_updates,
            "full_rebuilds": stats.full_rebuilds,
            "initial_builds": stats.initial_builds,
            "event_fallbacks": stats.event_fallbacks,
            "event_fallback_rate": round(stats.event_fallback_rate, 6),
            "nodes_recomputed": stats.nodes_recomputed,
        },
    }
    _recorder.add(entry)
    print(
        f"\n[rand500/failure-sweep] {len(scenarios)} scenarios: "
        f"cold(evaluate) {cold_eval_seconds:.2f}s, "
        f"setup {setup_seconds:.2f}s + incremental {incremental_seconds:.2f}s "
        f"-> {entry['speedup_vs_evaluate_scenario']}x steady-state "
        f"({entry['speedup_including_setup']}x with setup), "
        f"residual {residual:.2e}, "
        f"{stats.event_fallbacks}/{stats.events} event fallbacks"
    )

    assert residual <= 1e-12, "incremental and cold link loads diverged"
    assert mlu_residual <= 1e-12, "incremental and cold MLU diverged"
    for cold, measurement in zip(cold_results, measurements):
        assert cold.connected == measurement.connected
        assert abs(cold.dropped_volume - measurement.dropped_volume) <= 1e-9
    if smoke_bench():
        return
    assert entry["speedup_vs_evaluate_scenario"] >= _bar(10.0, 4.0), (
        f"rand500 incremental sweep regressed to "
        f"{entry['speedup_vs_evaluate_scenario']}x vs cold (< 10x acceptance bar)"
    )


def test_incremental_capacity_sweep_speedup():
    """Capacity brown-outs ride the incremental path: >= 2x vs cold on rand100."""
    from repro.protocols.ospf import MinHopOSPF
    from repro.scenarios import capacity_degradations

    network = rand100()
    demands = gravity_traffic_matrix(network, total_volume=0.1 * network.total_capacity())
    count = 6 if smoke_bench() else (40 if full_bench() else 20)
    scenarios = capacity_degradations(network, count=count, factor=0.5, seed=0)
    protocol = MinHopOSPF()
    weights = protocol.ecmp_forwarding_weights(network)
    spec = ProtocolSpec.of("MinHopOSPF")

    # Cold path: per-cell scenario.apply + full MinHop route.
    start = time.perf_counter()
    cold_results = [
        evaluate_scenario(network, demands, scenario, spec) for scenario in scenarios
    ]
    cold_seconds = time.perf_counter() - start
    cold_loads = []
    for scenario in scenarios:
        instance = scenario.apply(network, demands)
        loads = MinHopOSPF().route(instance.network, instance.demands).aggregate()
        cold_loads.append((instance, loads))

    # Incremental: capacity events snapshot/restored, zero routing work.
    incremental_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        controller = TEController(
            network, demands, weights=weights, tolerance=protocol.ecmp_tolerance
        )
        measurements = controller.sweep_scenarios(scenarios)
        incremental_seconds = min(incremental_seconds, time.perf_counter() - start)

    residual = max(
        float(np.max(np.abs(_map_to_base(network, instance, loads) - measurement.loads)))
        for (instance, loads), measurement in zip(cold_loads, measurements)
    )
    mlu_residual = max(
        abs(cold.mlu - measurement.mlu)
        for cold, measurement in zip(cold_results, measurements)
    )
    entry = {
        "topology": "rand100",
        "workload": "capacity-degradation sweep (MinHop, even ECMP)",
        "nodes": network.num_nodes,
        "links": network.num_links,
        "demand_pairs": len(demands),
        "scenarios": len(scenarios),
        "cold_evaluate_scenario_seconds": round(cold_seconds, 6),
        "incremental_seconds": round(incremental_seconds, 6),
        "speedup_vs_evaluate_scenario": round(cold_seconds / incremental_seconds, 2),
        "max_abs_load_diff": residual,
        "max_abs_mlu_diff": mlu_residual,
    }
    _recorder.add(entry)
    print(
        f"\n[rand100/capacity-sweep] {len(scenarios)} scenarios: "
        f"cold {cold_seconds:.2f}s, incremental {incremental_seconds:.3f}s "
        f"-> {entry['speedup_vs_evaluate_scenario']}x, residual {residual:.2e}"
    )

    assert residual <= 1e-12, "incremental and cold link loads diverged"
    assert mlu_residual <= 1e-12, "incremental and cold MLU diverged"
    if smoke_bench():
        return
    assert entry["speedup_vs_evaluate_scenario"] >= _bar(2.0, 1.2), (
        f"incremental capacity sweep regressed to "
        f"{entry['speedup_vs_evaluate_scenario']}x vs cold (< 2x acceptance bar)"
    )


def test_closed_loop_policy_beats_static_weights():
    """Closed loop beats no-reoptimization on worst sustained MLU, cheaply."""
    from repro.online import ClosedLoopPolicy, OraclePolicy, replay_failure_trace
    from repro.protocols.fortz_thorup import FortzThorup
    from repro.topology.backbones import abilene_network
    from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix

    network = abilene_network()
    demands = abilene_traffic_matrix(network, total_volume=1.0, seed=1).scaled(
        0.15 * network.total_capacity()
    )
    # Core trunks: outages where rerouting can actually help (a stub trunk's
    # failure MLU is a cut bound no weight setting can move).
    core = ("link:1-2", "link:1-3", "link:2-3", "link:5-6", "link:7-8")
    scenarios = [s for s in single_link_failures(network) if s.scenario_id in core]
    if smoke_bench():
        scenarios = scenarios[:2]
    budget = 30 if smoke_bench() else 150

    def optimizer_factory():
        return FortzThorup(restarts=1, seed=0, max_evaluations=budget)

    plain = replay_failure_trace(network, demands, scenarios, period=600.0, outage=300.0)
    closed = replay_failure_trace(
        network,
        demands,
        scenarios,
        period=600.0,
        outage=300.0,
        policy=ClosedLoopPolicy(
            target_mlu=0.95, hold=30.0, cooldown=120.0,
            optimizer_factory=optimizer_factory,
        ),
    )
    oracle = replay_failure_trace(
        network,
        demands,
        scenarios,
        period=600.0,
        outage=300.0,
        policy=OraclePolicy(optimizer_factory=optimizer_factory),
    )

    entry = {
        "topology": "abilene",
        "workload": "closed-loop reoptimization replay (core-trunk outages)",
        "scenarios": len(scenarios),
        "mlu_target": 0.95,
        "baseline_mlu": round(plain.baseline.mlu, 6),
        "worst_mlu_no_policy": round(plain.worst.mlu, 6),
        "worst_mlu_closed_loop": round(closed.worst.mlu, 6),
        "worst_mlu_oracle": round(oracle.worst.mlu, 6),
        "closed_loop_reoptimizations": closed.reoptimizations,
        "oracle_reoptimizations": oracle.reoptimizations,
    }
    _recorder.add(entry)
    print(
        f"\n[abilene/closed-loop] worst MLU: no policy {plain.worst.mlu:.3f}, "
        f"closed loop {closed.worst.mlu:.3f} "
        f"({closed.reoptimizations} reopts), oracle {oracle.worst.mlu:.3f} "
        f"({oracle.reoptimizations} reopts)"
    )
    if smoke_bench():
        return
    assert closed.worst.mlu < plain.worst.mlu, (
        "the closed-loop policy failed to beat the no-reoptimization baseline "
        f"({closed.worst.mlu:.3f} vs {plain.worst.mlu:.3f})"
    )
    assert closed.reoptimizations < oracle.reoptimizations


def test_warm_start_reoptimization_speedup():
    """Warm-started Fortz-Thorup search needs far fewer evaluations."""
    from repro.protocols.fortz_thorup import FortzThorup
    from repro.topology.backbones import abilene_network
    from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix

    network = abilene_network()
    demands = abilene_traffic_matrix(network, total_volume=1.0, seed=1).scaled(
        0.12 * network.total_capacity()
    )
    budget = 30 if smoke_bench() else 300
    def make():
        return FortzThorup(restarts=1, seed=0, max_evaluations=budget)

    cold = make().optimize(network, demands)
    drifted = demands.scaled(1.02)
    recold = make().optimize(network, drifted)
    warm = make().optimize(network, drifted, warm_start=cold.weights)
    entry = {
        "topology": "abilene",
        "workload": "Fortz-Thorup reoptimization after 2% demand drift",
        "cold_evaluations": recold.evaluations,
        "warm_evaluations": warm.evaluations,
        "evaluation_ratio": round(recold.evaluations / max(warm.evaluations, 1), 2),
        "cold_cost": recold.cost,
        "warm_cost": warm.cost,
    }
    _recorder.add(entry)
    print(
        f"\n[abilene/reoptimize] cold {recold.evaluations} evals, "
        f"warm {warm.evaluations} evals ({entry['evaluation_ratio']}x fewer), "
        f"costs {recold.cost:.2f} vs {warm.cost:.2f}"
    )
    if smoke_bench():
        return
    assert warm.evaluations < recold.evaluations
    assert warm.cost <= recold.cost * 1.10


def test_zz_write_artifact():
    """Record this run in the results store; re-export the view in full mode.

    Smoke runs are recorded in the store (CI diffs them against the
    committed view) but never overwrite ``BENCH_online.json``.
    """
    if not _recorder.records:
        pytest.skip("no benchmark records collected in this run")
    run_id = _recorder.finalize()
    print(f"\n[online-controller] recorded run {run_id}")
    assert run_id is not None
    if not smoke_bench():
        assert ARTIFACT.exists()
