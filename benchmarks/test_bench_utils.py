"""BenchRecorder artifact discipline: only full-mode runs rewrite committed views.

The committed ``BENCH_*.json`` files are full-bench exports (see the
:class:`bench_utils.BenchRecorder` docstring).  A default quick-mode or CI
smoke-mode pytest run must still record into the results store — that is how
``repro results diff`` gates regressions — but must never overwrite the
committed artifact with a lower-resolution view.
"""

from __future__ import annotations

import json

from bench_utils import BenchRecorder

RECORD = {
    "topology": "abilene",
    "workload": "split-ratio",
    "nodes": 11,
    "links": 28,
    "matrices": 12,
    "python_seconds": 0.07,
    "sparse_seconds": 0.012,
    "speedup": 5.83,
    "max_abs_load_diff": 1.8e-15,
}

COMMITTED = "committed full-bench view\n"


def _finalize(tmp_path, monkeypatch, artifact, **env):
    monkeypatch.setenv("REPRO_RESULTS_DB", str(tmp_path / "results.sqlite"))
    for key in ("REPRO_FULL_BENCH", "REPRO_BENCH_SMOKE"):
        monkeypatch.delenv(key, raising=False)
    for key, value in env.items():
        monkeypatch.setenv(key, value)
    recorder = BenchRecorder("routing-backend", artifact)
    recorder.add(dict(RECORD))
    return recorder.finalize()


def test_quick_and_smoke_runs_keep_the_committed_artifact(tmp_path, monkeypatch):
    artifact = tmp_path / "BENCH_view.json"
    artifact.write_text(COMMITTED)
    # Quick mode (no env flags): recorded in the store, artifact untouched.
    assert _finalize(tmp_path, monkeypatch, artifact) is not None
    assert artifact.read_text() == COMMITTED
    # CI smoke mode: same discipline.
    assert _finalize(tmp_path, monkeypatch, artifact, REPRO_BENCH_SMOKE="1") is not None
    assert artifact.read_text() == COMMITTED


def test_full_mode_reexports_the_committed_view(tmp_path, monkeypatch):
    artifact = tmp_path / "BENCH_view.json"
    artifact.write_text("stale\n")
    assert _finalize(tmp_path, monkeypatch, artifact, REPRO_FULL_BENCH="1") is not None
    view = json.loads(artifact.read_text())
    assert view["full_bench"] is True
    assert view["results"][0]["speedup"] == 5.83
