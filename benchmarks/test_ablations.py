"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's own figures:

* **Second-weight split vs even ECMP split** on the same first weights --
  isolates the value of the second link weight ("one more weight").
* **Gravity vs uniform traffic matrix** on Cernet2 -- how much of the SPEF
  advantage depends on the demand structure.
* **Constant vs diminishing step** in Algorithm 1 -- the convergence/accuracy
  trade-off behind the Fig. 12 step-size choice.
"""

import numpy as np
import pytest

from bench_utils import run_once
from repro.analysis.reporting import format_table, print_report
from repro.core.first_weights import compute_first_weights
from repro.core.objectives import normalized_utility
from repro.protocols.ospf import OSPF
from repro.protocols.spef_protocol import SPEFProtocol
from repro.solvers.assignment import ecmp_assignment
from repro.solvers.subgradient import DiminishingStep
from repro.traffic.gravity import uniform_traffic_matrix
from repro.traffic.scaling import scale_to_network_load


@pytest.mark.benchmark(group="ablation")
def test_second_weight_vs_even_split(benchmark, abilene_instance):
    """Does the second weight actually matter, or would even ECMP on the first weights do?"""

    def run():
        instance = abilene_instance
        demands = instance.at_fraction(0.95)
        protocol = SPEFProtocol()
        solution = protocol.fit(instance.network, demands)
        even_flows = ecmp_assignment(
            instance.network,
            demands,
            solution.first_weights,
            tolerance=solution.dags[next(iter(solution.dags))].tolerance,
        )
        return {
            "SPEF (exp. split)": normalized_utility(solution.flows.utilization()),
            "Even ECMP on first weights": normalized_utility(even_flows.utilization()),
            "OSPF (InvCap)": normalized_utility(
                OSPF().route(instance.network, demands).utilization()
            ),
            "spef_mlu": solution.max_link_utilization(),
            "even_mlu": even_flows.max_link_utilization(),
        }

    results = run_once(benchmark, run)
    rows = [
        {"routing": key, "utility": value}
        for key, value in results.items()
        if not key.endswith("_mlu")
    ]
    print_report(format_table(rows, title="Ablation -- value of the second link weight (Abilene, 95% saturation)"))

    # The exponential split must not be worse than even splitting over the
    # same shortest paths, and must keep MLU within capacity.
    spef = results["SPEF (exp. split)"]
    even = results["Even ECMP on first weights"]
    assert spef >= even - 1e-6 or even == float("-inf")
    assert results["spef_mlu"] < 1.0


@pytest.mark.benchmark(group="ablation")
def test_gravity_vs_uniform_demands(benchmark, cernet2_instance):
    """How much of the SPEF-vs-OSPF gap survives with a structureless demand matrix?"""

    def run():
        network = cernet2_instance.network
        results = {}
        for label, base in (
            ("gravity", cernet2_instance.base_demands),
            ("uniform", uniform_traffic_matrix(network, 1.0)),
        ):
            from repro.solvers.mcf import solve_min_mlu

            base_load = base.network_load(network)
            base_mlu = solve_min_mlu(network, base, allow_overload=True).objective
            demands = scale_to_network_load(network, base, base_load * 0.85 / base_mlu)
            spef = normalized_utility(SPEFProtocol().route(network, demands).utilization())
            ospf = normalized_utility(OSPF().route(network, demands).utilization())
            results[label] = {"SPEF": spef, "OSPF": ospf}
        return results

    results = run_once(benchmark, run)
    rows = [
        {"demands": label, "SPEF": values["SPEF"], "OSPF": values["OSPF"]}
        for label, values in results.items()
    ]
    print_report(format_table(rows, title="Ablation -- demand structure (Cernet2, 85% saturation)"))

    for label, values in results.items():
        assert values["SPEF"] > float("-inf"), label
        if values["OSPF"] > float("-inf"):
            assert values["SPEF"] >= values["OSPF"] - 1e-6, label


@pytest.mark.benchmark(group="ablation")
def test_constant_vs_diminishing_step(benchmark, cernet2_instance):
    """Algorithm 1 step-size rule: accuracy after a fixed iteration budget."""

    def run():
        network = cernet2_instance.network
        demands = cernet2_instance.at_fraction(0.8)
        constant = compute_first_weights(
            network, demands, max_iterations=300, tolerance=0.0, step_ratio=1.0
        )
        diminishing = compute_first_weights(
            network,
            demands,
            max_iterations=300,
            tolerance=0.0,
            step_rule=DiminishingStep(1.0 / float(np.max(network.capacities)), decay=0.02),
        )
        return {
            "constant": abs(constant.dual_gap_history[-1]),
            "diminishing": abs(diminishing.dual_gap_history[-1]),
        }

    gaps = run_once(benchmark, run)
    print_report(
        format_table(
            [{"step rule": k, "final |dual gap|": v} for k, v in gaps.items()],
            title="Ablation -- Algorithm 1 step rule after 300 iterations (Cernet2)",
        )
    )
    assert all(np.isfinite(v) for v in gaps.values())
