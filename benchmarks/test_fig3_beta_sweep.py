"""Fig. 3: first link weights and utilizations vs the load-balance parameter beta."""

import pytest

from bench_utils import run_once
from repro.analysis.experiments import fig3_beta_sweep


@pytest.mark.benchmark(group="fig3")
def test_fig3_beta_sweep(benchmark, figure_recorder):
    betas = [0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0]
    results = run_once(benchmark, fig3_beta_sweep, betas)
    weights = results["weights"]
    utilizations = results["utilizations"]
    figure_recorder.add(
        {
            "workload": "fig3-beta-sweep",
            "betas": betas,
            "weights": weights,
            "utilizations": utilizations,
        }
    )

    # Fig. 3(a): the weight of the bottleneck arc (3,4) grows explosively
    # with beta, while the (1,2)/(2,3) weights stay moderate and equal.
    assert weights["3->4"][-1] > 100 * weights["3->4"][betas.index(1.0)]
    for w12, w23 in zip(weights["1->2"], weights["2->3"]):
        assert w12 == pytest.approx(w23, rel=0.05, abs=1e-6)

    # Fig. 3(b): the utilization of arc (1,3) decreases in beta (more traffic
    # detours through 1-2-3), while arc (3,4) keeps its forced 0.9 load.
    u13 = utilizations["1->3"]
    assert all(a >= b - 1e-6 for a, b in zip(u13, u13[1:]))
    assert u13[0] == pytest.approx(1.0, abs=1e-6)
    assert u13[-1] < 0.75
    for value in utilizations["3->4"]:
        assert value == pytest.approx(0.9, abs=1e-6)
