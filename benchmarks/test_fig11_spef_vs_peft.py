"""Table IV / Fig. 11: SPEF vs PEFT mean link loads in the flow-level simulator.

The paper runs both protocols in SSFnet for 400 s on the simple 7-node example
and on the Cernet2 backbone with the Table IV demands, and reports the mean
traffic load per link.  Our substitute is the flow-level simulator of
:mod:`repro.simulator`; the observation to reproduce is that SPEF spreads the
load over at least as many links as PEFT and with no larger variation.
"""

import pytest

from bench_utils import run_once
from repro.analysis.experiments import fig11_simulation, table4_demands
from repro.analysis.reporting import format_series, format_table, print_report


@pytest.mark.benchmark(group="fig11")
@pytest.mark.parametrize("case", ["simple", "cernet2"])
def test_fig11_spef_vs_peft(benchmark, case):
    duration = 400.0
    result = run_once(benchmark, fig11_simulation, case, duration)

    demand_rows = [
        {"src": s, "dst": t, "demand": v} for (s, t), v in table4_demands()[case].items()
    ]
    network = result["network"]
    spef_loads = [result["SPEF"].mean_link_load[link.endpoints] for link in network.links]
    peft_loads = [result["PEFT"].mean_link_load[link.endpoints] for link in network.links]
    print_report(
        format_table(demand_rows, title=f"Table IV -- demands ({case})"),
        format_series(
            {"SPEF": spef_loads, "PEFT": peft_loads},
            x_values=list(range(1, network.num_links + 1)),
            x_label="link",
            title=f"Fig. 11 -- mean link load over {duration:.0f}s ({case})",
        ),
        format_table(
            [
                {
                    "protocol": name,
                    "used_links": result[f"{name}_used_links"],
                    "load_stddev": round(result[f"{name}_load_std"], 4),
                    "flows": result[name].flows_started,
                }
                for name in ("SPEF", "PEFT")
            ],
            title="Fig. 11 summary",
        ),
    )

    # No traffic is lost by either forwarding configuration.
    assert result["SPEF"].dropped_flows == 0
    assert result["PEFT"].dropped_flows == 0

    # The paper's observation on the simple example: SPEF involves at least as
    # many links as PEFT and its load distribution is no more dispersed.  On
    # our Cernet2 reconstruction downward-PEFT happens to touch a couple more
    # links (it may use non-shortest downward paths), so there the robust
    # claim is about dispersion, not raw link count -- see EXPERIMENTS.md.
    if case == "simple":
        assert result["SPEF_used_links"] >= result["PEFT_used_links"]
        assert result["SPEF_load_std"] <= result["PEFT_load_std"] * 1.25 + 1e-9
    else:
        assert result["SPEF_used_links"] >= 0.8 * result["PEFT_used_links"]
        assert result["SPEF_load_std"] <= result["PEFT_load_std"] * 1.5 + 1e-9

    # The simulated mean loads track the demands: total carried load is
    # bounded by total demand times the mean path length.
    total_demand = table4_demands()[case].total_volume()
    assert sum(spef_loads) >= 0.5 * total_demand
