"""Table IV / Fig. 11: SPEF vs PEFT mean link loads in the flow-level simulator.

The paper runs both protocols in SSFnet for 400 s on the simple 7-node example
and on the Cernet2 backbone with the Table IV demands, and reports the mean
traffic load per link.  Our substitute is the flow-level simulator of
:mod:`repro.simulator`; the observation to reproduce is that SPEF spreads the
load over at least as many links as PEFT and with no larger variation.
"""

import pytest

from bench_utils import run_once
from repro.analysis.experiments import fig11_simulation, table4_demands


@pytest.mark.benchmark(group="fig11")
@pytest.mark.parametrize("case", ["simple", "cernet2"])
def test_fig11_spef_vs_peft(benchmark, figure_recorder, case):
    duration = 400.0
    result = run_once(benchmark, fig11_simulation, case, duration)

    network = result["network"]
    spef_loads = [result["SPEF"].mean_link_load[link.endpoints] for link in network.links]
    peft_loads = [result["PEFT"].mean_link_load[link.endpoints] for link in network.links]
    figure_recorder.add(
        {
            "workload": "fig11-spef-vs-peft",
            "topology": case,
            "duration": duration,
            "mean_link_load": {"SPEF": spef_loads, "PEFT": peft_loads},
            "summary": {
                name: {
                    "used_links": result[f"{name}_used_links"],
                    "load_stddev": round(result[f"{name}_load_std"], 4),
                    "flows": result[name].flows_started,
                }
                for name in ("SPEF", "PEFT")
            },
        }
    )

    # No traffic is lost by either forwarding configuration.
    assert result["SPEF"].dropped_flows == 0
    assert result["PEFT"].dropped_flows == 0

    # The paper's observation on the simple example: SPEF involves at least as
    # many links as PEFT and its load distribution is no more dispersed.  On
    # our Cernet2 reconstruction downward-PEFT happens to touch a couple more
    # links (it may use non-shortest downward paths), so there the robust
    # claim is about dispersion, not raw link count -- see EXPERIMENTS.md.
    if case == "simple":
        assert result["SPEF_used_links"] >= result["PEFT_used_links"]
        assert result["SPEF_load_std"] <= result["PEFT_load_std"] * 1.25 + 1e-9
    else:
        assert result["SPEF_used_links"] >= 0.8 * result["PEFT_used_links"]
        assert result["SPEF_load_std"] <= result["PEFT_load_std"] * 1.5 + 1e-9

    # The simulated mean loads track the demands: total carried load is
    # bounded by total demand times the mean path length.
    total_demand = table4_demands()[case].total_volume()
    assert sum(spef_loads) >= 0.5 * total_demand
