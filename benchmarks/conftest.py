"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper: it runs
the corresponding experiment from :mod:`repro.analysis.experiments`, prints
the same rows/series the paper reports (run pytest with ``-s`` to see them)
and asserts the qualitative shape (who wins, in which regime).

Set ``REPRO_FULL_BENCH=1`` to run the full seven-topology sweeps of Fig. 10;
by default a representative subset keeps the suite to a few minutes.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import full_bench  # noqa: E402

from repro.analysis.experiments import Instance, standard_instances  # noqa: E402


@pytest.fixture(scope="session")
def instances() -> dict:
    """The seven Table III instances, shared (and cached) across benchmarks."""
    return standard_instances()


@pytest.fixture(scope="session")
def abilene_instance(instances) -> Instance:
    return instances["Abilene"]


@pytest.fixture(scope="session")
def cernet2_instance(instances) -> Instance:
    return instances["Cernet2"]


@pytest.fixture(scope="session")
def fig10_instance_names(instances) -> list:
    """Which instances the Fig. 10 benchmark sweeps (subset unless full bench)."""
    if full_bench():
        return list(instances)
    return ["Abilene", "Cernet2", "Hier50b", "Rand50a"]
