"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper: it runs
the corresponding experiment from :mod:`repro.analysis.experiments`, prints
the same rows/series the paper reports (run pytest with ``-s`` to see them)
and asserts the qualitative shape (who wins, in which regime).

Set ``REPRO_FULL_BENCH=1`` to run the full seven-topology sweeps of Fig. 10;
by default a representative subset keeps the suite to a few minutes.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import BenchRecorder, full_bench  # noqa: E402

from repro.analysis.experiments import Instance, standard_instances  # noqa: E402
from repro.scenarios import BatchRunner, single_link_failures  # noqa: E402
from repro.topology.rocketfuel import synthetic_rocketfuel  # noqa: E402
from repro.traffic.gravity import gravity_traffic_matrix  # noqa: E402


def pytest_configure(config):
    """Register the scenario-suite marker (also listed in pyproject.toml)."""
    config.addinivalue_line(
        "markers", "scenarios: scenario-engine robustness sweeps (batch runner)"
    )


@pytest.fixture(scope="session")
def figure_recorder():
    """One results-store run collecting every per-figure module's records.

    The figure modules used to print their series to stdout and lose them;
    they now :meth:`BenchRecorder.add` one record per figure, and the whole
    session lands as a single ``paper-figures`` bench run
    (``repro results query --benchmark paper-figures``).  No committed view
    file: figures are reproduced, not gated.
    """
    recorder = BenchRecorder("paper-figures", artifact=None)
    yield recorder
    recorder.finalize()


@pytest.fixture(scope="session")
def instances() -> dict:
    """The seven Table III instances, shared (and cached) across benchmarks."""
    return standard_instances()


@pytest.fixture(scope="session")
def abilene_instance(instances) -> Instance:
    return instances["Abilene"]


@pytest.fixture(scope="session")
def cernet2_instance(instances) -> Instance:
    return instances["Cernet2"]


@pytest.fixture(scope="session")
def fig10_instance_names(instances) -> list:
    """Which instances the Fig. 10 benchmark sweeps (subset unless full bench)."""
    if full_bench():
        return list(instances)
    return ["Abilene", "Cernet2", "Hier50b", "Rand50a"]


# ----------------------------------------------------------------------
# scenario-engine fixtures (shared by the robustness benchmarks)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def scenario_cache_dir(tmp_path_factory):
    """A per-session on-disk result cache, warm across benchmark modules."""
    return tmp_path_factory.mktemp("scenario-cache")


@pytest.fixture(scope="session")
def scenario_runner(scenario_cache_dir) -> BatchRunner:
    """A cached serial batch runner (serial: benchmark timings stay honest)."""
    return BatchRunner(cache_dir=scenario_cache_dir, max_workers=0)


@pytest.fixture(scope="session")
def abilene_link_failures(abilene_instance) -> list:
    """Every single-trunk failure of Abilene (the canonical sweep)."""
    return single_link_failures(abilene_instance.network)


@pytest.fixture(scope="session")
def rocketfuel_instance() -> Instance:
    """A Rocketfuel-profile ISP (AS6461 Abovenet) with a gravity workload."""
    network = synthetic_rocketfuel(6461, seed=0)
    demands = gravity_traffic_matrix(network, total_volume=0.1 * network.total_capacity())
    return Instance(network=network, base_demands=demands, kind="Rocketfuel")
