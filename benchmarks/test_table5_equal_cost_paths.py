"""Table V: number of ingress-egress pairs with i equal-cost paths (Cernet2)."""

import pytest

from bench_utils import run_once
from repro.analysis.experiments import table5_equal_cost_paths
from repro.analysis.reporting import format_histogram, print_report


@pytest.mark.benchmark(group="table5")
def test_table5_equal_cost_paths(benchmark, cernet2_instance):
    results = run_once(
        benchmark, table5_equal_cost_paths, (0.6, 0.8, 1.0), cernet2_instance
    )

    sections = [
        format_histogram(histogram, title=f"Table V -- equal-cost path histogram, {label}")
        for label, histogram in results.items()
    ]
    print_report(*sections)

    network = cernet2_instance.network
    total_pairs = network.num_nodes * (network.num_nodes - 1)

    ospf = results["OSPF"]
    spef_keys = [key for key in results if key.startswith("SPEF")]
    assert len(spef_keys) == 3

    # Every pair is reachable under OSPF's InvCap weights.
    assert sum(ospf.values()) == total_pairs
    assert ospf.get(0, 0) == 0

    def multipath(histogram):
        return sum(count for paths, count in histogram.items() if paths >= 2)

    # SPEF exposes at least as much path diversity as OSPF, and the diversity
    # does not decrease as the load grows (the paper: more equal-cost paths
    # are used at higher loads, while OSPF never changes).
    diversities = [multipath(results[key]) for key in spef_keys]
    assert diversities[0] >= multipath(ospf)
    assert diversities[-1] >= diversities[0]
