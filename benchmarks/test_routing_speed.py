"""Routing-backend speed regression: Python oracle vs sparse backend.

Times the two workloads the vectorized backend was built for, on Abilene and
a Rocketfuel-profile topology:

* **batched split-ratio assignment** -- route a demand ensemble over fixed
  per-destination DAGs with explicit (exponential) split ratios.  The oracle
  re-runs its dict loops per matrix; the sparse backend compiles each DAG to
  CSR once and propagates all matrices in one stacked sweep.  The ISSUE's
  acceptance bar (>= 5x on Abilene) is asserted here.
* **ECMP ensemble sweep** -- the scenario-engine shape: one weight setting,
  many demand matrices, the oracle paying Dijkstra + propagation per matrix
  while :class:`~repro.routing.SparseRouter` amortises both.

Results (timings, speedups, equivalence residuals) are recorded in the
results store (``$REPRO_RESULTS_DB``; see :mod:`repro.results`) and — in
full mode — re-exported as the ``BENCH_routing.json`` view at the
repository root, so regressions are diffable across PRs with
``repro results diff``.  Set ``REPRO_FULL_BENCH=1`` for larger ensembles.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, List

import numpy as np
import pytest

from bench_utils import BenchRecorder, full_bench, smoke_bench

from repro.core.traffic_distribution import exponential_split_ratios
from repro.network.demands import TrafficMatrix
from repro.network.graph import Network
from repro.network.spt import all_shortest_path_dags
from repro.protocols.ospf import invcap_weights
from repro.routing import SparseRouter
from repro.solvers.assignment import ecmp_assignment, split_ratio_assignment
from repro.topology.backbones import abilene_network
from repro.topology.rocketfuel import synthetic_rocketfuel
from repro.traffic.gravity import gravity_traffic_matrix

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_routing.json"

#: Wall-clock assertions are relaxed on shared CI runners (GitHub sets CI=true),
#: where a loaded host can deflate the measured ratio without any code change.
#: Local / driver runs enforce the full acceptance bars.
ON_CI = bool(os.environ.get("CI"))


def _bar(local: float, ci: float) -> float:
    return ci if ON_CI else local

#: Ensemble sizes per topology: large enough that the sparse backend's
#: one-off compilation is amortised (the regime the batched API targets).
ENSEMBLE_SIZES = {"abilene": 240, "rocketfuel": 40}
FULL_ENSEMBLE_SIZES = {"abilene": 600, "rocketfuel": 120}
SMOKE_ENSEMBLE_SIZES = {"abilene": 12, "rocketfuel": 4}

_recorder = BenchRecorder("routing-backend", ARTIFACT, view_flag_keys=("full_bench",))


def _demand_ensemble(network: Network, count: int, seed: int = 0) -> List[TrafficMatrix]:
    """Gravity matrices with jittered node weights and volumes (a trunk sweep)."""
    rng = np.random.default_rng(seed)
    base = 0.08 * network.total_capacity()
    matrices = []
    for _ in range(count):
        out_weights = {node: float(rng.uniform(0.5, 1.5)) for node in network.nodes}
        in_weights = {node: float(rng.uniform(0.5, 1.5)) for node in network.nodes}
        matrices.append(
            gravity_traffic_matrix(
                network, base * float(rng.uniform(0.5, 1.5)), out_weights, in_weights
            )
        )
    return matrices


def _record(name: str, network: Network, kind: str, count: int,
            python_seconds: float, sparse_seconds: float, residual: float) -> Dict[str, object]:
    entry = {
        "topology": name,
        "workload": kind,
        "nodes": network.num_nodes,
        "links": network.num_links,
        "matrices": count,
        "python_seconds": round(python_seconds, 6),
        "sparse_seconds": round(sparse_seconds, 6),
        "speedup": round(python_seconds / sparse_seconds, 2),
        "max_abs_load_diff": float(residual),
    }
    _recorder.add(entry)
    print(
        f"\n[{name}/{kind}] m={count}: python {python_seconds * 1e3:.1f} ms, "
        f"sparse {sparse_seconds * 1e3:.1f} ms, speedup {entry['speedup']}x, "
        f"residual {residual:.2e}"
    )
    return entry


def _topologies():
    if smoke_bench():
        sizes = SMOKE_ENSEMBLE_SIZES
    else:
        sizes = FULL_ENSEMBLE_SIZES if full_bench() else ENSEMBLE_SIZES
    return [
        ("abilene", abilene_network(), sizes["abilene"]),
        ("rocketfuel", synthetic_rocketfuel(1239, seed=0), sizes["rocketfuel"]),
    ]


@pytest.mark.parametrize("name,network,count", _topologies(), ids=lambda v: v if isinstance(v, str) else "")
def test_batched_split_ratio_speedup(name, network, count):
    """Sparse batched split-ratio assignment beats the oracle (>=5x on Abilene)."""
    weights = invcap_weights(network)
    dags = all_shortest_path_dags(network, list(network.nodes), weights)
    rng = np.random.default_rng(1)
    second = rng.random(network.num_links)
    ratios = {
        destination: exponential_split_ratios(network, dag, second)
        for destination, dag in dags.items()
    }
    matrices = _demand_ensemble(network, count, seed=2)

    start = time.perf_counter()
    oracle = [
        split_ratio_assignment(network, tm, dags, ratios, backend="python").aggregate()
        for tm in matrices
    ]
    python_seconds = time.perf_counter() - start

    sparse_seconds = float("inf")
    for _ in range(3):  # best of three: the sparse path is fast enough to jitter
        start = time.perf_counter()
        router = SparseRouter(network, dags=dags, mode="split")
        loads = router.link_loads_many(matrices, split_ratios=ratios)
        sparse_seconds = min(sparse_seconds, time.perf_counter() - start)

    residual = max(
        float(np.max(np.abs(loads[i] - oracle[i]))) for i in range(len(matrices))
    )
    entry = _record(name, network, "split-ratio", count, python_seconds, sparse_seconds, residual)

    assert residual <= 1e-9, "sparse and python backends diverged"
    if smoke_bench():
        return  # correctness-only: tiny ensembles make ratios meaningless
    if name == "abilene":
        assert entry["speedup"] >= _bar(5.0, 2.0), (
            f"batched split-ratio assignment on Abilene regressed to "
            f"{entry['speedup']}x (< 5x acceptance bar)"
        )
    else:
        assert entry["speedup"] >= _bar(1.5, 1.0)


@pytest.mark.parametrize("name,network,count", _topologies(), ids=lambda v: v if isinstance(v, str) else "")
def test_ecmp_ensemble_sweep_speedup(name, network, count):
    """The scenario-sweep shape: one weight setting, many matrices."""
    weights = invcap_weights(network)
    matrices = _demand_ensemble(network, count, seed=3)

    start = time.perf_counter()
    oracle = [
        ecmp_assignment(network, tm, weights, backend="python").aggregate()
        for tm in matrices
    ]
    python_seconds = time.perf_counter() - start

    sparse_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        router = SparseRouter(network, weights=weights, mode="ecmp")
        loads = router.link_loads_many(matrices)
        sparse_seconds = min(sparse_seconds, time.perf_counter() - start)

    residual = max(
        float(np.max(np.abs(loads[i] - oracle[i]))) for i in range(len(matrices))
    )
    entry = _record(name, network, "ecmp-sweep", count, python_seconds, sparse_seconds, residual)

    assert residual <= 1e-9, "sparse and python backends diverged"
    if not smoke_bench():
        assert entry["speedup"] >= _bar(3.0, 1.5)


def test_zz_write_artifact():
    """Record this run in the results store; re-export the view in full mode.

    Named ``zz`` so pytest runs it after the measurement tests; if they were
    deselected or failed there is nothing meaningful to write and the test
    skips instead of clobbering a previous artifact.  Smoke runs are
    recorded in the store (CI diffs them against the committed view) but
    never overwrite ``BENCH_routing.json``.
    """
    if not _recorder.records:
        pytest.skip("no benchmark records collected in this run")
    run_id = _recorder.finalize()
    print(f"\n[routing-backend] recorded run {run_id}")
    assert run_id is not None
    if not smoke_bench():
        assert ARTIFACT.exists()
