"""Fig. 6: link utilizations of OSPF and SPEF(beta) on the Fig. 4 example topology."""

import pytest

from bench_utils import run_once
from repro.analysis.experiments import fig4_example_results


@pytest.mark.benchmark(group="fig6")
def test_fig6_example_utilization(benchmark, figure_recorder):
    results = run_once(benchmark, fig4_example_results, (0.0, 1.0, 5.0))
    series = {
        "OSPF": results["OSPF_utilization"],
        "SPEF0": results["SPEF0_utilization"],
        "SPEF1": results["SPEF1_utilization"],
        "SPEF5": results["SPEF5_utilization"],
    }
    figure_recorder.add(
        {"workload": "fig6-example-utilization", "utilization": series}
    )

    # OSPF overloads at least one link; every SPEF variant keeps (essentially)
    # within capacity.
    assert max(series["OSPF"]) > 1.0
    for name in ("SPEF0", "SPEF1", "SPEF5"):
        assert max(series[name]) <= 1.0 + 5e-3, name

    # Larger beta flattens the distribution: the maximum utilization under
    # SPEF5 is no higher than under SPEF0.
    assert max(series["SPEF5"]) <= max(series["SPEF0"]) + 1e-6

    # SPEF spreads traffic over at least as many links as OSPF.
    def used(values):
        return sum(1 for v in values if v > 1e-6)

    assert used(series["SPEF1"]) >= used(series["OSPF"])
