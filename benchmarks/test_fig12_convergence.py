"""Fig. 12: convergence of Algorithms 1 and 2 on Cernet2 for several step sizes."""

import numpy as np
import pytest

from bench_utils import run_once
from repro.analysis.experiments import fig12_convergence


def _tail_oscillation(history, window=50):
    tail = np.asarray(history[-window:])
    return float(np.max(tail) - np.min(tail)) if tail.size else 0.0


@pytest.mark.benchmark(group="fig12")
def test_fig12_convergence(benchmark, cernet2_instance, figure_recorder):
    results = run_once(
        benchmark,
        fig12_convergence,
        cernet2_instance,
        None,
        (2.0, 1.0, 0.5, 0.1),
        (2.0, 1.0, 0.5, 0.25),
        400,
        150,
    )
    alg1 = results["algorithm1"]
    alg2 = results["algorithm2"]

    def subsample(series, count=20):
        step = max(1, len(series) // count)
        return series[::step]

    figure_recorder.add(
        {
            "workload": "fig12-convergence",
            "topology": "Cernet2",
            "algorithm1": {name: subsample(history) for name, history in alg1.items()},
            "algorithm2": {name: subsample(history) for name, history in alg2.items()},
        }
    )

    # Every run produced a full, finite history.
    for collection in (alg1, alg2):
        for name, history in collection.items():
            assert len(history) > 10, name
            assert all(np.isfinite(v) for v in history), name

    # Algorithm 1: the dual value decreases substantially from its start with
    # the default step, and the end-of-run oscillation with the default step
    # (ratio 1) is no larger than with the double step (ratio 2) -- the
    # paper's "too large a step size causes a little oscillation".
    default = alg1["ratio=1"]
    assert default[0] - min(default) > 0.5 * (default[0] - min(min(h) for h in alg1.values()))
    assert _tail_oscillation(alg1["ratio=1"]) <= _tail_oscillation(alg1["ratio=2"]) + 1e-6

    # The tiny step (ratio 0.1) converges more slowly: after the same number
    # of iterations it is still farther from the best value reached.
    best = min(min(h) for h in alg1.values())
    assert alg1["ratio=0.1"][-1] >= alg1["ratio=1"][-1] - 1e-9 or alg1["ratio=0.1"][-1] > best

    # Algorithm 2: the dual starts at the v=0 value and does not increase much
    # (v=0 is already a good approximation, as the paper notes).
    for name, history in alg2.items():
        assert history[-1] <= history[0] + 1e-6, name
