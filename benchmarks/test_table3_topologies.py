"""Table III: properties of the evaluation networks."""

import pytest

from bench_utils import run_once
from repro.analysis.experiments import table3_topologies
from repro.analysis.reporting import format_table, print_report

EXPECTED = {
    "Abilene": ("Backbone", 11, 28),
    "Cernet2": ("Backbone", 20, 44),
    "Hier50a": ("2-level", 50, 222),
    "Hier50b": ("2-level", 50, 152),
    "Rand50a": ("Random", 50, 242),
    "Rand50b": ("Random", 50, 230),
    "Rand100": ("Random", 100, 392),
}


@pytest.mark.benchmark(group="table3")
def test_table3_topologies(benchmark, instances):
    rows = run_once(benchmark, table3_topologies, instances)
    print_report(format_table(rows, title="Table III -- properties of the evaluation networks"))

    by_name = {row["network"]: row for row in rows}
    assert set(by_name) == set(EXPECTED)
    for name, (kind, nodes, links) in EXPECTED.items():
        assert by_name[name]["topology"] == kind
        assert by_name[name]["nodes"] == nodes
        assert by_name[name]["links"] == links
