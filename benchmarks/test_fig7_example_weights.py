"""Fig. 7: the first and second link weights on the Fig. 4 example for beta in {0, 1, 5}."""

import numpy as np
import pytest

from bench_utils import run_once
from repro.analysis.experiments import fig4_example_results


@pytest.mark.benchmark(group="fig7")
def test_fig7_example_weights(benchmark, figure_recorder):
    results = run_once(benchmark, fig4_example_results, (0.0, 1.0, 5.0))
    first = {f"SPEF{b:g}": results[f"SPEF{b:g}_first_weights"] for b in (0, 1, 5)}
    second = {f"SPEF{b:g}": results[f"SPEF{b:g}_second_weights"] for b in (0, 1, 5)}
    figure_recorder.add(
        {
            "workload": "fig7-example-weights",
            "first_weights": {k: list(map(float, v)) for k, v in first.items()},
            "second_weights": {k: list(map(float, v)) for k, v in second.items()},
        }
    )

    for name, values in first.items():
        values = np.asarray(values)
        assert np.all(values >= 0), name
        assert np.any(values > 0), name
    for name, values in second.items():
        values = np.asarray(values)
        assert np.all(values >= 0), name
        assert np.all(np.isfinite(values)), name

    # The paper's observation: with beta = 0 the first weights are flat
    # (minimum-hop-like), while beta = 5 concentrates a much larger weight on
    # the congested links, increasing the spread.
    def spread(values):
        return float(np.max(values) - np.min(values))

    assert spread(first["SPEF5"]) >= spread(first["SPEF0"]) - 1e-9
