"""Fig. 13: impact of integer (rounded) first weights on the achieved utility."""

import pytest

from bench_utils import full_bench, run_once
from repro.analysis.experiments import fig13_integer_weights


@pytest.mark.benchmark(group="fig13")
@pytest.mark.parametrize("instance_name", ["Abilene", "Cernet2"])
def test_fig13_integer_weights(benchmark, instances, figure_recorder, instance_name):
    instance = instances[instance_name]
    loads = instance.fig10_loads()
    if not full_bench():
        loads = loads[::2]  # thin the sweep for the default run
    series = run_once(benchmark, fig13_integer_weights, instance, loads)
    figure_recorder.add(
        {
            "workload": "fig13-integer-weights",
            "topology": instance_name,
            "load": series["load"],
            "Noninteger": series["Noninteger"],
            "Integer": series["Integer"],
        }
    )

    noninteger = series["Noninteger"]
    integer = series["Integer"]
    assert len(noninteger) == len(integer) == len(loads)

    # Fractional weights always achieve a finite utility across the sweep.
    assert all(value > float("-inf") for value in noninteger)

    # At the lowest load the integer rounding has little impact (< 15%
    # relative utility loss); the paper's observation is that errors only
    # matter at high load.
    low_gap = abs(integer[0] - noninteger[0])
    assert low_gap <= 0.15 * abs(noninteger[0]) + 1e-6

    # Rounding never helps (the fractional weights realise the optimum).
    for frac, rounded in zip(noninteger, integer):
        assert rounded <= frac + 0.5
