"""Fig. 13: impact of integer (rounded) first weights on the achieved utility."""

import pytest

from bench_utils import full_bench, run_once
from repro.analysis.experiments import fig13_integer_weights
from repro.analysis.reporting import format_series, print_report


@pytest.mark.benchmark(group="fig13")
@pytest.mark.parametrize("instance_name", ["Abilene", "Cernet2"])
def test_fig13_integer_weights(benchmark, instances, instance_name):
    instance = instances[instance_name]
    loads = instance.fig10_loads()
    if not full_bench():
        loads = loads[::2]  # thin the sweep for the default run
    series = run_once(benchmark, fig13_integer_weights, instance, loads)
    print_report(
        format_series(
            {"Noninteger": series["Noninteger"], "Integer": series["Integer"]},
            x_values=series["load"],
            x_label="load",
            title=f"Fig. 13 -- impact of integer weights, {instance_name}",
        )
    )

    noninteger = series["Noninteger"]
    integer = series["Integer"]
    assert len(noninteger) == len(integer) == len(loads)

    # Fractional weights always achieve a finite utility across the sweep.
    assert all(value > float("-inf") for value in noninteger)

    # At the lowest load the integer rounding has little impact (< 15%
    # relative utility loss); the paper's observation is that errors only
    # matter at high load.
    low_gap = abs(integer[0] - noninteger[0])
    assert low_gap <= 0.15 * abs(noninteger[0]) + 1e-6

    # Rounding never helps (the fractional weights realise the optimum).
    for frac, rounded in zip(noninteger, integer):
        assert rounded <= frac + 0.5
