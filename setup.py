"""Minimal setuptools bridge — NOT a second install path.

All metadata, dependencies and packaging live in ``pyproject.toml`` (the
single install path; see README "Install").  This shim only exists so
editable installs work on offline machines where pip cannot fetch the
PEP 517 build requirements: ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
