"""Setuptools shim.

Kept alongside ``pyproject.toml`` so the package can be installed in editable
mode (``pip install -e . --no-use-pep517``) on machines without network access
to the PEP 517 build requirements (no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
