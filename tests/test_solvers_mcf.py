"""Unit tests for the LP multi-commodity flow solvers."""

import numpy as np
import pytest

from repro.network.demands import TrafficMatrix
from repro.solvers.mcf import (
    SolverError,
    solve_min_cost_mcf,
    solve_min_mlu,
    solve_route_subproblem,
)


class TestMinCostMcf:
    def test_uses_cheapest_path(self, diamond_network, diamond_demands):
        weights = {(1, 2): 1.0, (2, 4): 1.0, (1, 3): 5.0, (3, 4): 5.0}
        solution = solve_min_cost_mcf(diamond_network, diamond_demands, weights)
        assert solution.flows.flow_on(1, 2) == pytest.approx(8.0)
        assert solution.objective == pytest.approx(16.0)
        solution.flows.validate(diamond_demands)

    def test_splits_when_capacity_binds(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 15.0})
        weights = {(1, 2): 1.0, (2, 4): 1.0, (1, 3): 5.0, (3, 4): 5.0}
        solution = solve_min_cost_mcf(diamond_network, demands, weights)
        # Cheapest path capacity is 10; 5 units must take the detour.
        assert solution.flows.flow_on(1, 2) == pytest.approx(10.0)
        assert solution.flows.flow_on(1, 3) == pytest.approx(5.0)
        solution.flows.validate(demands)

    def test_uncapacitated_matches_shortest_path(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 15.0})
        weights = {(1, 2): 1.0, (2, 4): 1.0, (1, 3): 5.0, (3, 4): 5.0}
        solution = solve_min_cost_mcf(diamond_network, demands, weights, capacitated=False)
        assert solution.flows.flow_on(1, 2) == pytest.approx(15.0)

    def test_infeasible_raises(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 100.0})
        with pytest.raises(SolverError):
            solve_min_cost_mcf(diamond_network, demands, np.ones(4))

    def test_empty_demands(self, diamond_network):
        solution = solve_min_cost_mcf(diamond_network, TrafficMatrix(), np.ones(4))
        assert solution.objective == 0.0
        assert np.allclose(solution.flows.aggregate(), 0.0)

    def test_capacity_duals_nonnegative(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 15.0})
        weights = {(1, 2): 1.0, (2, 4): 1.0, (1, 3): 5.0, (3, 4): 5.0}
        solution = solve_min_cost_mcf(diamond_network, demands, weights)
        assert solution.capacity_duals is not None
        assert np.all(solution.capacity_duals >= -1e-9)
        # The binding cheap path should carry a positive shadow price.
        assert solution.capacity_duals.max() > 0

    def test_multiple_commodities(self, fig1, fig1_tm):
        solution = solve_min_cost_mcf(fig1, fig1_tm, np.ones(4))
        solution.flows.validate(fig1_tm)
        assert set(solution.flows.destinations) == {3, 4}


class TestMinMlu:
    def test_diamond_splits_evenly(self, diamond_network, diamond_demands):
        solution = solve_min_mlu(diamond_network, diamond_demands)
        assert solution.objective == pytest.approx(0.4, abs=1e-6)
        solution.flows.validate(diamond_demands)

    def test_fig1_optimal_mlu(self, fig1, fig1_tm):
        # Fig. 1 discussion: the min-max optimum has MLU 0.9 (link 3->4).
        solution = solve_min_mlu(fig1, fig1_tm)
        assert solution.objective == pytest.approx(0.9, abs=1e-6)

    def test_overload_allowed(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 30.0})
        solution = solve_min_mlu(diamond_network, demands, allow_overload=True)
        assert solution.objective == pytest.approx(1.5, abs=1e-6)

    def test_overload_forbidden_raises(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 30.0})
        with pytest.raises(SolverError):
            solve_min_mlu(diamond_network, demands, allow_overload=False)

    def test_empty_demands(self, diamond_network):
        solution = solve_min_mlu(diamond_network, TrafficMatrix())
        assert solution.objective == 0.0

    def test_scaling_linearity(self, fig1, fig1_tm):
        base = solve_min_mlu(fig1, fig1_tm).objective
        doubled = solve_min_mlu(fig1, fig1_tm.scaled(0.5)).objective
        assert doubled == pytest.approx(base * 0.5, rel=1e-6)


class TestRouteSubproblem:
    def test_matches_shortest_path_cost(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 8.0})
        weights = {(1, 2): 1.0, (2, 4): 1.0, (1, 3): 5.0, (3, 4): 5.0}
        flow = solve_route_subproblem(diamond_network, demands, weights, destination=4)
        cost = float(np.dot(flow, diamond_network.weight_vector(weights)))
        assert cost == pytest.approx(16.0)

    def test_unknown_destination_gives_zero_flow(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 8.0})
        flow = solve_route_subproblem(diamond_network, demands, np.ones(4), destination=2)
        assert np.allclose(flow, 0.0)
