"""Unit tests for the compiled routing structures themselves.

The golden-equivalence suite (``test_routing_equivalence.py``) checks the
backends against each other end to end; these tests pin the *internals* of
:mod:`repro.routing` -- the CSR compilation, the triangular structure of the
split matrix, the ratio kernels, backend selection -- so a regression points
at the broken piece directly.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.routing as routing
from repro.core.nem import compute_second_weights
from repro.network.demands import TrafficMatrix
from repro.network.graph import Network
from repro.network.spt import UnreachableError, all_shortest_path_dags, shortest_path_dag
from repro.routing import CompiledDagSet, SparseRouter
from repro.routing.compiled import CompiledDag


@pytest.fixture
def diamond_compiled(diamond_network):
    dag = shortest_path_dag(diamond_network, 4, np.ones(4))
    return CompiledDag.from_dag(diamond_network, dag)


class TestCompiledDag:
    def test_topological_structure(self, diamond_compiled):
        """Every edge goes from a lower to a strictly higher position."""
        compiled = diamond_compiled
        assert compiled.num_nodes == 4 and compiled.num_edges == 4
        assert np.all(compiled.targets > compiled.rows)
        assert compiled.order[-1] == 4  # destination last in topological order

    def test_split_matrix_is_strictly_upper_triangular(self, diamond_compiled):
        matrix = diamond_compiled.split_matrix().toarray()
        assert np.allclose(matrix, np.triu(matrix, k=1))
        # ECMP rows sum to 1 wherever the node has next hops.
        sums = matrix.sum(axis=1)
        assert sums[: diamond_compiled.num_nodes - 1] == pytest.approx(1.0)

    def test_uniform_and_first_hop_ratios(self, diamond_compiled):
        uniform = diamond_compiled.uniform_ratios()
        first = diamond_compiled.first_hop_ratios()
        degrees = diamond_compiled.out_degree()
        start = diamond_compiled.indptr[0]
        end = diamond_compiled.indptr[1]
        if end - start == 2:  # node 1 splits over 2 and 3
            assert uniform[start] == pytest.approx(0.5)
            assert first[start] == 1.0 and first[start + 1] == 0.0
        assert uniform.sum() == pytest.approx(int((degrees > 0).sum()))

    def test_propagate_solves_unit_triangular_system(self, diamond_compiled):
        """propagate() inverts (I - P^T) exactly (checked against dense solve)."""
        compiled = diamond_compiled
        ratios = compiled.uniform_ratios()
        entering = np.array([3.0, 1.0, 0.5, 0.0])[: compiled.num_nodes]
        x = compiled.propagate(entering, ratios)
        dense = np.eye(compiled.num_nodes) - compiled.split_matrix(ratios).toarray().T
        np.testing.assert_allclose(x, np.linalg.solve(dense, entering), atol=1e-12)

    def test_propagate_batched_equals_columnwise(self, diamond_compiled):
        compiled = diamond_compiled
        ratios = compiled.uniform_ratios()
        rng = np.random.default_rng(3)
        entering = rng.random((compiled.num_nodes, 5))
        batched = compiled.propagate(entering, ratios)
        for column in range(5):
            single = compiled.propagate(entering[:, column], ratios)
            np.testing.assert_array_equal(batched[:, column], single)

    def test_propagate_raises_at_loaded_dead_end(self):
        net = Network(name="deadend")
        net.add_link(1, 2, 10.0)
        net.add_link(2, 3, 10.0)
        compiled = CompiledDag.from_next_hops(net, 3, [1, 2, 3], {1: [2], 2: []})
        with pytest.raises(UnreachableError):
            compiled.propagate(np.array([1.0, 0.0, 0.0]), compiled.uniform_ratios())
        # ... but an *unloaded* dead end is fine (matches the oracle's skip).
        x = compiled.propagate(np.array([0.0, 0.0, 0.0]), compiled.uniform_ratios())
        assert np.all(x == 0.0)

    def test_entering_vector_missing_modes(self, diamond_compiled):
        with pytest.raises(UnreachableError):
            diamond_compiled.entering_vector({99: 1.0}, missing="raise")
        dropped = diamond_compiled.entering_vector({99: 1.0, 1: 2.0}, missing="drop")
        assert dropped.sum() == pytest.approx(2.0)

    def test_from_next_hops_rejects_edges_leaving_the_dag(self):
        net = Network(name="bad")
        net.add_link(1, 2, 10.0)
        net.add_link(2, 3, 10.0)
        with pytest.raises(UnreachableError):
            CompiledDag.from_next_hops(net, 3, [1, 3], {1: [2]})


class TestBackendSelection:
    def test_default_backend_is_auto(self):
        """'auto' = oracle for one-shot calls, sparse for batched entry points."""
        assert routing.get_default_backend() == "auto"

    def test_forcing_python_disables_protocol_batching(self, abilene, abilene_tm):
        """A global 'python' override makes an all-oracle run really all-oracle."""
        from repro.protocols.ospf import OSPF

        protocol = OSPF()  # no per-instance backend: follows the global default
        assert protocol.batch_link_loads(abilene, [abilene_tm]) is not None
        previous = routing.set_default_backend("python")
        try:
            assert protocol.batch_link_loads(abilene, [abilene_tm]) is None
        finally:
            routing.set_default_backend(previous)

    def test_set_and_resolve(self):
        previous = routing.set_default_backend("python")
        try:
            assert routing.resolve_backend(None) == "python"
            assert routing.resolve_backend("sparse") == "sparse"
        finally:
            routing.set_default_backend(previous)
        assert routing.resolve_backend(None) == previous

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            routing.resolve_backend("numba")
        with pytest.raises(ValueError):
            routing.set_default_backend("numba")

    def test_switch_changes_dispatch(self, diamond_network, diamond_demands):
        """The process-wide default actually reroutes the dispatchers."""
        from repro.solvers.assignment import ecmp_assignment

        python = ecmp_assignment(diamond_network, diamond_demands, np.ones(4))
        previous = routing.set_default_backend("sparse")
        try:
            sparse = ecmp_assignment(diamond_network, diamond_demands, np.ones(4))
        finally:
            routing.set_default_backend(previous)
        np.testing.assert_allclose(sparse.aggregate(), python.aggregate(), atol=1e-9)


class TestCompiledDagSet:
    def test_missing_destination_raises_oracle_error(self, diamond_network):
        dag_set = CompiledDagSet(diamond_network, {})
        with pytest.raises(UnreachableError, match="no shortest-path DAG"):
            dag_set.compiled(4)

    def test_amortised_traffic_distribution_matches_fresh(self, abilene, abilene_tm):
        """The compile-once path equals recompiling per call (NEM's contract)."""
        from repro.core.traffic_distribution import traffic_distribution

        weights = np.ones(abilene.num_links)
        dags = all_shortest_path_dags(abilene, abilene_tm.destinations(), weights)
        dag_set = CompiledDagSet(abilene, dags)
        rng = np.random.default_rng(11)
        for _ in range(3):
            second = rng.random(abilene.num_links)
            amortised = dag_set.traffic_distribution(abilene_tm, second)
            fresh = traffic_distribution(abilene, abilene_tm, dags, second, backend="python")
            np.testing.assert_allclose(
                amortised.aggregate(), fresh.aggregate(), atol=1e-9, rtol=0
            )

    def test_nem_backends_converge_to_same_flows(self, fig4, fig4_tm):
        """Algorithm 2 run on both backends yields matching flows and weights."""
        weights = np.ones(fig4.num_links)
        dags = all_shortest_path_dags(fig4, fig4_tm.destinations(), weights)
        from repro.solvers.assignment import ecmp_assignment

        target = ecmp_assignment(fig4, fig4_tm, weights).aggregate()
        sparse = compute_second_weights(
            fig4, fig4_tm, dags, target, max_iterations=40, backend="sparse"
        )
        python = compute_second_weights(
            fig4, fig4_tm, dags, target, max_iterations=40, backend="python"
        )
        assert sparse.iterations == python.iterations
        np.testing.assert_allclose(sparse.weights, python.weights, atol=1e-9)
        np.testing.assert_allclose(
            sparse.flows.aggregate(), python.flows.aggregate(), atol=1e-9
        )


class TestSparseRouter:
    def test_mode_validation(self, diamond_network):
        with pytest.raises(ValueError, match="mode"):
            SparseRouter(diamond_network, weights=np.ones(4), mode="teleport")
        with pytest.raises(ValueError, match="weights or precomputed"):
            SparseRouter(diamond_network)

    def test_unreachable_source_raises_in_batch(self):
        net = Network(name="oneway")
        net.add_link(1, 2, 10.0)  # 2 cannot reach 1
        router = SparseRouter(net, weights=np.ones(1))
        good = TrafficMatrix({(1, 2): 1.0})
        bad = TrafficMatrix({(2, 1): 1.0})
        assert router.link_loads_many([good]).shape == (1, 1)
        with pytest.raises(UnreachableError):
            router.link_loads_many([good, bad])

    def test_empty_ensemble(self, diamond_network):
        router = SparseRouter(diamond_network, weights=np.ones(4))
        assert router.link_loads_many([]).shape == (0, 4)

    def test_all_or_nothing_mode(self, diamond_network, diamond_demands):
        from repro.solvers.assignment import all_or_nothing_assignment

        router = SparseRouter(diamond_network, weights=np.ones(4), mode="all_or_nothing")
        oracle = all_or_nothing_assignment(
            diamond_network, diamond_demands, np.ones(4), backend="python"
        )
        np.testing.assert_allclose(
            router.link_loads(diamond_demands), oracle.aggregate(), atol=1e-9
        )
