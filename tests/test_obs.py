"""The observability layer: spans, histograms, merge, export, zero overhead.

Four guarantees are pinned here:

* span mechanics — nesting (parent ids, depth), exception safety (the
  span closes as ``error`` and re-raises, the stack pops), and the
  module-level no-op when no registry is active;
* histogram semantics — ``value <= edge`` first-match bucketing, the
  overflow bucket, and merge (edge mismatch is an error; counts, sums and
  extrema add);
* the cross-process path — ``snapshot()`` is picklable and ``merge()``
  remaps span ids, re-parents correctly and tags spans with the worker
  label; ``export_jsonl`` is byte-stable across repeated exports;
* the zero-overhead guard — with telemetry disabled nothing is recorded,
  and an incremental controller sweep produces bit-identical MLUs and
  DsptStats whether telemetry is on or off.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.obs import telemetry
from repro.obs.telemetry import DEFAULT_FRACTION_EDGES, Histogram, TelemetryRegistry
from repro.online import TEController
from repro.online.dspt import DsptStats
from repro.scenarios import single_link_failures


@pytest.fixture(autouse=True)
def _no_registry_leaks():
    """Telemetry state is module-global; never let a test leak a registry."""
    telemetry.deactivate()
    yield
    telemetry.deactivate()


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
def test_span_nesting_records_parents_and_depth():
    registry = TelemetryRegistry(label="t")
    with registry.span("outer", kind="a") as outer:
        with registry.span("inner") as inner:
            pass
        with registry.span("sibling"):
            pass
    outer_rec, inner_rec, sibling_rec = registry.spans
    assert outer_rec is outer and inner_rec is inner
    assert outer_rec.parent_id is None and outer_rec.depth == 0
    assert inner_rec.parent_id == outer_rec.span_id and inner_rec.depth == 1
    assert sibling_rec.parent_id == outer_rec.span_id
    assert outer_rec.tags == {"kind": "a"}
    assert all(span.status == "ok" for span in registry.spans)
    assert all(span.wall >= 0.0 and span.cpu >= 0.0 for span in registry.spans)


def test_span_exception_closes_as_error_and_reraises():
    registry = TelemetryRegistry()
    with pytest.raises(ValueError, match="boom"), registry.span("outer"), registry.span(
        "failing"
    ):
        raise ValueError("boom")
    outer, failing = registry.spans
    assert failing.status == "error"
    assert failing.error == "ValueError: boom"
    assert outer.status == "error"
    # The stack unwound: a new span is a root again, not a child of the
    # exploded one.
    with registry.span("after"):
        pass
    assert registry.spans[-1].parent_id is None


def test_module_level_is_noop_when_disabled():
    assert not telemetry.enabled()
    assert telemetry.get() is None
    with telemetry.span("ignored", tag="x") as span:
        assert span is None
    telemetry.count("ignored")
    telemetry.observe("ignored", 0.5)  # nothing raises, nothing records


def test_session_restores_previous_registry():
    outer_registry = telemetry.activate(TelemetryRegistry(label="outer"))
    with telemetry.session(label="inner") as inner_registry:
        assert telemetry.get() is inner_registry
        telemetry.count("seen")
    assert telemetry.get() is outer_registry
    assert inner_registry.counter_value("seen") == 1
    assert outer_registry.counter_value("seen") == 0


# ----------------------------------------------------------------------
# counters and histograms
# ----------------------------------------------------------------------
def test_counter_breakdown_and_tagless_total():
    registry = TelemetryRegistry()
    registry.count("dspt.fallback", 2, reason="cone-threshold")
    registry.count("dspt.fallback", 1, reason="plateau")
    registry.count("dspt.fallback", 3, reason="cone-threshold")
    assert registry.counter_value("dspt.fallback") == 6
    assert registry.counter_value("dspt.fallback", reason="plateau") == 1
    breakdown = registry.counter_breakdown("dspt.fallback")
    assert breakdown[(("reason", "cone-threshold"),)] == 5


def test_histogram_bucket_edges_are_inclusive_upper_bounds():
    histogram = Histogram(edges=(0.1, 0.5, 1.0))
    for value in (0.1, 0.10000000001, 0.5, 0.75, 1.0, 2.0):
        histogram.observe(value)
    # <=0.1 gets exactly 0.1; (0.1, 0.5] gets the two middle-left values;
    # (0.5, 1.0] gets 0.75 and 1.0; the overflow bucket gets 2.0.
    assert histogram.counts == [1, 2, 2, 1]
    assert histogram.count == 6
    assert histogram.min == 0.1 and histogram.max == 2.0
    assert histogram.mean == pytest.approx(sum((0.1, 0.10000000001, 0.5, 0.75, 1.0, 2.0)) / 6)


def test_histogram_merge_adds_and_rejects_mismatched_edges():
    a = Histogram(edges=(1.0, 2.0))
    b = Histogram(edges=(1.0, 2.0))
    a.observe(0.5)
    b.observe(1.5)
    b.observe(9.0)
    a.merge(b)
    assert a.counts == [1, 1, 1]
    assert a.count == 3 and a.min == 0.5 and a.max == 9.0
    with pytest.raises(ValueError):
        a.merge(Histogram(edges=(1.0, 3.0)))


# ----------------------------------------------------------------------
# cross-process snapshot/merge and export
# ----------------------------------------------------------------------
def test_snapshot_pickles_and_merge_remaps_span_ids():
    parent = TelemetryRegistry(label="parent")
    with parent.span("parent.work"):
        pass
    worker = TelemetryRegistry(label="worker-1234")
    with worker.span("chunk"), worker.span("cell"):
        worker.count("dspt.fallback", 2, reason="plateau")
        worker.observe("dspt.cone_fraction", 0.3)
    parent.count("dspt.fallback", 1, reason="plateau")
    parent.observe("dspt.cone_fraction", 0.05)

    snapshot = pickle.loads(pickle.dumps(worker.snapshot()))
    parent.merge(snapshot)

    assert [span.name for span in parent.spans] == ["parent.work", "chunk", "cell"]
    ids = [span.span_id for span in parent.spans]
    assert len(set(ids)) == 3  # remapped past the parent's own ids
    chunk, cell = parent.spans[1], parent.spans[2]
    assert cell.parent_id == chunk.span_id
    assert chunk.tags["worker"] == "worker-1234"
    assert parent.counter_value("dspt.fallback", reason="plateau") == 3
    merged = parent.histograms["dspt.cone_fraction"]
    assert merged.count == 2
    assert merged.edges == DEFAULT_FRACTION_EDGES


def test_registry_merge_rejects_mismatched_histogram_edges():
    parent = TelemetryRegistry()
    parent.observe("h", 0.5, edges=(0.1, 1.0))
    worker = TelemetryRegistry(label="w")
    worker.observe("h", 0.5, edges=(0.25, 1.0))
    with pytest.raises(ValueError, match="different edges"):
        parent.merge(worker.snapshot())


def test_snapshot_roundtrip_preserves_exception_spans():
    worker = TelemetryRegistry(label="w-1")
    with pytest.raises(RuntimeError, match="kaboom"), worker.span("explode", stage="cell"):
        raise RuntimeError("kaboom")
    parent = TelemetryRegistry()
    parent.merge(pickle.loads(pickle.dumps(worker.snapshot())))
    (merged,) = parent.spans
    assert merged.status == "error"
    assert merged.error == "RuntimeError: kaboom"
    assert merged.tags == {"stage": "cell", "worker": "w-1"}


def test_merge_remaps_deeply_nested_span_tree():
    from contextlib import ExitStack

    depth = 40
    worker = TelemetryRegistry(label="deep")
    with ExitStack() as stack:
        for level in range(depth):
            stack.enter_context(worker.span(f"level{level:02d}"))
    parent = TelemetryRegistry()
    with parent.span("root"):
        pass
    parent.merge(worker.snapshot())
    chain = parent.spans[1:]
    assert [span.depth for span in chain] == list(range(depth))
    assert chain[0].parent_id is None
    for outer, inner in zip(chain, chain[1:], strict=False):
        assert inner.parent_id == outer.span_id  # remapped, still a chain
    assert min(span.span_id for span in chain) == 1  # past the parent's ids
    # The call-tree aggregation reconstructs the full remapped path.
    deepest = max(parent.span_tree(), key=lambda row: row["path"].count(";"))
    assert deepest["path"].split(";") == [f"level{lvl:02d}" for lvl in range(depth)]
    assert deepest["count"] == 1


def test_export_jsonl_is_byte_stable(tmp_path):
    registry = TelemetryRegistry(label="export")
    with registry.span("a", tag="1"):
        registry.count("c", 2, kind="x")
        registry.observe("h", 0.4)
    first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    lines = registry.export_jsonl(first)
    assert registry.export_jsonl(second) == lines
    assert first.read_bytes() == second.read_bytes()
    parsed = [json.loads(line) for line in first.read_text().splitlines()]
    assert len(parsed) == lines
    assert parsed[0]["type"] == "meta" and parsed[0]["schema"] == 2
    kinds = {record["type"] for record in parsed}
    assert kinds == {"meta", "span", "span_stats", "span_tree", "counter", "histogram"}
    # Every span line carries its derived self time.
    span_lines = [record for record in parsed if record["type"] == "span"]
    assert all("self" in record for record in span_lines)
    # Keys are sorted within each line: re-serialising is the identity.
    for line, record in zip(first.read_text().splitlines(), parsed, strict=True):
        assert line == json.dumps(record, sort_keys=True, separators=(", ", ": "))


def test_summary_mentions_spans_counters_and_histograms():
    registry = TelemetryRegistry(label="s")
    with registry.span("controller.cell"):
        registry.count("dspt.fallback", 1, reason="cone-threshold")
        registry.observe("dspt.cone_fraction", 0.2)
    text = registry.summary()
    assert "controller.cell" in text
    assert "reason=cone-threshold" in text
    assert "dspt.cone_fraction" in text


def test_summary_golden_output():
    """The digest is deterministic: exact golden text, not substring checks.

    Pins the dynamic name column (sized to the longest clipped name, capped
    at SUMMARY_NAME_WIDTH with an ellipsis), the (-wall, name) span sort and
    the sorted counter/histogram sections.
    """
    from repro.obs.telemetry import Span

    registry = TelemetryRegistry(label="golden")
    long_name = "controller.cell." + "deep_subsystem_" * 4 + "recompute"
    assert len(long_name) > TelemetryRegistry.SUMMARY_NAME_WIDTH
    registry.spans.extend([
        Span(0, None, 0, "outer", {}, start=0.0, wall=1.5, cpu=1.0, status="ok"),
        Span(1, 0, 1, "leaf", {}, start=0.1, wall=0.5, cpu=0.25, status="ok"),
        Span(2, None, 0, long_name, {}, start=2.0, wall=0.25, cpu=0.125, status="ok"),
    ])
    registry.count("b.counter", 2, reason="x")
    registry.count("a.counter", 1)
    registry.observe("h", 0.05, edges=(0.1, 1.0))
    golden = "\n".join([
        "telemetry summary — golden",
        "spans:",
        "  outer                                             n=1      wall=   1.5000s self=   1.0000s cpu=   1.0000s p95=1.0000s",
        "  leaf                                              n=1      wall=   0.5000s self=   0.5000s cpu=   0.2500s p95=0.5000s",
        "  controller.cell.deep_subsystem_deep_subsystem_d…  n=1      wall=   0.2500s self=   0.2500s cpu=   0.1250s p95=0.2500s",
        "counters:",
        "  a.counter = 1",
        "  b.counter = 2",
        "    reason=x: 2",
        "histograms:",
        "  h: n=1 mean=0.05 min=0.05 max=0.05",
        "       <=0.1      1 ########################",
        "         <=1      0 ",
        "          >1      0 ",
    ])
    assert registry.summary() == golden


# ----------------------------------------------------------------------
# zero overhead and bit-identical results
# ----------------------------------------------------------------------
def _sweep_mlus(abilene, abilene_tm):
    controller = TEController(abilene, abilene_tm)
    measurements = controller.sweep_scenarios(single_link_failures(abilene))
    return [m.mlu for m in measurements], controller.spt.stats


def test_sweep_bit_identical_with_and_without_telemetry(abilene, abilene_tm):
    baseline_mlus, baseline_stats = _sweep_mlus(abilene, abilene_tm)
    with telemetry.session(label="guard") as registry:
        traced_mlus, traced_stats = _sweep_mlus(abilene, abilene_tm)
    assert traced_mlus == baseline_mlus  # bit-identical, not approx
    assert traced_stats == baseline_stats
    # And the traced run actually recorded something.
    assert registry.spans
    assert registry.counter_value("dspt.update", path="incremental") > 0
    assert registry.counter_value("dspt.events") == baseline_stats.events
    # The profiling aggregates derive from those spans without touching the
    # numbers: same MLUs, and the span stats cover every recorded span.
    stats = registry.span_stats()
    assert sum(row["count"] for row in stats) == len(registry.spans)


def test_sweep_bit_identical_with_memory_tracking(abilene, abilene_tm):
    """The tracemalloc path changes timings, never results."""
    baseline_mlus, baseline_stats = _sweep_mlus(abilene, abilene_tm)
    with telemetry.session(label="memguard", memory=True) as registry:
        traced_mlus, traced_stats = _sweep_mlus(abilene, abilene_tm)
    assert traced_mlus == baseline_mlus  # bit-identical, not approx
    assert traced_stats == baseline_stats
    assert registry.spans
    assert all(span.alloc is not None and span.peak is not None
               for span in registry.spans)
    # session() finalized the registry: peak RSS frozen, tracer released.
    assert registry.peak_rss_kb is not None and registry.peak_rss_kb > 0


def test_traced_sweep_overhead_within_budget(abilene, abilene_tm):
    """Enabled-telemetry overhead stays small (min-of-3 vs min-of-3).

    The acceptance bar is <=5% on a rand100 sweep; an Abilene sweep in a
    shared test runner is far noisier per-second, so the guard adds a small
    absolute slack on top of the 5% relative budget.
    """
    import time as _time

    def timed() -> float:
        t0 = _time.perf_counter()
        _sweep_mlus(abilene, abilene_tm)
        return _time.perf_counter() - t0

    _sweep_mlus(abilene, abilene_tm)  # warm caches before timing anything
    untraced = min(timed() for _ in range(3))
    with telemetry.session(label="overhead"):
        traced = min(timed() for _ in range(3))
    assert traced <= untraced * 1.05 + 0.05


def test_disabled_telemetry_records_nothing(abilene, abilene_tm):
    registry = TelemetryRegistry(label="idle")
    _sweep_mlus(abilene, abilene_tm)  # no active registry anywhere
    assert registry.spans == []
    assert registry.counters == {}
    assert registry.histograms == {}
    assert telemetry.span("x") is telemetry._NOOP


# ----------------------------------------------------------------------
# DsptStats fallback breakdown
# ----------------------------------------------------------------------
def test_dspt_stats_distinguishes_fallback_causes():
    stats = DsptStats(
        events=10,
        incremental_updates=40,
        full_rebuilds=7,
        fallback_cone=3,
        fallback_plateau=2,
        verify_mismatches=1,
        initial_builds=1,
        bulk_rebuilds=1,
    )
    assert stats.event_fallbacks == 6
    with pytest.warns(DeprecationWarning):
        assert stats.fallback_rate == pytest.approx(6 / 46)
    # Rebuild bookkeeping stays consistent: every full rebuild has a cause.
    assert stats.full_rebuilds == (
        stats.fallback_cone + stats.fallback_plateau
        + stats.initial_builds + stats.bulk_rebuilds
    )
    text = repr(stats)
    assert "cone=3" in text and "plateau=2" in text and "verify=1" in text
    assert "fallback_rate=0.130" in text


def test_dspt_stats_fallback_rate_zero_when_idle():
    with pytest.warns(DeprecationWarning):
        assert DsptStats().fallback_rate == 0.0
