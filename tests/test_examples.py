"""Smoke tests that the example scripts run end-to-end on the public API."""

import runpy
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    """Execute an example script as __main__ and return its stdout."""
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    argv = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


def test_examples_directory_contains_at_least_three_scripts():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3


def test_quickstart_runs_and_reports_both_weights(capsys):
    output = _run_example("quickstart.py", capsys)
    assert "first weight" in output
    assert "second weight" in output
    assert "SPEF" in output and "OSPF" in output
    assert "optimality gap" in output.lower()


def test_online_controller_example_replays_and_recovers(capsys):
    output = _run_example("online_controller.py", capsys)
    assert "Replayed 56 events" in output
    assert "worst outage" in output
    assert "back at baseline" in output
    assert "warm-started Fortz-Thorup" in output


def test_every_example_has_a_module_docstring():
    for path in EXAMPLES_DIR.glob("*.py"):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), f"{path.name} lacks a docstring"
        assert "__main__" in source, f"{path.name} is not runnable as a script"
