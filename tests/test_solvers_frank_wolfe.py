"""Unit tests for the Frank-Wolfe (flow deviation) convex MCF solver."""

import numpy as np
import pytest

from repro.core.objectives import LoadBalanceObjective
from repro.network.demands import TrafficMatrix
from repro.solvers.frank_wolfe import solve_frank_wolfe
from repro.solvers.mcf import SolverError, solve_min_mlu


def _oracles(network, objective):
    return (
        lambda f: objective.congestion_cost(network, f),
        lambda f: objective.congestion_gradient(network, f),
    )


class TestFrankWolfe:
    def test_diamond_splits_evenly_under_proportional_objective(
        self, diamond_network, diamond_demands
    ):
        objective = LoadBalanceObjective.proportional()
        cost, gradient = _oracles(diamond_network, objective)
        result = solve_frank_wolfe(diamond_network, diamond_demands, cost, gradient)
        assert result.converged
        # Symmetric paths: the optimum splits 8 units into 4 + 4.
        assert result.flows.flow_on(1, 2) == pytest.approx(4.0, abs=1e-3)
        assert result.flows.flow_on(1, 3) == pytest.approx(4.0, abs=1e-3)

    def test_weights_match_derivative_of_spare(self, diamond_network, diamond_demands):
        objective = LoadBalanceObjective.proportional()
        cost, gradient = _oracles(diamond_network, objective)
        result = solve_frank_wolfe(diamond_network, diamond_demands, cost, gradient)
        spare = result.flows.spare_capacity()
        assert np.allclose(result.link_weights, objective.derivative(spare))

    def test_fig1_matches_paper_table1(self, fig1, fig1_tm):
        objective = LoadBalanceObjective.proportional()
        cost, gradient = _oracles(fig1, objective)
        result = solve_frank_wolfe(fig1, fig1_tm, cost, gradient)
        utilization = fig1.weight_dict(result.flows.utilization())
        assert utilization[(1, 3)] == pytest.approx(2.0 / 3.0, abs=1e-3)
        assert utilization[(3, 4)] == pytest.approx(0.9, abs=1e-6)
        assert utilization[(1, 2)] == pytest.approx(1.0 / 3.0, abs=1e-3)

    def test_infeasible_barrier_instance_raises(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 25.0})  # exceeds the 20-unit cut
        objective = LoadBalanceObjective.proportional()
        cost, gradient = _oracles(diamond_network, objective)
        with pytest.raises(SolverError):
            solve_frank_wolfe(diamond_network, demands, cost, gradient)

    def test_empty_demands(self, diamond_network):
        objective = LoadBalanceObjective.proportional()
        cost, gradient = _oracles(diamond_network, objective)
        result = solve_frank_wolfe(diamond_network, TrafficMatrix(), cost, gradient)
        assert result.converged
        assert np.allclose(result.flows.aggregate(), 0.0)

    def test_objective_history_is_monotone_nonincreasing(self, fig4, fig4_tm):
        objective = LoadBalanceObjective.proportional()
        cost, gradient = _oracles(fig4, objective)
        result = solve_frank_wolfe(fig4, fig4_tm, cost, gradient, max_iterations=60)
        history = np.array(result.objective_history)
        assert np.all(np.diff(history) <= 1e-8)

    def test_custom_initial_flows_accepted(self, diamond_network, diamond_demands):
        objective = LoadBalanceObjective.proportional()
        cost, gradient = _oracles(diamond_network, objective)
        start = solve_min_mlu(diamond_network, diamond_demands).flows
        result = solve_frank_wolfe(
            diamond_network, diamond_demands, cost, gradient, initial_flows=start
        )
        assert result.converged

    def test_non_barrier_mode_handles_saturation(self, diamond_network):
        # Linear-ish objective (beta=0.5 is finite at zero spare capacity):
        # demands that saturate the cheap path should still solve.
        demands = TrafficMatrix({(1, 4): 18.0})
        objective = LoadBalanceObjective(beta=0.5)
        cost, gradient = _oracles(diamond_network, objective)
        result = solve_frank_wolfe(
            diamond_network, demands, cost, gradient, barrier=False, max_iterations=80
        )
        result.flows.validate(demands, tolerance=1e-4)
        assert result.flows.max_link_utilization() <= 1.0 + 1e-6

    def test_result_flows_respect_capacity(self, fig4, fig4_tm):
        objective = LoadBalanceObjective.proportional()
        cost, gradient = _oracles(fig4, objective)
        result = solve_frank_wolfe(fig4, fig4_tm, cost, gradient)
        assert result.flows.max_link_utilization() < 1.0
        result.flows.validate(fig4_tm, tolerance=1e-6)
