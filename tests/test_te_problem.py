"""Unit tests for the TE utility-maximization problem and its reference solver."""

import numpy as np
import pytest

from repro.core.objectives import LoadBalanceObjective
from repro.core.te_problem import TEProblem, optimality_gap, solve_optimal_te
from repro.network.demands import DemandError, TrafficMatrix
from repro.solvers.mcf import SolverError


class TestProblem:
    def test_validates_demands(self, fig1):
        with pytest.raises(DemandError):
            TEProblem(fig1, TrafficMatrix({(1, 99): 1.0}))

    def test_network_load(self, fig1, fig1_tm):
        problem = TEProblem(fig1, fig1_tm)
        assert problem.network_load() == pytest.approx(1.9 / 4.0)

    def test_scaled(self, fig1, fig1_tm):
        problem = TEProblem(fig1, fig1_tm)
        scaled = problem.scaled(0.5)
        assert scaled.demands.total_volume() == pytest.approx(0.95)
        assert scaled.network is fig1


class TestSolveBeta1:
    def test_fig1_matches_table1(self, fig1, fig1_tm):
        solution = solve_optimal_te(TEProblem(fig1, fig1_tm, LoadBalanceObjective.proportional()))
        weights = fig1.weight_dict(solution.link_weights)
        assert weights[(1, 3)] == pytest.approx(3.0, rel=1e-2)
        assert weights[(3, 4)] == pytest.approx(10.0, rel=1e-2)
        assert weights[(1, 2)] == pytest.approx(1.5, rel=1e-2)
        assert weights[(2, 3)] == pytest.approx(1.5, rel=1e-2)

    def test_weights_equal_derivative_of_spare(self, fig4, fig4_tm):
        objective = LoadBalanceObjective.proportional()
        solution = solve_optimal_te(TEProblem(fig4, fig4_tm, objective))
        expected = objective.derivative(solution.spare_capacity)
        assert np.allclose(solution.link_weights, expected)

    def test_flows_feasible(self, fig4, fig4_tm):
        solution = solve_optimal_te(TEProblem(fig4, fig4_tm))
        solution.flows.validate(fig4_tm, tolerance=1e-6)
        assert solution.max_link_utilization < 1.0

    def test_infeasible_raises(self, fig1):
        demands = TrafficMatrix({(1, 3): 3.0})
        with pytest.raises(SolverError):
            solve_optimal_te(TEProblem(fig1, demands))

    def test_empty_demands(self, fig1):
        solution = solve_optimal_te(TEProblem(fig1, TrafficMatrix()))
        assert np.allclose(solution.flows.aggregate(), 0.0)
        assert solution.converged


class TestSolveBeta0:
    def test_minimum_hop_routing_on_fig1(self, fig1, fig1_tm):
        # With beta=0 and q=1 the optimum sends the (1,3) demand on the
        # direct link (1 hop) instead of the detour (2 hops).
        solution = solve_optimal_te(TEProblem(fig1, fig1_tm, LoadBalanceObjective.minimum_hop()))
        utilization = fig1.weight_dict(solution.flows.utilization())
        assert utilization[(1, 3)] == pytest.approx(1.0, abs=1e-6)
        assert utilization[(1, 2)] == pytest.approx(0.0, abs=1e-6)

    def test_beta0_weight_on_unsaturated_links_is_q(self, fig1, fig1_tm):
        solution = solve_optimal_te(TEProblem(fig1, fig1_tm, LoadBalanceObjective.minimum_hop()))
        weights = fig1.weight_dict(solution.link_weights)
        # Unsaturated links keep weight q = 1 (Example 3); the saturated
        # direct link (1,3) gets q plus its congestion dual, i.e. >= 1.
        assert weights[(3, 4)] == pytest.approx(1.0, abs=1e-6)
        assert weights[(1, 3)] >= 1.0 - 1e-9

    def test_utility_value_is_linear_sum(self, fig1, fig1_tm):
        objective = LoadBalanceObjective.minimum_hop()
        solution = solve_optimal_te(TEProblem(fig1, fig1_tm, objective))
        assert solution.utility == pytest.approx(
            float(np.sum(solution.spare_capacity)), abs=1e-6
        )


class TestSolveOtherBetas:
    @pytest.mark.parametrize("beta", [0.5, 2.0, 5.0])
    def test_feasible_and_consistent(self, fig4, fig4_tm, beta):
        objective = LoadBalanceObjective(beta=beta)
        solution = solve_optimal_te(TEProblem(fig4, fig4_tm, objective))
        solution.flows.validate(fig4_tm, tolerance=1e-5)
        assert solution.utility == pytest.approx(
            objective.total_utility(solution.spare_capacity), rel=1e-9
        )

    def test_large_beta_approaches_min_mlu(self, fig1, fig1_tm):
        from repro.solvers.mcf import solve_min_mlu

        optimal_mlu = solve_min_mlu(fig1, fig1_tm).objective
        solution = solve_optimal_te(TEProblem(fig1, fig1_tm, LoadBalanceObjective(beta=8.0)))
        assert solution.max_link_utilization == pytest.approx(optimal_mlu, abs=0.02)

    def test_bottleneck_utilization_decreases_with_beta(self, fig1, fig1_tm):
        # Fig. 3(b): the utilization of the direct link (1, 3) decreases in beta.
        utilizations = []
        for beta in (0.0, 1.0, 3.0):
            solution = solve_optimal_te(TEProblem(fig1, fig1_tm, LoadBalanceObjective(beta=beta)))
            utilizations.append(fig1.weight_dict(solution.flows.utilization())[(1, 3)])
        assert utilizations[0] >= utilizations[1] >= utilizations[2] - 1e-6


class TestOptimalityGap:
    def test_gap_zero_for_optimal_flows(self, fig4, fig4_tm):
        problem = TEProblem(fig4, fig4_tm)
        solution = solve_optimal_te(problem)
        gap = optimality_gap(problem, solution.flows, reference=solution)
        assert abs(gap) < 1e-9

    def test_gap_positive_for_suboptimal_flows(self, fig1, fig1_tm):
        from repro.protocols.ospf import OSPF

        problem = TEProblem(fig1, fig1_tm)
        reference = solve_optimal_te(problem)
        # Hop-count OSPF saturates the direct link -> -inf utility -> inf gap.
        ospf_flows = OSPF(weights=np.ones(4)).route(fig1, fig1_tm)
        gap = optimality_gap(problem, ospf_flows, reference=reference)
        assert gap == float("inf")

    def test_gap_without_reference_recomputes(self, diamond_network, diamond_demands):
        problem = TEProblem(diamond_network, diamond_demands)
        solution = solve_optimal_te(problem)
        assert optimality_gap(problem, solution.flows) == pytest.approx(0.0, abs=1e-6)

    def test_normalized_utility_reported(self, fig4, fig4_tm):
        solution = solve_optimal_te(TEProblem(fig4, fig4_tm))
        value = solution.normalized_utility()
        assert np.isfinite(value)
        assert value < 0
