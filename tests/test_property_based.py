"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.objectives import LoadBalanceObjective
from repro.core.traffic_distribution import exponential_split_ratios, traffic_distribution
from repro.network.demands import TrafficMatrix
from repro.network.graph import Network
from repro.network.spt import all_shortest_path_dags, distances_to, shortest_path_dag
from repro.solvers.assignment import all_or_nothing_assignment, ecmp_assignment

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
NODE_COUNT = 6


@st.composite
def connected_networks(draw):
    """Random strongly-connected networks on NODE_COUNT nodes.

    A bidirectional ring guarantees strong connectivity; extra random
    directed chords add multipath structure.
    """
    net = Network(name="hypothesis")
    nodes = list(range(NODE_COUNT))
    capacities = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=20.0),
            min_size=NODE_COUNT,
            max_size=NODE_COUNT,
        )
    )
    for i in nodes:
        j = (i + 1) % NODE_COUNT
        net.add_duplex_link(i, j, capacities[i])
    num_chords = draw(st.integers(min_value=0, max_value=8))
    for _ in range(num_chords):
        u = draw(st.integers(min_value=0, max_value=NODE_COUNT - 1))
        v = draw(st.integers(min_value=0, max_value=NODE_COUNT - 1))
        if u != v and not net.has_link(u, v):
            net.add_link(u, v, draw(st.floats(min_value=1.0, max_value=20.0)))
    return net


@st.composite
def weight_vectors(draw, network):
    return np.array(
        draw(
            st.lists(
                st.floats(min_value=0.1, max_value=10.0),
                min_size=network.num_links,
                max_size=network.num_links,
            )
        )
    )


@st.composite
def demand_matrices(draw, network):
    tm = TrafficMatrix()
    num_demands = draw(st.integers(min_value=1, max_value=6))
    for _ in range(num_demands):
        source = draw(st.integers(min_value=0, max_value=NODE_COUNT - 1))
        target = draw(st.integers(min_value=0, max_value=NODE_COUNT - 1))
        if source != target:
            tm.add(source, target, draw(st.floats(min_value=0.1, max_value=2.0)))
    if not len(tm):
        tm.add(0, 1, 1.0)
    return tm


common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------
# Shortest-path invariants
# ----------------------------------------------------------------------
class TestShortestPathProperties:
    @common_settings
    @given(data=st.data())
    def test_triangle_inequality_of_distances(self, data):
        network = data.draw(connected_networks())
        weights = data.draw(weight_vectors(network))
        destination = data.draw(st.integers(min_value=0, max_value=NODE_COUNT - 1))
        distances = distances_to(network, destination, weights)
        for link in network.links:
            if link.source in distances and link.target in distances:
                assert (
                    distances[link.source]
                    <= weights[link.index] + distances[link.target] + 1e-9
                )

    @common_settings
    @given(data=st.data())
    def test_dag_next_hops_lie_on_shortest_paths(self, data):
        network = data.draw(connected_networks())
        weights = data.draw(weight_vectors(network))
        destination = data.draw(st.integers(min_value=0, max_value=NODE_COUNT - 1))
        dag = shortest_path_dag(network, destination, weights)
        for node, hops in dag.next_hops.items():
            for hop in hops:
                index = network.link_index(node, hop)
                assert (
                    weights[index] + dag.distances[hop]
                    <= dag.distances[node] + dag.tolerance + 1e-9
                )

    @common_settings
    @given(data=st.data())
    def test_topological_order_is_consistent(self, data):
        network = data.draw(connected_networks())
        weights = data.draw(weight_vectors(network))
        destination = data.draw(st.integers(min_value=0, max_value=NODE_COUNT - 1))
        dag = shortest_path_dag(network, destination, weights)
        order = dag.topological_order()
        position = {node: i for i, node in enumerate(order)}
        assert set(order) == set(dag.distances)
        for node, hops in dag.next_hops.items():
            for hop in hops:
                assert position[node] < position[hop]


# ----------------------------------------------------------------------
# Routing invariants
# ----------------------------------------------------------------------
class TestRoutingProperties:
    @common_settings
    @given(data=st.data())
    def test_ecmp_conserves_flow(self, data):
        network = data.draw(connected_networks())
        weights = data.draw(weight_vectors(network))
        demands = data.draw(demand_matrices(network))
        flows = ecmp_assignment(network, demands, weights)
        assert flows.conservation_violation(demands) < 1e-8
        assert np.all(flows.aggregate() >= -1e-12)

    @common_settings
    @given(data=st.data())
    def test_aon_total_cost_never_beats_shortest_distances(self, data):
        network = data.draw(connected_networks())
        weights = data.draw(weight_vectors(network))
        demands = data.draw(demand_matrices(network))
        flows = all_or_nothing_assignment(network, demands, weights)
        total_cost = float(np.dot(flows.aggregate(), weights))
        lower_bound = 0.0
        for (source, target), volume in demands.items():
            lower_bound += distances_to(network, target, weights)[source] * volume
        assert total_cost == pytest.approx(lower_bound, rel=1e-6, abs=1e-6)

    @common_settings
    @given(data=st.data())
    def test_exponential_split_ratios_form_distribution(self, data):
        network = data.draw(connected_networks())
        weights = data.draw(weight_vectors(network))
        second = data.draw(weight_vectors(network))
        destination = data.draw(st.integers(min_value=0, max_value=NODE_COUNT - 1))
        dag = shortest_path_dag(network, destination, weights)
        ratios = exponential_split_ratios(network, dag, second)
        for hops in ratios.values():
            assert all(r >= -1e-12 for r in hops.values())
            assert sum(hops.values()) == pytest.approx(1.0)

    @common_settings
    @given(data=st.data())
    def test_traffic_distribution_conserves_flow(self, data):
        network = data.draw(connected_networks())
        weights = data.draw(weight_vectors(network))
        second = data.draw(weight_vectors(network))
        demands = data.draw(demand_matrices(network))
        dags = all_shortest_path_dags(network, demands.destinations(), weights)
        flows = traffic_distribution(network, demands, dags, second)
        assert flows.conservation_violation(demands) < 1e-8


# ----------------------------------------------------------------------
# Objective invariants
# ----------------------------------------------------------------------
class TestObjectiveProperties:
    @common_settings
    @given(
        # beta below ~0.05 makes the inversion numerically ill-conditioned
        # (exponent 1/beta explodes), so the property is stated away from 0.
        beta=st.floats(min_value=0.05, max_value=5.0),
        q=st.floats(min_value=0.1, max_value=10.0),
        spare=st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=10),
    )
    def test_derivative_inverse_roundtrip(self, beta, q, spare):
        objective = LoadBalanceObjective(beta=beta, q=q)
        spare_arr = np.array(spare)
        weights = objective.derivative(spare_arr)
        recovered = objective.derivative_inverse(weights)
        assert np.allclose(recovered, spare_arr, rtol=1e-4)

    @common_settings
    @given(
        beta=st.floats(min_value=0.0, max_value=5.0),
        a=st.floats(min_value=0.01, max_value=50.0),
        b=st.floats(min_value=0.01, max_value=50.0),
    )
    def test_utility_is_monotone_increasing(self, beta, a, b):
        objective = LoadBalanceObjective(beta=beta)
        lo, hi = min(a, b), max(a, b)
        values = objective.utility(np.array([lo, hi]))
        assert values[1] >= values[0] - 1e-12

    @common_settings
    @given(
        beta=st.floats(min_value=0.0, max_value=5.0),
        spare=st.lists(st.floats(min_value=0.05, max_value=50.0), min_size=2, max_size=8),
    )
    def test_weights_positive(self, beta, spare):
        objective = LoadBalanceObjective(beta=beta)
        weights = objective.derivative(np.array(spare))
        assert np.all(weights > 0)


# ----------------------------------------------------------------------
# Traffic matrix invariants
# ----------------------------------------------------------------------
class TestTrafficMatrixProperties:
    @common_settings
    @given(
        volumes=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=20),
        factor=st.floats(min_value=0.0, max_value=5.0),
    )
    def test_scaling_scales_total_volume(self, volumes, factor):
        tm = TrafficMatrix()
        for i, volume in enumerate(volumes):
            tm.add(i, i + 1, volume) if volume > 0 else None
        scaled = tm.scaled(factor)
        assert scaled.total_volume() == pytest.approx(tm.total_volume() * factor, rel=1e-9, abs=1e-12)

    @common_settings
    @given(data=st.data())
    def test_by_destination_partitions_volume(self, data):
        network = data.draw(connected_networks())
        demands = data.draw(demand_matrices(network))
        grouped = demands.by_destination()
        regrouped_total = sum(sum(v.values()) for v in grouped.values())
        assert regrouped_total == pytest.approx(demands.total_volume())
